//! Structure-free random hypergraph models.
//!
//! Baselines for the community model: an Erdős–Rényi-style uniform model
//! (every hyperedge is an independent uniform sample) and a Chung-Lu
//! bipartite model matching a prescribed vertex-degree sequence. These
//! are the "null models" used to sanity-check that the interesting
//! s-line-graph structure in the profiles comes from planted overlap, not
//! from chance — and they serve as adversarial inputs in tests.

use crate::sampling::{power_law, sample_distinct, AliasTable};
use hyperline_hypergraph::Hypergraph;
use hyperline_util::fxhash::FxHashSet;
use rand::prelude::*;

/// Uniform random hypergraph: `num_edges` hyperedges, each an independent
/// uniform `k`-subset of the vertex set with `k` drawn from a bounded
/// power law.
#[derive(Debug, Clone)]
pub struct UniformModel {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of hyperedges.
    pub num_edges: usize,
    /// Smallest edge size.
    pub edge_size_min: usize,
    /// Largest edge size.
    pub edge_size_max: usize,
    /// Power-law exponent for sizes (0 ≈ uniform over the range).
    pub edge_size_exponent: f64,
}

impl UniformModel {
    /// Generates deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Hypergraph {
        assert!(self.num_vertices > 0);
        assert!(self.edge_size_min >= 1 && self.edge_size_min <= self.edge_size_max);
        let mut rng = StdRng::seed_from_u64(seed);
        let lists: Vec<Vec<u32>> = (0..self.num_edges)
            .map(|_| {
                let k = power_law(
                    &mut rng,
                    self.edge_size_min,
                    self.edge_size_max,
                    self.edge_size_exponent,
                )
                .min(self.num_vertices);
                sample_distinct(&mut rng, self.num_vertices, k)
            })
            .collect();
        Hypergraph::from_edge_lists(&lists, self.num_vertices)
    }
}

/// Chung-Lu bipartite model: vertex `v` is included in each hyperedge
/// draw with probability proportional to a prescribed weight, so expected
/// vertex degrees match the weight sequence (up to edge-size dedup).
#[derive(Debug, Clone)]
pub struct ChungLuModel {
    /// Target vertex weights (≥ 0, at least one positive); the vertex
    /// count is `weights.len()`.
    pub vertex_weights: Vec<f64>,
    /// Number of hyperedges.
    pub num_edges: usize,
    /// Smallest edge size.
    pub edge_size_min: usize,
    /// Largest edge size.
    pub edge_size_max: usize,
    /// Power-law exponent for sizes.
    pub edge_size_exponent: f64,
}

impl ChungLuModel {
    /// A Chung-Lu model with a Zipf weight sequence (`(i+1)^-alpha`).
    pub fn zipf(num_vertices: usize, alpha: f64, num_edges: usize) -> Self {
        Self {
            vertex_weights: (0..num_vertices)
                .map(|i| ((i + 1) as f64).powf(-alpha))
                .collect(),
            num_edges,
            edge_size_min: 2,
            edge_size_max: 30,
            edge_size_exponent: 2.0,
        }
    }

    /// Generates deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Hypergraph {
        let n = self.vertex_weights.len();
        assert!(n > 0, "need at least one vertex");
        assert!(self.edge_size_min >= 1 && self.edge_size_min <= self.edge_size_max);
        let table = AliasTable::new(&self.vertex_weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut members: FxHashSet<u32> = FxHashSet::default();
        let lists: Vec<Vec<u32>> = (0..self.num_edges)
            .map(|_| {
                let k = power_law(
                    &mut rng,
                    self.edge_size_min,
                    self.edge_size_max,
                    self.edge_size_exponent,
                )
                .min(n);
                members.clear();
                let mut attempts = 0;
                while members.len() < k && attempts < 30 * k {
                    members.insert(table.sample(&mut rng));
                    attempts += 1;
                }
                let mut edge: Vec<u32> = members.iter().copied().collect();
                edge.sort_unstable();
                edge
            })
            .collect();
        Hypergraph::from_edge_lists(&lists, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape() {
        let m = UniformModel {
            num_vertices: 200,
            num_edges: 500,
            edge_size_min: 2,
            edge_size_max: 10,
            edge_size_exponent: 1.5,
        };
        let h = m.generate(1);
        assert_eq!(h.num_edges(), 500);
        assert_eq!(h.num_vertices(), 200);
        for e in 0..500u32 {
            assert!((2..=10).contains(&h.edge_size(e)));
        }
        assert_eq!(m.generate(1), h, "deterministic");
    }

    #[test]
    fn uniform_rarely_has_deep_overlaps() {
        // Independent uniform 3-subsets of a large set almost never share
        // 3 vertices — the null-model contrast with the community model.
        let m = UniformModel {
            num_vertices: 10_000,
            num_edges: 400,
            edge_size_min: 3,
            edge_size_max: 5,
            edge_size_exponent: 2.0,
        };
        let h = m.generate(2);
        let mut deep = 0;
        for e in 0..400u32 {
            for f in (e + 1)..400u32 {
                if h.inc(e, f) >= 3 {
                    deep += 1;
                }
            }
        }
        assert_eq!(deep, 0, "uniform null model produced a deep overlap");
    }

    #[test]
    fn chung_lu_matches_weight_ordering() {
        let m = ChungLuModel::zipf(500, 1.0, 4_000);
        let h = m.generate(3);
        // Head vertices must have much higher degree than tail vertices.
        let head: usize = (0..10u32).map(|v| h.vertex_degree(v)).sum();
        let tail: usize = (490..500u32).map(|v| h.vertex_degree(v)).sum();
        assert!(head > 5 * tail.max(1), "head {head} vs tail {tail}");
    }

    #[test]
    fn chung_lu_zero_weight_vertices_never_used() {
        let mut weights = vec![1.0; 50];
        weights[7] = 0.0;
        weights[33] = 0.0;
        let m = ChungLuModel {
            vertex_weights: weights,
            num_edges: 300,
            edge_size_min: 2,
            edge_size_max: 6,
            edge_size_exponent: 1.5,
        };
        let h = m.generate(4);
        assert_eq!(h.vertex_degree(7), 0);
        assert_eq!(h.vertex_degree(33), 0);
    }

    #[test]
    fn chung_lu_deterministic() {
        let m = ChungLuModel::zipf(100, 0.8, 200);
        assert_eq!(m.generate(9), m.generate(9));
        assert_ne!(m.generate(9), m.generate(10));
    }
}
