//! Figure 11: the hashmap algorithms vs an SpGEMM-based approach.
//!
//! Sweeps `s` on the email-EuAll and Friendster profiles, timing four
//! constructions: SpGEMM+Filter (full product), SpGEMM+Filter+Upper
//! (upper triangle only), Algorithm 1 (1CA) and Algorithm 2 (2BA).
//! Expect Algorithm 2 fastest at every s, with the gap widening as `s`
//! grows (degree pruning — the SpGEMM cost is s-independent). Also
//! verifies Friendster's 20 planted deep communities: the s = 1024 line
//! graph has exactly 20 connected components (§VI-G).
//!
//! `cargo run -p hyperline-bench --release --bin fig11_spgemm`
//! Options: `--seed=42 --reps=1`

use hyperline_bench::{arg, median_secs, print_header};
use hyperline_gen::Profile;
use hyperline_hypergraph::{relabel_edges_by_degree, Hypergraph, RelabelOrder};
use hyperline_slinegraph::{
    algo1_slinegraph, algo2_slinegraph, spgemm_slinegraph, Partition, SLineGraph, Strategy,
};
use hyperline_util::table::Table;

fn sweep(h: &Hypergraph, name: &str, s_values: &[u32], reps: usize) {
    println!(
        "\n--- {name}: {} vertices, {} edges ---",
        h.num_vertices(),
        h.num_edges()
    );
    let asc = relabel_edges_by_degree(h, RelabelOrder::Ascending);
    let algo1_strategy = Strategy::default().with_partition(Partition::Cyclic);
    let algo2_strategy = Strategy::default().with_partition(Partition::Blocked);

    let mut table = Table::new([
        "s",
        "SpGEMM+Filter",
        "SpGEMM+F+Upper",
        "1CA",
        "2BA",
        "|E(L_s)|",
    ]);
    for &s in s_values {
        let t_full = median_secs(reps, || {
            std::hint::black_box(spgemm_slinegraph(h, s, false).edges.len());
        });
        let t_upper = median_secs(reps, || {
            std::hint::black_box(spgemm_slinegraph(h, s, true).edges.len());
        });
        let t_algo1 = median_secs(reps, || {
            std::hint::black_box(
                algo1_slinegraph(&asc.hypergraph, s, &algo1_strategy)
                    .edges
                    .len(),
            );
        });
        let t_algo2 = median_secs(reps, || {
            std::hint::black_box(
                algo2_slinegraph(&asc.hypergraph, s, &algo2_strategy)
                    .edges
                    .len(),
            );
        });
        let edges = algo2_slinegraph(&asc.hypergraph, s, &algo2_strategy)
            .edges
            .len();
        table.row([
            s.to_string(),
            format!("{:.1}ms", t_full * 1e3),
            format!("{:.1}ms", t_upper * 1e3),
            format!("{:.1}ms", t_algo1 * 1e3),
            format!("{:.1}ms", t_algo2 * 1e3),
            edges.to_string(),
        ]);
    }
    table.print();
}

fn main() {
    print_header("Figure 11: hashmap algorithms vs SpGEMM+Filter");
    let seed: u64 = arg("seed", 42);
    let reps: usize = arg("reps", 1);

    let email = Profile::EmailEuAll.generate(seed);
    sweep(&email, "email-EuAll", &[2, 4, 8, 16, 32, 64, 128], reps);

    let friendster = Profile::Friendster.generate(seed);
    sweep(
        &friendster,
        "Friendster",
        &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
        reps,
    );

    // §VI-G: the s = 1024 line graph of Friendster reveals the planted
    // deep-core communities.
    let r = algo2_slinegraph(&friendster, 1024, &Strategy::default());
    let slg = SLineGraph::new_squeezed(1024, friendster.num_edges(), r.edges);
    let comps = slg.connected_components();
    println!(
        "\nFriendster at s = 1024: {} edges in L_s, {} connected components (paper: 20)",
        slg.num_edges(),
        comps.len()
    );
}
