//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the exact subset hyperline's property tests use: range
//! strategies, [`collection::vec`], `prop_map` / `prop_flat_map`
//! combinators, the [`proptest!`] macro with `#![proptest_config(...)]`,
//! and the `prop_assert!` family. Cases are generated from a fixed
//! per-case seed so failures are reproducible; shrinking is not
//! implemented (a failing case prints its index and panics like a plain
//! assertion).

#![warn(missing_docs)]

use rand::prelude::*;

/// Test-runner configuration (only the case count is supported).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::prelude::*;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A fixed value as a (constant) strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::prelude::*;

    /// A size specification for [`vec`]: any integer range shape.
    pub trait SizeRange {
        /// Draws a length.
        fn pick_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element` draws with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

/// Runs `cases` seeded cases of `body` (used by the [`proptest!`] macro;
/// not part of upstream proptest's public API).
pub fn run_cases(config: ProptestConfig, test_name: &str, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..config.cases {
        // A fixed, per-test, per-case seed: failures are reproducible and
        // distinct tests see distinct streams.
        let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(case).wrapping_mul(0x100_0000_01b3);
        for b in test_name.bytes() {
            seed = seed.rotate_left(7) ^ u64::from(b);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        body(&mut rng);
    }
}

/// Defines property tests: each `name(arg in strategy, ...)` block becomes
/// a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($config, stringify!($name), |__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..25, s in 1u32..4) {
            prop_assert!((2..25).contains(&n));
            prop_assert!((1..4).contains(&s));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..10, 3..=6usize)) {
            prop_assert!((3..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0..n as u32, n..=n).prop_map(move |v| (n, v))
        });
        crate::run_cases(ProptestConfig::with_cases(64), "flat_map", |rng| {
            let (n, v) = strat.generate(rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| (x as usize) < n));
        });
    }
}
