//! The sync seam: the one place the workspace chooses between real
//! `std::sync` primitives and the `hyperline-sched` model-checker shims.
//!
//! Concurrent production code imports its sync types from here —
//! `crate::sync::atomic::{AtomicU64, Ordering}`, `crate::sync::Mutex`,
//! `crate::sync::thread` — never from `std::sync` directly. Normal
//! builds resolve every name to the std original (type aliases, zero
//! cost). Under `RUSTFLAGS="--cfg hyperline_sched"` the same names
//! resolve to the shims in [`hyperline_sched`], whose every operation
//! becomes a scheduling point the model checker controls, so the code
//! explored by `scripts/check.sh`'s sched step is byte-for-byte the code
//! that ships.
//!
//! Seam rules for future concurrent code (epoll core, router tier):
//!
//! 1. New concurrent modules import atomics/locks/thread-spawns from
//!    this module (or re-export it, as `hyperline_server::sync` does).
//! 2. `std::thread::scope` has no shim — scoped fork/join parallelism
//!    (see [`crate::parallel`]) is checked at the algorithm level by the
//!    worker-sweep tests instead; only its atomics go through the seam.
//! 3. Types not listed here (e.g. `RwLock`, channels) must grow a shim
//!    in `crates/sched` before concurrent code may use them.
//! 4. Model-checked units live in `#![cfg(hyperline_sched)]` test files
//!    and call [`hyperline_sched::explore`] with an oracle that must
//!    hold on *every* schedule.

/// `Arc` never needs shimming: its reference counts are internal and
/// the checker only schedules at user-visible sync operations.
pub use std::sync::Arc;

#[cfg(not(hyperline_sched))]
pub use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};

#[cfg(hyperline_sched)]
pub use hyperline_sched::sync::{
    Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult,
};

/// Atomic integer/bool types and `Ordering`, mirroring
/// `std::sync::atomic`'s layout.
pub mod atomic {
    #[cfg(not(hyperline_sched))]
    pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(hyperline_sched)]
    pub use hyperline_sched::sync::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize};

    pub use std::sync::atomic::Ordering;
}

/// Thread spawning, mirroring `std::thread`'s layout for the subset the
/// workspace uses on model-checked paths.
pub mod thread {
    #[cfg(not(hyperline_sched))]
    pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle};

    #[cfg(hyperline_sched)]
    pub use hyperline_sched::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
}
