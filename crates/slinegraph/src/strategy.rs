//! Execution strategies: the paper's Table III notation grid.
//!
//! A strategy combines a workload partition (Blocked/Cyclic/Dynamic), a
//! relabel-by-degree order (None/Ascending/Descending), a worker count,
//! an overlap-counter kind and the degree-pruning toggle. The notation
//! `2BA` reads: Algorithm 2, Blocked partitioning, relabel Ascending.

use crate::counter::CounterKind;
use crate::partition::Partition;
use hyperline_hypergraph::RelabelOrder;

/// Which s-line-graph construction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// All-pairs set intersection (no wedge traversal) — the naive
    /// baseline of §I.
    Naive,
    /// Set-intersection over wedge-connected pairs with heuristics — the
    /// HiPC'21 algorithm the paper compares against (Algorithm 1).
    Algo1,
    /// Hashmap-based overlap counting, no set intersections — the paper's
    /// contribution (Algorithm 2).
    Algo2,
    /// SpGEMM (`HᵀH`) followed by filtration (§III-G baseline). `upper`
    /// restricts the product to the upper triangle.
    SpGemm {
        /// Compute only the upper triangle of the (symmetric) product.
        upper: bool,
    },
}

impl Algorithm {
    /// Digit used in the paper's notation (`1`/`2`); baselines get letters.
    pub fn code(self) -> &'static str {
        match self {
            Algorithm::Naive => "N",
            Algorithm::Algo1 => "1",
            Algorithm::Algo2 => "2",
            Algorithm::SpGemm { upper: false } => "S",
            Algorithm::SpGemm { upper: true } => "Su",
        }
    }
}

/// Which triangle of the (symmetric) overlap matrix the wedge traversal
/// covers. Each unordered hyperedge pair is visited exactly once either
/// way; the paper pairs ascending relabeling with the upper triangle and
/// descending with the lower (§IV, "Relabeling").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TriangleSide {
    /// Traverse wedges `(e_i, v, e_j)` with `j > i` (the default).
    #[default]
    Upper,
    /// Traverse wedges with `j < i`.
    Lower,
}

/// Algorithm 1's heuristic toggles (§III-A lists them; all default on).
/// Turning them off reproduces progressively more naive variants for the
/// heuristics-ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Algo1Heuristics {
    /// Mark candidates already intersected for the current source edge
    /// ("skipping already visited hyperedges"). Off = one intersection
    /// per *wedge* instead of per *pair*.
    pub skip_visited: bool,
    /// Stop an intersection as soon as `s` matches are found or become
    /// unreachable ("short-circuiting set intersection").
    pub short_circuit: bool,
}

impl Default for Algo1Heuristics {
    fn default() -> Self {
        Self {
            skip_visited: true,
            short_circuit: true,
        }
    }
}

/// A full execution strategy for the s-overlap stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Strategy {
    /// Outer-loop workload partition.
    pub partition: Partition,
    /// Hyperedge relabel-by-degree order applied in preprocessing.
    pub relabel: RelabelOrder,
    /// Worker count; 0 means "use the ambient pool size"
    /// ([`hyperline_util::parallel::num_threads`]).
    pub num_workers: usize,
    /// Overlap-counter implementation (Algorithm 2/3 only).
    pub counter: CounterKind,
    /// Skip hyperedges with size < s (on by default; §III-E).
    pub degree_pruning: bool,
    /// Which triangle of the overlap matrix to traverse.
    pub triangle: TriangleSide,
    /// Algorithm 1's heuristic toggles.
    pub algo1_heuristics: Algo1Heuristics,
}

impl Default for Strategy {
    fn default() -> Self {
        Self {
            partition: Partition::Blocked,
            relabel: RelabelOrder::None,
            num_workers: 0,
            counter: CounterKind::DynamicMap,
            degree_pruning: true,
            triangle: TriangleSide::default(),
            algo1_heuristics: Algo1Heuristics::default(),
        }
    }
}

impl Strategy {
    /// Builder: sets the partition.
    pub fn with_partition(mut self, p: Partition) -> Self {
        self.partition = p;
        self
    }

    /// Builder: sets the relabel order.
    pub fn with_relabel(mut self, r: RelabelOrder) -> Self {
        self.relabel = r;
        self
    }

    /// Builder: sets the worker count (0 = ambient default).
    pub fn with_workers(mut self, w: usize) -> Self {
        self.num_workers = w;
        self
    }

    /// Builder: sets the counter kind.
    pub fn with_counter(mut self, c: CounterKind) -> Self {
        self.counter = c;
        self
    }

    /// Builder: toggles degree pruning.
    pub fn with_pruning(mut self, on: bool) -> Self {
        self.degree_pruning = on;
        self
    }

    /// Builder: sets the traversed triangle.
    pub fn with_triangle(mut self, t: TriangleSide) -> Self {
        self.triangle = t;
        self
    }

    /// Builder: sets Algorithm 1's heuristic toggles.
    pub fn with_algo1_heuristics(mut self, h: Algo1Heuristics) -> Self {
        self.algo1_heuristics = h;
        self
    }

    /// Resolved worker count.
    pub fn workers(&self) -> usize {
        if self.num_workers == 0 {
            hyperline_util::parallel::num_threads()
        } else {
            self.num_workers
        }
    }

    /// Paper notation for this strategy under `algorithm`, e.g. `2BA`.
    pub fn notation(&self, algorithm: Algorithm) -> String {
        format!(
            "{}{}{}",
            algorithm.code(),
            self.partition.code(),
            self.relabel.code()
        )
    }
}

/// The paper's 12-variant grid (Table III): Algorithms 1 and 2 × Blocked /
/// Cyclic × relabel None / Ascending / Descending, in the order of
/// Figure 7's x-axis.
pub fn table3_grid() -> Vec<(Algorithm, Strategy)> {
    let mut grid = Vec::with_capacity(12);
    for algorithm in [Algorithm::Algo1, Algorithm::Algo2] {
        for partition in [Partition::Blocked, Partition::Cyclic] {
            for relabel in RelabelOrder::ALL {
                grid.push((
                    algorithm,
                    Strategy::default()
                        .with_partition(partition)
                        .with_relabel(relabel),
                ));
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notation_matches_paper() {
        let s = Strategy::default()
            .with_partition(Partition::Blocked)
            .with_relabel(RelabelOrder::Ascending);
        assert_eq!(s.notation(Algorithm::Algo2), "2BA");
        let s = Strategy::default()
            .with_partition(Partition::Cyclic)
            .with_relabel(RelabelOrder::None);
        assert_eq!(s.notation(Algorithm::Algo1), "1CN");
        assert_eq!(s.notation(Algorithm::SpGemm { upper: true }), "SuCN");
    }

    #[test]
    fn grid_has_twelve_unique_variants() {
        let grid = table3_grid();
        assert_eq!(grid.len(), 12);
        let notations: std::collections::HashSet<String> =
            grid.iter().map(|(a, s)| s.notation(*a)).collect();
        assert_eq!(notations.len(), 12);
        assert!(notations.contains("1BN"));
        assert!(notations.contains("2CD"));
    }

    #[test]
    fn workers_resolves_zero_to_pool_size() {
        let s = Strategy::default();
        assert_eq!(s.workers(), hyperline_util::parallel::num_threads());
        let s = s.with_workers(3);
        assert_eq!(s.workers(), 3);
    }

    #[test]
    fn builder_chain() {
        let s = Strategy::default()
            .with_partition(Partition::Dynamic { chunk: 64 })
            .with_counter(CounterKind::DenseArray)
            .with_pruning(false)
            .with_triangle(TriangleSide::Lower)
            .with_algo1_heuristics(Algo1Heuristics {
                skip_visited: false,
                short_circuit: true,
            })
            .with_workers(2);
        assert_eq!(s.partition, Partition::Dynamic { chunk: 64 });
        assert_eq!(s.counter, CounterKind::DenseArray);
        assert!(!s.degree_pruning);
        assert_eq!(s.triangle, TriangleSide::Lower);
        assert!(!s.algo1_heuristics.skip_visited);
        assert_eq!(s.num_workers, 2);
    }

    #[test]
    fn heuristics_default_all_on() {
        let h = Algo1Heuristics::default();
        assert!(h.skip_visited && h.short_circuit);
    }
}
