//! Lock-free telemetry primitives: latency histograms and pipeline spans.
//!
//! Two building blocks, both std-only and cheap enough for hot paths:
//!
//! * [`Histogram`] — an HdrHistogram-style log-bucketed latency
//!   histogram: power-of-two major buckets split into [`SUB_BUCKETS`]
//!   linear sub-buckets, every count an `AtomicU64`. Recording is
//!   lock-free (four relaxed atomic ops), histograms merge, and
//!   quantiles (p50/p90/p99/p999) come out of a consistent
//!   [`HistogramSnapshot`] with bounded relative error (half a
//!   sub-bucket, ≤ 1/32 of the value).
//! * [`Span`] — RAII stage timing. `Span::enter("counting")` inside an
//!   active [`collect`] scope records wall time under a `/`-separated
//!   stage path ("stage5/components"); outside one it is a no-op (no
//!   clock read, no allocation), so library code can be instrumented
//!   unconditionally. [`crate::parallel::scope_workers`] propagates the
//!   active scope into spawned workers, so spans inside parallel loops
//!   land in the same report.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::fxhash::FxHashMap;

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// log2 of the linear sub-buckets per power-of-two major bucket.
pub const SUB_BUCKET_BITS: u32 = 4;
/// Linear sub-buckets per major bucket (16 → ≤ 6.25% bucket width).
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Major (power-of-two) buckets: values `< SUB_BUCKETS` are exact in
/// major 0; majors 1..=60 cover the rest of the `u64` range.
pub const MAJOR_BUCKETS: usize = 64 - SUB_BUCKET_BITS as usize + 1;
/// Total bucket count.
pub const NUM_BUCKETS: usize = MAJOR_BUCKETS * SUB_BUCKETS;

/// Bucket index for a value: values below [`SUB_BUCKETS`] map exactly;
/// larger values keep their top `SUB_BUCKET_BITS + 1` significant bits.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
    let major = (exp - SUB_BUCKET_BITS + 1) as usize;
    let sub = ((value >> (exp - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    major * SUB_BUCKETS + sub
}

/// Inclusive `[low, high]` value range covered by bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        return (index as u64, index as u64);
    }
    let major = (index / SUB_BUCKETS) as u32;
    let sub = (index % SUB_BUCKETS) as u64;
    let shift = major - 1;
    let low = (SUB_BUCKETS as u64 + sub) << shift;
    let width = 1u64 << shift;
    (low, low.saturating_add(width - 1))
}

/// A lock-free log-bucketed histogram of `u64` samples (typically
/// microseconds). Recording never blocks; reading takes a
/// [`HistogramSnapshot`] for consistent quantiles.
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: four relaxed atomic RMW ops.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    #[inline]
    pub fn record_micros(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (exact, not bucketed).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Adds every count from `other` into `self` (merge is commutative
    /// and associative; concurrent recording on either side is safe).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.counts.iter().zip(other.counts.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Takes a point-in-time copy for consistent quantile extraction.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            max: self.max(),
        }
    }

    /// Convenience: quantile straight off a fresh snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A non-atomic copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the bucket midpoint of the
    /// sample with (1-based) rank `ceil(q · count)`, clamped to the
    /// exact recorded max. Returns 0 for an empty snapshot. Relative
    /// error is bounded by half a bucket width (≤ 1/32 of the value).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (low, high) = bucket_bounds(i);
                return (low + (high - low) / 2).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, cumulative count)`
    /// pairs in ascending bound order — the shape a Prometheus
    /// `_bucket{le=...}` series needs.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_bounds(i).1, cum));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// Aggregate timing for one stage path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageAgg {
    /// Times the stage ran.
    pub count: u64,
    /// Total wall nanoseconds across runs.
    pub total_nanos: u64,
    /// Slowest single run, nanoseconds.
    pub max_nanos: u64,
}

impl StageAgg {
    fn record(&mut self, nanos: u64) {
        self.count += 1;
        self.total_nanos += nanos;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &StageAgg) {
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

#[derive(Default)]
struct SpanCollector {
    stages: Mutex<FxHashMap<String, StageAgg>>,
}

impl SpanCollector {
    fn record(&self, path: &str, nanos: u64) {
        let mut stages = self.stages.lock().unwrap();
        match stages.get_mut(path) {
            Some(agg) => agg.record(nanos),
            None => {
                let mut agg = StageAgg::default();
                agg.record(nanos);
                stages.insert(path.to_string(), agg);
            }
        }
    }
}

/// The ambient span scope: the sink spans record into plus the current
/// stage-path prefix. Cloneable so [`crate::parallel::scope_workers`]
/// can install the caller's scope on spawned workers.
#[derive(Clone)]
pub struct SpanContext {
    sink: Arc<SpanCollector>,
    path: String,
}

thread_local! {
    static CURRENT: RefCell<Option<SpanContext>> = const { RefCell::new(None) };
}

/// The calling thread's active span scope, if any.
pub fn current_context() -> Option<SpanContext> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Runs `f` with `ctx` installed as the thread's span scope, restoring
/// the previous scope afterwards (also on panic).
pub fn with_context<T>(ctx: Option<SpanContext>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<SpanContext>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT.with(|c| c.replace(ctx));
    let _restore = Restore(prev);
    f()
}

/// Runs `f` with a fresh span scope and returns its result together
/// with the aggregated [`StageReport`] of every span entered inside
/// (including spans from parallel workers spawned through
/// [`crate::parallel::scope_workers`]).
pub fn collect<T>(f: impl FnOnce() -> T) -> (T, StageReport) {
    let sink = Arc::new(SpanCollector::default());
    let ctx = SpanContext {
        sink: Arc::clone(&sink),
        path: String::new(),
    };
    let out = with_context(Some(ctx), f);
    let mut stages: Vec<(String, StageAgg)> = sink
        .stages
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    stages.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    (out, StageReport { stages })
}

/// An RAII stage timer. Created with [`Span::enter`]; records elapsed
/// wall time into the ambient scope on drop. A no-op (no clock read)
/// when no scope is active.
pub struct Span {
    start: Option<Instant>,
    prev_path: String,
}

impl Span {
    /// Enters stage `name`, nesting under any enclosing span
    /// (`outer/name` in the report).
    pub fn enter(name: &str) -> Span {
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            match cur.as_mut() {
                None => Span {
                    start: None,
                    prev_path: String::new(),
                },
                Some(ctx) => {
                    let prev_path = ctx.path.clone();
                    if !ctx.path.is_empty() {
                        ctx.path.push('/');
                    }
                    ctx.path.push_str(name);
                    Span {
                        start: Some(Instant::now()),
                        prev_path,
                    }
                }
            }
        })
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        CURRENT.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.sink.record(&ctx.path, nanos);
                ctx.path.truncate(self.prev_path.len());
            }
        });
    }
}

/// Aggregated span timings from one [`collect`] scope, sorted by stage
/// path (`/`-separated nesting).
#[derive(Debug, Clone, Default)]
pub struct StageReport {
    /// `(stage path, aggregate)` pairs sorted by path.
    pub stages: Vec<(String, StageAgg)>,
}

impl StageReport {
    /// True when no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Aggregate for an exact stage path, if recorded.
    pub fn get(&self, path: &str) -> Option<&StageAgg> {
        self.stages
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
            .ok()
            .map(|i| &self.stages[i].1)
    }

    /// Folds this report into a path-keyed aggregate map.
    pub fn merge_into(&self, target: &mut FxHashMap<String, StageAgg>) {
        for (path, agg) in &self.stages {
            target.entry(path.clone()).or_default().merge(agg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_bounds_consistent() {
        let mut prev = 0usize;
        let mut checked = 0u64;
        let mut v = 0u64;
        while v < u64::MAX / 2 {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            let (low, high) = bucket_bounds(i);
            assert!(
                low <= v && v <= high,
                "{v} outside [{low},{high}] (bucket {i})"
            );
            prev = i;
            checked += 1;
            v = (v + 1) + v / 3;
        }
        assert!(checked > 50);
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), SUB_BUCKETS as u64);
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(1.0), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn sum_and_max_are_exact() {
        let h = Histogram::new();
        for v in [3u64, 17, 1000, 123_456_789] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 3 + 17 + 1000 + 123_456_789);
        assert_eq!(h.max(), 123_456_789);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
        assert!(h.snapshot().cumulative_buckets().is_empty());
    }

    #[test]
    fn cumulative_buckets_end_at_total() {
        let h = Histogram::new();
        for v in [1u64, 1, 5, 900, 900, 900, 1_000_000] {
            h.record(v);
        }
        let buckets = h.snapshot().cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, 7);
        assert!(buckets
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn spans_record_nested_paths() {
        let ((), report) = collect(|| {
            let _outer = Span::enter("stage5");
            {
                let _inner = Span::enter("components");
            }
            {
                let _inner = Span::enter("components");
            }
        });
        let inner = report.get("stage5/components").expect("nested path");
        assert_eq!(inner.count, 2);
        assert!(report.get("stage5").is_some());
        assert!(report.get("components").is_none());
    }

    #[test]
    fn spans_outside_collect_are_noops() {
        let _span = Span::enter("orphan");
        // Nothing to assert beyond "does not panic / leak state":
        let ((), report) = collect(|| ());
        assert!(report.is_empty());
    }

    #[test]
    fn spans_propagate_to_scoped_workers() {
        let ((), report) = collect(|| {
            let _counting = Span::enter("counting");
            crate::parallel::scope_workers(4, |_w| {
                let _worker = Span::enter("worker");
                std::hint::black_box(0u64)
            });
        });
        assert_eq!(report.get("counting/worker").unwrap().count, 4);
        assert_eq!(report.get("counting").unwrap().count, 1);
    }

    #[test]
    fn collect_restores_outer_scope() {
        let ((), outer) = collect(|| {
            let _a = Span::enter("outer-stage");
            let ((), inner) = collect(|| {
                let _b = Span::enter("inner-stage");
            });
            assert!(inner.get("inner-stage").is_some());
            assert!(inner.get("outer-stage").is_none());
        });
        assert!(outer.get("outer-stage").is_some());
        assert!(outer.get("inner-stage").is_none());
    }

    #[test]
    fn merge_into_accumulates() {
        let mut map = FxHashMap::default();
        for _ in 0..3 {
            let ((), r) = collect(|| {
                let _s = Span::enter("csr");
            });
            r.merge_into(&mut map);
        }
        assert_eq!(map["csr"].count, 3);
    }

    #[test]
    fn concurrent_recording_loses_no_counts() {
        let h = Histogram::new();
        let threads = 8;
        let per_thread = 50_000u64;
        crate::parallel::scope_workers(threads, |w| {
            for i in 0..per_thread {
                h.record((w as u64 * per_thread + i) % 10_000);
            }
        });
        assert_eq!(h.count(), threads as u64 * per_thread);
        assert_eq!(h.snapshot().count(), threads as u64 * per_thread);
    }

    #[test]
    fn merge_is_associative_on_snapshots() {
        let samples: [&[u64]; 3] = [&[1, 2, 3, 900], &[17, 17, 42_000], &[5]];
        let make = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let left = make(samples[0]);
        left.merge_from(&make(samples[1]));
        left.merge_from(&make(samples[2]));
        // a ⊕ (b ⊕ c)
        let bc = make(samples[1]);
        bc.merge_from(&make(samples[2]));
        let right = make(samples[0]);
        right.merge_from(&bc);
        let (l, r) = (left.snapshot(), right.snapshot());
        assert_eq!(l.count(), r.count());
        assert_eq!(l.sum(), r.sum());
        assert_eq!(l.max(), r.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(l.quantile(q), r.quantile(q));
        }
    }

    #[test]
    fn recording_overhead_under_one_micro() {
        let h = Histogram::new();
        let n = 200_000u64;
        let t = crate::timer::Timer::start();
        for i in 0..n {
            h.record(i % 65_536);
        }
        let per_sample = t.elapsed().as_nanos() as f64 / n as f64;
        assert_eq!(h.count(), n);
        // Acceptance bound is 1 µs/sample; a relaxed-atomic record is
        // ~10-50 ns even in debug builds.
        assert!(per_sample < 1000.0, "record took {per_sample:.0} ns/sample");
    }
}
