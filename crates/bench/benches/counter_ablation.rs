//! Criterion ablation: overlap-counter data structures (§III-F).
//!
//! The paper discusses dynamically-allocated per-iteration hashmaps vs
//! pre-allocated thread-local storage; most datasets prefer dynamic, but
//! dense-overlap inputs (their Web) prefer pre-allocated. This ablation
//! adds the dense-array counter as a third point in the design space, on
//! both a sparse-overlap and a dense-overlap input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperline_gen::CommunityModel;
use hyperline_hypergraph::Hypergraph;
use hyperline_slinegraph::{algo2_slinegraph, CounterKind, Strategy};
use std::hint::black_box;

fn sparse_overlap_input() -> Hypergraph {
    // Low affinity: wide hashmaps never grow large.
    CommunityModel {
        num_vertices: 8_000,
        num_edges: 8_000,
        edge_size_min: 2,
        edge_size_max: 40,
        edge_size_exponent: 2.2,
        num_communities: 400,
        core_size: 25,
        affinity: 0.3,
        community_skew: 0.6,
        vertex_skew: 0.6,
    }
    .generate(2)
}

fn dense_overlap_input() -> Hypergraph {
    // Web-like: high affinity, big cores — every source edge accumulates
    // a large neighborhood, which the paper says favors pre-allocation.
    CommunityModel {
        num_vertices: 4_000,
        num_edges: 6_000,
        edge_size_min: 5,
        edge_size_max: 300,
        edge_size_exponent: 1.8,
        num_communities: 40,
        core_size: 120,
        affinity: 0.85,
        community_skew: 0.9,
        vertex_skew: 1.0,
    }
    .generate(3)
}

fn counter_ablation(c: &mut Criterion) {
    let inputs = [
        ("sparse-overlap", sparse_overlap_input()),
        ("dense-overlap", dense_overlap_input()),
    ];
    let mut group = c.benchmark_group("counter_ablation");
    group.sample_size(10);
    for (name, h) in &inputs {
        for kind in CounterKind::ALL {
            let strategy = Strategy::default().with_counter(kind);
            group.bench_with_input(
                BenchmarkId::new(kind.label(), name),
                &strategy,
                |b, strategy| b.iter(|| black_box(algo2_slinegraph(h, 4, strategy).edges.len())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, counter_ablation);
criterion_main!(benches);
