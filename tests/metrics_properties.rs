//! Property tests for the Stage-5 metric kernels on generated s-line
//! graphs: invariants that must hold regardless of input shape.

use hyperline::graph::{betweenness, cc, closeness, kcore, pagerank, spectral};
use hyperline::prelude::*;
use hyperline::slinegraph::walks;
use hyperline::slinegraph::{SLineGraph, Strategy};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

fn hypergraph_gen() -> impl PropStrategy<Value = Hypergraph> {
    (2usize..25).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0..n as u32, 0..=n.min(8)), 1..30)
            .prop_map(move |lists| Hypergraph::from_edge_lists(&lists, n))
    })
}

fn slg_of(h: &Hypergraph, s: u32) -> SLineGraph {
    let r = algo2_slinegraph(h, s, &Strategy::default());
    SLineGraph::new_squeezed(s, h.num_edges(), r.edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn components_partition_the_vertex_set(h in hypergraph_gen(), s in 1u32..4) {
        let slg = slg_of(&h, s);
        let comps = slg.connected_components();
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for comp in &comps {
            for &e in comp {
                prop_assert!(seen.insert(e), "hyperedge {e} in two components");
                total += 1;
            }
        }
        prop_assert_eq!(total, slg.num_vertices());
    }

    #[test]
    fn s_distance_is_a_metric_on_components(h in hypergraph_gen(), s in 1u32..3) {
        let slg = slg_of(&h, s);
        let comps = slg.connected_components();
        if let Some(comp) = comps.first() {
            let sample: Vec<u32> = comp.iter().take(5).copied().collect();
            for &a in &sample {
                prop_assert_eq!(slg.s_distance(a, a), Some(0));
                for &b in &sample {
                    let dab = slg.s_distance(a, b);
                    prop_assert_eq!(dab, slg.s_distance(b, a), "symmetry");
                    for &c in &sample {
                        if let (Some(ab), Some(bc), Some(ac)) =
                            (dab, slg.s_distance(b, c), slg.s_distance(a, c))
                        {
                            prop_assert!(ac <= ab + bc, "triangle inequality");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn betweenness_nonnegative_and_leaves_zero(h in hypergraph_gen(), s in 1u32..3) {
        let slg = slg_of(&h, s);
        let bc = slg.betweenness();
        for &(e, score) in &bc {
            prop_assert!(score >= 0.0);
            if let Some(v) = slg.graph_vertex(e) {
                if slg.graph().degree(v) == 1 {
                    prop_assert_eq!(score, 0.0, "degree-1 vertex {} must have zero betweenness", e);
                }
            }
        }
    }

    #[test]
    fn pagerank_sums_to_one(h in hypergraph_gen(), s in 1u32..3) {
        let slg = slg_of(&h, s);
        if slg.num_vertices() > 0 {
            let pr = pagerank::pagerank(slg.graph(), pagerank::PageRankOptions::default());
            let total: f64 = pr.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "sum {total}");
            prop_assert!(pr.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn core_numbers_bounded_by_degree_and_monotone(h in hypergraph_gen(), s in 1u32..3) {
        let slg = slg_of(&h, s);
        let g = slg.graph();
        let core = kcore::core_numbers(g);
        for v in 0..g.num_vertices() as u32 {
            prop_assert!(core[v as usize] as usize <= g.degree(v));
        }
        // k-core vertex sets shrink as k grows.
        let d = kcore::degeneracy(g);
        let mut prev = g.num_vertices();
        for k in 0..=d {
            let cur = kcore::k_core_vertices(g, k).len();
            prop_assert!(cur <= prev);
            prev = cur;
        }
    }

    #[test]
    fn closeness_bounded_and_zero_for_isolated(h in hypergraph_gen(), s in 1u32..3) {
        let slg = slg_of(&h, s);
        let c = closeness::harmonic_closeness(slg.graph());
        for (v, &score) in c.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&score));
            if slg.graph().degree(v as u32) == 0 {
                prop_assert_eq!(score, 0.0);
            }
        }
    }

    #[test]
    fn spectral_lambda2_within_bounds(h in hypergraph_gen(), s in 1u32..3) {
        let slg = slg_of(&h, s);
        let lambda = slg.algebraic_connectivity();
        prop_assert!((0.0..=2.0 + 1e-9).contains(&lambda), "λ₂ = {lambda}");
    }

    #[test]
    fn shortest_walks_are_valid_s_walks(h in hypergraph_gen(), s in 1u32..3) {
        let slg = slg_of(&h, s);
        let comps = slg.connected_components();
        if let Some(comp) = comps.first() {
            let sample: Vec<u32> = comp.iter().take(4).copied().collect();
            for &a in &sample {
                for &b in &sample {
                    if let Some(walk) = walks::shortest_s_walk(&slg, a, b) {
                        prop_assert!(walks::is_s_path(&h, s, &walk), "walk {walk:?}");
                        prop_assert_eq!(walk.first().copied(), Some(a));
                        prop_assert_eq!(walk.last().copied(), Some(b));
                    }
                }
            }
        }
    }

    #[test]
    fn label_prop_union_find_bfs_agree_on_slg(h in hypergraph_gen(), s in 1u32..3) {
        let slg = slg_of(&h, s);
        let g = slg.graph();
        let bfs = cc::components_bfs(g);
        prop_assert_eq!(&cc::components_label_prop(g), &bfs);
        let edges: Vec<(u32, u32)> = g.iter_edges().collect();
        prop_assert_eq!(&cc::components_union_find(g.num_vertices(), &edges), &bfs);
    }

    #[test]
    fn sampled_betweenness_full_sampling_matches_exact(h in hypergraph_gen(), s in 1u32..3) {
        let slg = slg_of(&h, s);
        let g = slg.graph();
        if g.num_vertices() > 0 {
            let exact = betweenness::betweenness_parallel(g);
            let sampled = betweenness::betweenness_sampled(g, g.num_vertices(), 1);
            for (a, b) in exact.iter().zip(&sampled) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dense_and_iterative_spectra_agree_on_small_slgs(h in hypergraph_gen()) {
        let slg = slg_of(&h, 2);
        let g = slg.graph();
        if (2..=30).contains(&g.num_vertices()) {
            let labels = cc::components_bfs(g);
            let comp = cc::largest_component(&labels);
            if comp.len() >= 2 {
                let (sub, _) = g.induced(&comp);
                let iterative = spectral::algebraic_connectivity(
                    &sub,
                    spectral::SpectralOptions { tolerance: 1e-13, max_iterations: 50_000, ..Default::default() },
                );
                let dense = spectral::normalized_laplacian_dense(&sub).eigenvalues()[1];
                prop_assert!((iterative - dense).abs() < 1e-4, "{iterative} vs {dense}");
            }
        }
    }
}
