//! Connected components: BFS, parallel label propagation, and union-find.
//!
//! s-connected components of a hypergraph are exactly the connected
//! components of its s-line graph (Stage 5). The paper's Table V runs
//! Label-Propagation Connected Components (LPCC) end-to-end; we provide
//! LPCC, the frontier-parallel BFS path ([`components_parallel`], the
//! Stage-5 default) and two serial alternatives that double as
//! cross-checks.
//!
//! Every `components_*` function returns **canonical labels**: each
//! vertex is labeled with the smallest vertex ID in its component.
//! Helpers like [`component_count`] rely on that invariant.

use crate::graph::Graph;
use hyperline_util::parallel::par_for_each_range;
use hyperline_util::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::collections::VecDeque;

/// Component labels: `labels[v]` is the smallest vertex ID in `v`'s
/// component (a canonical representative).
pub type Labels = Vec<u32>;

/// Sequential BFS connected components (reference implementation).
pub fn components_bfs(g: &Graph) -> Labels {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = start;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = start;
                    queue.push_back(v);
                }
            }
        }
    }
    labels
}

/// Frontier-parallel BFS connected components (the Stage-5 default):
/// unvisited start vertices seed one parallel direction-optimizing BFS
/// each, in ascending ID order, so labels are canonical by construction
/// and byte-identical to [`components_bfs`] for every worker count.
/// [`components_label_prop`] (LPCC, the paper's Table-V kernel) serves
/// as an independent cross-check in the test suite.
pub fn components_parallel(g: &Graph) -> Labels {
    crate::frontier::components(g)
}

/// Parallel label-propagation connected components (LPCC).
///
/// Every vertex starts with its own ID; in each round, vertices adopt the
/// minimum label in their closed neighborhood. Rounds run in parallel with
/// atomic min-updates; iteration stops when a round makes no change.
pub fn components_label_prop(g: &Graph) -> Labels {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        par_for_each_range(n, |u| {
            let u = u as u32;
            let mut best = labels[u as usize].load(Ordering::Relaxed);
            for &v in g.neighbors(u) {
                best = best.min(labels[v as usize].load(Ordering::Relaxed));
            }
            if labels[u as usize].fetch_min(best, Ordering::Relaxed) > best {
                changed.store(true, Ordering::Relaxed);
                // Push the improvement to neighbors for faster convergence.
                for &v in g.neighbors(u) {
                    if labels[v as usize].fetch_min(best, Ordering::Relaxed) > best {
                        changed.store(true, Ordering::Relaxed);
                    }
                }
            }
        });
    }
    let mut out: Labels = labels.into_iter().map(AtomicU32::into_inner).collect();
    canonicalize(&mut out);
    out
}

/// Union-find (disjoint set union) with path halving and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Finds the representative of `x` with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Unions the sets containing `a` and `b`; returns true if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Union-find connected components (works directly on an edge list, so it
/// can run *before* building a CSR graph).
pub fn components_union_find(num_vertices: usize, edges: &[(u32, u32)]) -> Labels {
    let mut uf = UnionFind::new(num_vertices);
    for &(a, b) in edges {
        uf.union(a, b);
    }
    let mut labels: Labels = (0..num_vertices as u32).map(|v| uf.find(v)).collect();
    canonicalize(&mut labels);
    labels
}

/// Rewrites labels so each component's label is its smallest member ID.
fn canonicalize(labels: &mut [u32]) {
    let mut min_of = vec![u32::MAX; labels.len()];
    for (v, &l) in labels.iter().enumerate() {
        min_of[l as usize] = min_of[l as usize].min(v as u32);
    }
    for l in labels.iter_mut() {
        *l = min_of[*l as usize];
    }
}

/// Groups vertices by component, returning components sorted by decreasing
/// size (ties by smallest member).
pub fn components_as_sets(labels: &Labels) -> Vec<Vec<u32>> {
    let mut by_label: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for (v, &l) in labels.iter().enumerate() {
        by_label.entry(l).or_default().push(v as u32);
    }
    let mut out: Vec<Vec<u32>> = by_label.into_values().collect();
    out.sort_by_key(|c| (std::cmp::Reverse(c.len()), c[0]));
    out
}

/// Number of distinct components.
///
/// Requires **root-consistent labels** — every label must itself be a
/// fixed point, `labels[l] == l`. Canonical labels (the smallest member
/// ID, which every `components_*` function in this module returns) and
/// raw union-find representatives both satisfy this, and then each
/// component has exactly one fixed point, so a single counting pass
/// replaces the old hash-set build over all labels. The invariant is
/// checked in all builds (it costs one load per vertex); violating
/// input panics instead of silently miscounting.
pub fn component_count(labels: &Labels) -> usize {
    let mut count = 0usize;
    for (v, &l) in labels.iter().enumerate() {
        assert!(
            labels[l as usize] == l,
            "component_count requires root-consistent labels (labels[{l}] != {l})"
        );
        if l == v as u32 {
            count += 1;
        }
    }
    count
}

/// Number of components with at least two vertices ("non-singleton
/// components", the quantity the paper tracks when choosing max s).
pub fn non_singleton_component_count(labels: &Labels) -> usize {
    components_as_sets(labels)
        .iter()
        .filter(|c| c.len() > 1)
        .count()
}

/// The vertices of the largest component (empty input gives empty vec).
pub fn largest_component(labels: &Labels) -> Vec<u32> {
    components_as_sets(labels)
        .into_iter()
        .next()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn two_triangles_and_isolated() -> Graph {
        Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn bfs_components() {
        let g = two_triangles_and_isolated();
        let labels = components_bfs(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3, 6]);
    }

    #[test]
    fn label_prop_matches_bfs() {
        let g = two_triangles_and_isolated();
        assert_eq!(components_label_prop(&g), components_bfs(&g));
    }

    #[test]
    fn parallel_matches_bfs() {
        let g = two_triangles_and_isolated();
        assert_eq!(components_parallel(&g), components_bfs(&g));
    }

    #[test]
    fn union_find_matches_bfs() {
        let g = two_triangles_and_isolated();
        let edges: Vec<(u32, u32)> = g.iter_edges().collect();
        assert_eq!(components_union_find(7, &edges), components_bfs(&g));
    }

    #[test]
    fn all_three_agree_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let n = rng.gen_range(1..60usize);
            let nedges = rng.gen_range(0..100usize);
            let edges: Vec<(u32, u32)> = (0..nedges)
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .collect();
            let g = Graph::from_edges(n, &edges);
            let bfs = components_bfs(&g);
            assert_eq!(components_label_prop(&g), bfs);
            assert_eq!(components_union_find(n, &edges), bfs);
            assert_eq!(components_parallel(&g), bfs);
        }
    }

    #[test]
    fn component_helpers() {
        let g = two_triangles_and_isolated();
        let labels = components_bfs(&g);
        assert_eq!(component_count(&labels), 3);
        assert_eq!(non_singleton_component_count(&labels), 2);
        let sets = components_as_sets(&labels);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0], vec![0, 1, 2]); // tie broken by smallest member
        assert_eq!(sets[1], vec![3, 4, 5]);
        assert_eq!(sets[2], vec![6]);
        assert_eq!(largest_component(&labels), vec![0, 1, 2]);
    }

    #[test]
    fn component_count_accepts_any_root_consistent_labeling() {
        // Non-canonical but root-consistent (2 is its own label, 0 and 1
        // point at it): still counts correctly.
        assert_eq!(component_count(&vec![2, 2, 2, 3]), 2);
    }

    #[test]
    #[should_panic(expected = "root-consistent")]
    fn component_count_rejects_non_root_labels() {
        // Label 1 is not a fixed point (labels[1] == 0): a silent
        // miscount in the old fixed-point scheme, now a loud error.
        component_count(&vec![0, 0, 1]);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
        assert!(uf.union(0, 3));
        assert_eq!(uf.find(1), uf.find(2));
        assert_eq!(uf.len(), 4);
    }

    #[test]
    fn empty_and_singleton() {
        let g = Graph::from_edges(0, &[]);
        assert!(components_bfs(&g).is_empty());
        assert!(components_label_prop(&g).is_empty());
        let g1 = Graph::from_edges(1, &[]);
        assert_eq!(components_bfs(&g1), vec![0]);
        assert_eq!(largest_component(&components_bfs(&g1)), vec![0]);
    }

    #[test]
    fn path_graph_single_component() {
        let n = 500;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
        let g = Graph::from_edges(n, &edges);
        let labels = components_label_prop(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
