//! Embeds the git commit into the server at compile time, so
//! `GET /metrics` can report exactly which build is serving.

use std::process::Command;

fn main() {
    let commit = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=HYPERLINE_GIT_COMMIT={commit}");
    // Rebuild when HEAD moves so the reported commit never goes stale.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
