//! Figure 2: the example hypergraph's s-line graphs as Graphviz drawings.
//!
//! Writes one DOT file per s = 1..4 with edge widths proportional to the
//! overlap size — the paper's Figure 2 rendering convention — plus a DOT
//! of the bipartite incidence structure (Figure 3 left).
//!
//! `cargo run -p hyperline-bench --release --bin fig2_drawings -- --dir=/tmp`

use hyperline_bench::{arg, print_header};
use hyperline_graph::{dot, WeightedGraph};
use hyperline_hypergraph::Hypergraph;
use hyperline_slinegraph::{algo2_slinegraph_weighted, Strategy};
use hyperline_util::IdSqueezer;
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() {
    print_header("Figure 2: s-line graphs of the running example, as DOT");
    let dir: String = arg("dir", std::env::temp_dir().display().to_string());
    let dir = PathBuf::from(dir);
    let h = Hypergraph::paper_example();

    for s in 1..=4u32 {
        let (edges, _) = algo2_slinegraph_weighted(&h, s, &Strategy::default());
        let squeezer = IdSqueezer::from_ids(edges.iter().flat_map(|&(a, b, _)| [a, b]));
        let compact: Vec<(u32, u32, u32)> = edges
            .iter()
            .map(|&(a, b, w)| {
                (
                    squeezer.squeeze(a).unwrap(),
                    squeezer.squeeze(b).unwrap(),
                    w,
                )
            })
            .collect();
        let wg = WeightedGraph::from_edges(squeezer.len().max(1), &compact);
        // Hyperedges are named 1..4 in the paper.
        let text = dot::to_dot_weighted(&wg, |v| (squeezer.unsqueeze(v) + 1).to_string());
        let path = dir.join(format!("fig2_s{s}.dot"));
        std::fs::write(&path, &text).expect("write DOT");
        println!("s={s}: {} edges -> {}", edges.len(), path.display());
    }

    // Figure 3 (left): the bipartite incidence graph B(H).
    let mut bip = String::from("graph {\n  rankdir=LR;\n");
    for e in 0..h.num_edges() as u32 {
        let _ = writeln!(bip, "  e{e} [label=\"{}\", shape=box];", e + 1);
    }
    for v in 0..h.num_vertices() as u32 {
        let _ = writeln!(
            bip,
            "  v{v} [label=\"{}\", shape=circle];",
            (b'a' + v as u8) as char
        );
    }
    for e in 0..h.num_edges() as u32 {
        for &v in h.edge_vertices(e) {
            let _ = writeln!(bip, "  e{e} -- v{v};");
        }
    }
    bip.push_str("}\n");
    let path = dir.join("fig3_bipartite.dot");
    std::fs::write(&path, &bip).expect("write DOT");
    println!("bipartite B(H) -> {}", path.display());
    println!("\nrender with: dot -Tpng <file> -o out.png");
}
