//! Line/token-level rules (HL001–HL006) and the masking machinery.
//!
//! These predate the parser and remain the right tool where syntax
//! depth buys nothing: adjacency of a `// ordering:` comment (HL001),
//! pattern bans (HL002/HL003/HL004), and manifest policy (HL006).
//! HL005 is the *fallback* panic rule: the interprocedural HL007
//! supersedes it wherever the parser succeeds, so the caller applies
//! HL005 only to server files whose parse failed — conservative
//! line-level coverage for code the analyzer cannot resolve.
//!
//! `mask()` blanks comments and string/char literals (preserving line
//! structure) so rule patterns never match inside them; nested block
//! comments, multi-hash raw strings (`r##"…"##`) and byte/raw-byte
//! strings (`b"…"`, `br"…"`) all blank correctly.

use crate::Finding;

/// Per-file precomputed context shared by the line rules, so masking
/// and test-region detection run once while each rule is timed alone.
pub struct LineCtx {
    /// Repo-relative path.
    pub rel: String,
    /// Raw source lines.
    pub raw: Vec<String>,
    /// Masked source lines (same count as `raw`).
    pub masked: Vec<String>,
    /// True where the line sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// File lives under a kernel crate's `src/`.
    pub kernel: bool,
    /// File lives under `crates/server/src/`.
    pub server: bool,
}

/// Builds the shared context for one file.
pub fn line_ctx(rel: &str, text: &str) -> LineCtx {
    let masked_text = mask(text);
    let masked: Vec<String> = masked_text.lines().map(|l| l.to_string()).collect();
    let masked_refs: Vec<&str> = masked.iter().map(|s| s.as_str()).collect();
    let in_test = test_regions(&masked_refs);
    LineCtx {
        rel: rel.to_string(),
        raw: text.lines().map(|l| l.to_string()).collect(),
        masked,
        in_test,
        kernel: [
            "crates/graph/src/",
            "crates/slinegraph/src/",
            "crates/sparse/src/",
        ]
        .iter()
        .any(|p| rel.starts_with(p)),
        server: rel.starts_with("crates/server/src/"),
    }
}

/// HL001: non-Relaxed orderings need an adjacent `// ordering:` note.
pub fn hl001(ctx: &LineCtx, findings: &mut Vec<Finding>) {
    for (i, m) in ctx.masked.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let raw = ctx.raw.get(i).map(|s| s.as_str()).unwrap_or("");
        for ord in [
            "Ordering::Acquire",
            "Ordering::Release",
            "Ordering::AcqRel",
            "Ordering::SeqCst",
        ] {
            if m.contains(ord) {
                // Accept a trailing comment on the same line, or an
                // `// ordering:` anywhere in the contiguous comment
                // block directly above.
                let mut documented = raw.contains("// ordering:");
                let mut k = i;
                while !documented && k > 0 {
                    let above = ctx.raw[k - 1].trim_start();
                    if !above.starts_with("//") {
                        break;
                    }
                    documented = above.starts_with("// ordering:");
                    k -= 1;
                }
                if !documented {
                    findings.push(Finding {
                        file: ctx.rel.clone(),
                        line: i + 1,
                        rule: "HL001",
                        what: format!("undocumented `{ord}`"),
                        hint: "add an adjacent `// ordering: <why this fence>` comment, or relax to Ordering::Relaxed",
                    });
                }
            }
        }
    }
}

/// HL002: `partial_cmp(..).unwrap()` — panics on NaN.
pub fn hl002(ctx: &LineCtx, findings: &mut Vec<Finding>) {
    for (i, m) in ctx.masked.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if let Some(at) = m.find("partial_cmp") {
            let next = ctx.masked.get(i + 1).map(|s| s.as_str()).unwrap_or("");
            if m[at..].contains(".unwrap()") || next.trim_start().starts_with(".unwrap()") {
                findings.push(Finding {
                    file: ctx.rel.clone(),
                    line: i + 1,
                    rule: "HL002",
                    what: "`partial_cmp(..).unwrap()` panics on NaN".to_string(),
                    hint: "use f64::total_cmp (NaN-total, never panics) for metric ordering",
                });
            }
        }
    }
}

/// HL003: no `unsafe` anywhere — even inside `#[cfg(test)]` — except
/// the one sanctioned syscall shim (`crates/server/src/sys.rs`), where
/// HL010 takes over and demands a `// safety:` note per block.
pub fn hl003(ctx: &LineCtx, findings: &mut Vec<Finding>) {
    if ctx.rel == "crates/server/src/sys.rs" {
        return;
    }
    for (i, m) in ctx.masked.iter().enumerate() {
        if has_word(m, "unsafe") {
            let raw = ctx.raw.get(i).map(|s| s.as_str()).unwrap_or("");
            findings.push(Finding {
                file: ctx.rel.clone(),
                line: i + 1,
                rule: "HL003",
                what: format!("`unsafe` is forbidden in this workspace: {}", raw.trim()),
                hint: "rewrite with safe primitives; syscall shims belong in crates/server/src/sys.rs",
            });
        }
    }
}

/// HL010: every `unsafe` block needs an adjacent `// safety:` note —
/// on the same line or in the contiguous comment block directly above
/// (the HL001 adjacency shape). Runs everywhere, but only the
/// sanctioned shim file legitimately reaches it: elsewhere HL003
/// already bans the keyword outright.
pub fn hl010(ctx: &LineCtx, findings: &mut Vec<Finding>) {
    for (i, m) in ctx.masked.iter().enumerate() {
        if !has_word(m, "unsafe") {
            continue;
        }
        let raw = ctx.raw.get(i).map(|s| s.as_str()).unwrap_or("");
        let mut documented = raw.contains("// safety:");
        let mut k = i;
        while !documented && k > 0 {
            let above = ctx.raw[k - 1].trim_start();
            if !above.starts_with("//") {
                break;
            }
            documented = above.starts_with("// safety:");
            k -= 1;
        }
        if !documented {
            findings.push(Finding {
                file: ctx.rel.clone(),
                line: i + 1,
                rule: "HL010",
                what: format!("undocumented `unsafe`: {}", raw.trim()),
                hint: "add an adjacent `// safety: <why this is sound>` comment",
            });
        }
    }
}

/// HL004: kernel crates stay clock-free.
pub fn hl004(ctx: &LineCtx, findings: &mut Vec<Finding>) {
    if !ctx.kernel {
        return;
    }
    for (i, m) in ctx.masked.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if m.contains("Instant::now") || m.contains("SystemTime") {
            let raw = ctx.raw.get(i).map(|s| s.as_str()).unwrap_or("");
            findings.push(Finding {
                file: ctx.rel.clone(),
                line: i + 1,
                rule: "HL004",
                what: format!("wall-clock access in a kernel crate: {}", raw.trim()),
                hint: "kernel crates must be deterministic; thread timing through the caller (bench/server layers)",
            });
        }
    }
}

/// HL005 (fallback): no `.unwrap()` / `.expect(` on server paths. The
/// caller applies this only to server files the parser could not
/// resolve; HL007 covers the rest with call-graph precision.
pub fn hl005(ctx: &LineCtx, findings: &mut Vec<Finding>) {
    if !ctx.server {
        return;
    }
    for (i, m) in ctx.masked.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let raw = ctx.raw.get(i).map(|s| s.as_str()).unwrap_or("");
        for pat in [".unwrap()", ".expect("] {
            if m.contains(pat) {
                findings.push(Finding {
                    file: ctx.rel.clone(),
                    line: i + 1,
                    rule: "HL005",
                    what: format!("`{pat}..` on a server path (parse-fallback): {}", raw.trim()),
                    hint: "return a logged 500 / Option instead, or allowlist in scripts/lint_allow.txt with a justification",
                });
            }
        }
    }
}

/// True at index i if the line is inside a `#[cfg(test)]` item body.
pub fn test_regions(masked_lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; masked_lines.len()];
    let mut i = 0;
    while i < masked_lines.len() {
        if masked_lines[i].contains("#[cfg(test)]") || masked_lines[i].contains("#[cfg(all(test") {
            // Skip to the matching close brace of the annotated item.
            // Attributes may stack, so scan forward for the first `{`.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < masked_lines.len() {
                for c in masked_lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                flags[j] = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replace comments and string/char literals with spaces, preserving
/// line structure, so rule patterns never match inside them.
pub fn mask(text: &str) -> String {
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
    }
    let b = text.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                // Raw-string opener? `r`/`br` + hashes + quote, not an
                // identifier tail (`for r in ..` stays code).
                let raw_at = match c {
                    b'r' => Some(i),
                    b'b' if b.get(i + 1) == Some(&b'r') => Some(i + 1),
                    _ => None,
                };
                let raw_open = raw_at.and_then(|r| {
                    let ident_prefix = i > 0 && is_ident(b[i - 1]);
                    let mut hashes = 0;
                    let mut j = r + 1;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    (!ident_prefix && b.get(j) == Some(&b'"')).then_some((hashes, j))
                });
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::Line;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'"' {
                    st = St::Str;
                    out.push(b' ');
                    i += 1;
                } else if let Some((hashes, quote_at)) = raw_open {
                    st = St::RawStr(hashes);
                    for _ in i..=quote_at {
                        out.push(b' ');
                    }
                    i = quote_at + 1;
                } else if c == b'\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // few bytes ('x', '\n', '\u{7f}'); a lifetime doesn't.
                    let mut j = i + 1;
                    if b.get(j) == Some(&b'\\') {
                        j += 1;
                        while j < b.len() && b[j] != b'\'' && j - i < 12 {
                            j += 1;
                        }
                    } else if j < b.len() {
                        j += 1;
                        while j < b.len() && (b[j] & 0xC0) == 0x80 {
                            j += 1; // skip UTF-8 continuation bytes
                        }
                    }
                    if b.get(j) == Some(&b'\'') && j > i + 1 {
                        for _ in i..=j {
                            out.push(b' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c); // lifetime tick
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::Line => {
                if c == b'\n' {
                    st = St::Code;
                    out.push(c);
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            St::Block(d) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(d + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == b'\\' && i + 1 < b.len() {
                    out.extend_from_slice(if b[i + 1] == b'\n' { b" \n" } else { b"  " });
                    i += 2;
                } else {
                    if c == b'"' {
                        st = St::Code;
                    }
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::RawStr(h) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut k = 0;
                    while k < h && b.get(j) == Some(&b'#') {
                        k += 1;
                        j += 1;
                    }
                    if k == h {
                        st = St::Code;
                        for _ in i..j {
                            out.push(b' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------
// Manifest rule (HL006)
// ---------------------------------------------------------------------

/// HL006: every manifest dependency must be an in-repo `path` dep.
pub fn lint_manifest(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let mut in_deps = false;
    let mut table_dep: Option<(String, usize, bool)> = None; // [dependencies.NAME]
    for (i, line) in text.lines().enumerate() {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.starts_with('[') {
            if let Some((name, at, saw_path)) = table_dep.take() {
                if !saw_path {
                    push_dep_finding(rel, at, &name, findings);
                }
            }
            let section = body.trim_matches(['[', ']']);
            in_deps = matches!(
                section,
                "dependencies"
                    | "dev-dependencies"
                    | "build-dependencies"
                    | "workspace.dependencies"
            );
            for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                if let Some(name) = section.strip_prefix(prefix) {
                    table_dep = Some((name.to_string(), i + 1, false));
                }
            }
            continue;
        }
        if let Some((_, _, saw_path)) = &mut table_dep {
            if body.starts_with("path ") || body.starts_with("path=") || body.starts_with("path =")
            {
                *saw_path = true;
            }
            continue;
        }
        if in_deps && !body.is_empty() {
            let Some((name, spec)) = body.split_once('=') else {
                continue;
            };
            if !spec.contains("path") {
                push_dep_finding(rel, i + 1, name.trim(), findings);
            }
        }
    }
    if let Some((name, at, saw_path)) = table_dep {
        if !saw_path {
            push_dep_finding(rel, at, &name, findings);
        }
    }
}

fn push_dep_finding(rel: &str, line: usize, name: &str, findings: &mut Vec<Finding>) {
    findings.push(Finding {
        file: rel.to_string(),
        line,
        rule: "HL006",
        what: format!("external dependency `{name}`"),
        hint: "the workspace is std-only; vendor needed code under crates/ as a path dependency",
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs every line rule (HL005 unconditionally) — mirrors the old
    /// fused-loop behavior for these unit tests.
    fn rules_on(rel: &str, src: &str) -> Vec<(usize, &'static str)> {
        let ctx = line_ctx(rel, src);
        let mut f = Vec::new();
        hl001(&ctx, &mut f);
        hl002(&ctx, &mut f);
        hl003(&ctx, &mut f);
        hl004(&ctx, &mut f);
        hl005(&ctx, &mut f);
        hl010(&ctx, &mut f);
        f.sort_by_key(|x| x.line);
        f.into_iter().map(|x| (x.line, x.rule)).collect()
    }

    #[test]
    fn mask_blanks_strings_and_comments_but_keeps_lines() {
        let src = "let a = \"unsafe\"; // unsafe in a comment\nlet b = 1; /* unsafe\nstill comment */ let c = 'x';\n";
        let m = mask(src);
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(
            !m.contains("unsafe"),
            "patterns inside strings/comments must not survive: {m}"
        );
        assert!(m.contains("let a"), "code must survive masking");
    }

    #[test]
    fn mask_keeps_lifetimes_but_blanks_char_literals() {
        let m = mask("fn f<'a>(x: &'a str) { let c = '\\n'; let d = 'q'; }");
        assert!(m.contains("<'a>"), "lifetime ticks must survive: {m}");
        assert!(
            !m.contains('q'),
            "char literal contents must be blanked: {m}"
        );
    }

    #[test]
    fn mask_blanks_nested_block_comments() {
        let src = "/* outer /* unsafe inner */ still outer */ let x = 1;\n";
        let m = mask(src);
        assert!(!m.contains("unsafe"), "nested comment leaked: {m}");
        assert!(
            m.contains("let x = 1;"),
            "code after the comment must survive: {m}"
        );
    }

    #[test]
    fn mask_blanks_multi_hash_raw_strings() {
        let src = "let s = r##\"unsafe \"# not-the-end\"##; let t = 2;\n";
        let m = mask(src);
        assert!(!m.contains("unsafe"), "raw string leaked: {m}");
        assert!(
            !m.contains("not-the-end"),
            "early terminator honored too eagerly: {m}"
        );
        assert!(
            m.contains("let t = 2;"),
            "code after the raw string must survive: {m}"
        );
    }

    #[test]
    fn mask_handles_byte_raw_strings_without_desync() {
        // In a raw byte string the backslash is NOT an escape; the first
        // closing quote ends it, so the code after stays visible.
        let src = "let a = br\"\\\"; unsafe_marker();\n";
        let m = mask(src);
        assert!(
            m.contains("unsafe_marker"),
            "br\"..\" must not desync the masker: {m}"
        );
        let hashed = "let a = br#\"x\"y\"#; keep_me();\n";
        let m = mask(hashed);
        assert!(
            m.contains("keep_me"),
            "br#\"..\"# must close at the hash: {m}"
        );
        assert!(
            !m.contains('x') || !m.contains('y'),
            "contents must blank: {m}"
        );
    }

    #[test]
    fn hl001_requires_an_ordering_note_and_accepts_block_comments() {
        let bad = "use std::sync::atomic::Ordering;\nfn f(a: &AB) { a.load(Ordering::Acquire); }\n";
        assert_eq!(rules_on("crates/x/src/a.rs", bad), vec![(2, "HL001")]);
        let good = "// ordering: pairs with the Release store in g()\n// (multi-line block is fine)\nfn f(a: &AB) { a.load(Ordering::Acquire); }\n";
        assert!(rules_on("crates/x/src/a.rs", good).is_empty());
        let trailing = "fn f(a: &AB) { a.load(Ordering::Release); } // ordering: publishes init\n";
        assert!(rules_on("crates/x/src/a.rs", trailing).is_empty());
    }

    #[test]
    fn hl002_flags_partial_cmp_unwrap_even_split_across_lines() {
        let bad = "v.sort_by(|a, b| a.partial_cmp(b)\n    .unwrap());\n";
        assert_eq!(rules_on("crates/x/src/a.rs", bad), vec![(1, "HL002")]);
        let good = "v.sort_by(|a, b| a.total_cmp(b));\n";
        assert!(rules_on("crates/x/src/a.rs", good).is_empty());
    }

    #[test]
    fn hl003_fires_even_inside_cfg_test() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { danger() } }\n}\n";
        assert_eq!(
            rules_on("crates/x/src/a.rs", src),
            vec![(3, "HL003"), (3, "HL010")]
        );
    }

    #[test]
    fn hl003_exempts_the_syscall_shim_but_hl010_still_guards_it() {
        // The shim file may use unsafe — with a safety note.
        let documented =
            "// safety: fd is owned and open.\nfn f() { let _ = unsafe { close(3) }; }\n";
        assert!(rules_on("crates/server/src/sys.rs", documented).is_empty());
        // Mutation: strip the note and HL010 (not HL003) fires.
        let stripped = "fn f() { let _ = unsafe { close(3) }; }\n";
        assert_eq!(
            rules_on("crates/server/src/sys.rs", stripped),
            vec![(1, "HL010")]
        );
    }

    #[test]
    fn hl010_accepts_same_line_and_block_above_notes() {
        let trailing = "fn f() { let _ = unsafe { close(3) }; } // safety: fd is ours\n";
        assert!(rules_on("crates/server/src/sys.rs", trailing).is_empty());
        let block = "// safety: the buffer outlives the call\n// (spans two lines)\nfn f() { let _ = unsafe { read(0, p, 1) }; }\n";
        assert!(rules_on("crates/server/src/sys.rs", block).is_empty());
        // An unrelated comment between the note and the block breaks
        // adjacency only if the block stops being contiguous comments.
        let interrupted =
            "// safety: stale note\nfn g() {}\nfn f() { let _ = unsafe { close(3) }; }\n";
        assert_eq!(
            rules_on("crates/server/src/sys.rs", interrupted),
            vec![(3, "HL010")]
        );
    }

    #[test]
    fn hl004_only_fires_in_kernel_crate_src() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_on("crates/graph/src/a.rs", src), vec![(1, "HL004")]);
        assert!(rules_on("crates/bench/src/a.rs", src).is_empty());
    }

    #[test]
    fn hl005_skips_cfg_test_modules() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert_eq!(rules_on("crates/server/src/a.rs", src), vec![(1, "HL005")]);
    }

    #[test]
    fn hl006_accepts_path_deps_and_flags_external_ones() {
        let mut f = Vec::new();
        lint_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\nhyperline-util = { path = \"../util\" }\nserde = \"1\"\n\n[dev-dependencies.hyperline-sched]\npath = \"../sched\"\n",
            &mut f,
        );
        let got: Vec<_> = f.iter().map(|x| (x.line, x.rule, x.what.clone())).collect();
        assert_eq!(got.len(), 1, "only serde should be flagged: {got:?}");
        assert_eq!(got[0].0, 3);
        assert!(got[0].2.contains("serde"));
    }
}
