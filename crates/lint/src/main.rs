//! `hyperline-lint` — workspace invariant linter.
//!
//! A token-level analyzer (no rustc plumbing, std only) that enforces
//! the concurrency and robustness invariants the rest of the tooling
//! assumes. It masks comments and string literals before matching, so
//! a pattern inside a doc comment or a log message never fires, and it
//! skips `#[cfg(test)]` regions for every rule except HL003.
//!
//! Rules:
//! * **HL001** — every non-`Relaxed` atomic ordering (`Acquire`,
//!   `Release`, `AcqRel`, `SeqCst`) must carry an adjacent
//!   `// ordering:` comment explaining why it is required.
//! * **HL002** — no `partial_cmp(..).unwrap()`; floats compare with
//!   `total_cmp`, which is NaN-total and cannot panic.
//! * **HL003** — no `unsafe` anywhere in the workspace.
//! * **HL004** — kernel crates (`graph`, `slinegraph`, `sparse`) stay
//!   clock-free: no `Instant::now()` / `SystemTime` in their `src/`.
//! * **HL005** — no `.unwrap()` / `.expect(` in `crates/server/src`
//!   outside the allowlist; request paths return logged errors.
//! * **HL006** — no new external dependencies: every entry in any
//!   `Cargo.toml` dependency section must be an in-repo `path` dep.
//!
//! Suppressions live in `scripts/lint_allow.txt`, one per line:
//! `RULE <path-substring> <line-substring-or-*> # justification`.
//! Exit status is nonzero iff findings remain after suppression.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    what: String,
    hint: &'static str,
}

struct Allow {
    rule: String,
    path: String,
    needle: String, // "*" matches any finding text
    used: std::cell::Cell<bool>,
    raw: String,
}

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("hyperline-lint: unknown argument `{other}`");
                usage()
            }
        }
    }
    let root = PathBuf::from(root);

    let allows = load_allowlist(&root.join("scripts/lint_allow.txt"));

    let mut files = Vec::new();
    collect(&root.join("crates"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        if rel.ends_with(".rs") {
            lint_rust(&rel, &text, &mut findings);
        } else if rel.ends_with("Cargo.toml") {
            lint_manifest(&rel, &text, &mut findings);
        }
    }
    // The workspace root manifest declares members and shared lint config.
    if let Ok(text) = fs::read_to_string(root.join("Cargo.toml")) {
        lint_manifest("Cargo.toml", &text, &mut findings);
    }

    let mut shown = 0usize;
    for f in &findings {
        if allows.iter().any(|a| a.matches(f)) {
            continue;
        }
        shown += 1;
        println!("{}:{}: {} {}", f.file, f.line, f.rule, f.what);
        println!("    hint: {}", f.hint);
    }
    for a in &allows {
        if !a.used.get() {
            println!(
                "allowlist: unused entry `{}` (stale suppression — remove it)",
                a.raw
            );
            shown += 1;
        }
    }
    if shown == 0 {
        println!("hyperline-lint: {} files clean", files.len() + 1);
        ExitCode::SUCCESS
    } else {
        println!("hyperline-lint: {shown} finding(s)");
        ExitCode::FAILURE
    }
}

fn usage() -> ! {
    eprintln!("usage: hyperline-lint [--root <workspace-root>]");
    std::process::exit(2);
}

impl Allow {
    fn matches(&self, f: &Finding) -> bool {
        let hit = self.rule == f.rule
            && f.file.contains(&self.path)
            && (self.needle == "*" || f.what.contains(&self.needle));
        if hit {
            self.used.set(true);
        }
        hit
    }
}

fn load_allowlist(path: &Path) -> Vec<Allow> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(needle)) => out.push(Allow {
                rule: rule.to_string(),
                path: path.to_string(),
                needle: needle.to_string(),
                used: std::cell::Cell::new(false),
                raw: body.to_string(),
            }),
            _ => {
                eprintln!(
                    "scripts/lint_allow.txt:{}: malformed entry `{body}` (want: RULE path substring # why)",
                    i + 1
                );
                std::process::exit(2);
            }
        }
    }
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy().into_owned();
        if p.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&p, out);
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(p);
        }
    }
}

// ---------------------------------------------------------------------
// Rust source rules
// ---------------------------------------------------------------------

fn lint_rust(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let masked = mask(text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let in_test = test_regions(&masked_lines);

    let kernel_src = [
        "crates/graph/src/",
        "crates/slinegraph/src/",
        "crates/sparse/src/",
    ]
    .iter()
    .any(|p| rel.starts_with(p));
    let server_src = rel.starts_with("crates/server/src/");

    for (i, m) in masked_lines.iter().enumerate() {
        let raw = raw_lines.get(i).copied().unwrap_or("");
        let line = i + 1;

        // HL003 applies even inside #[cfg(test)] — unsafe is never OK.
        if has_word(m, "unsafe") {
            findings.push(Finding {
                file: rel.to_string(),
                line,
                rule: "HL003",
                what: format!("`unsafe` is forbidden in this workspace: {}", raw.trim()),
                hint: "rewrite with safe primitives; the perf story must not depend on unsafe",
            });
        }

        if in_test[i] {
            continue;
        }

        // HL001: non-Relaxed orderings need an adjacent `// ordering:` note.
        for ord in [
            "Ordering::Acquire",
            "Ordering::Release",
            "Ordering::AcqRel",
            "Ordering::SeqCst",
        ] {
            if m.contains(ord) {
                // Accept a trailing comment on the same line, or an
                // `// ordering:` anywhere in the contiguous comment
                // block directly above.
                let mut documented = raw.contains("// ordering:");
                let mut k = i;
                while !documented && k > 0 {
                    let above = raw_lines[k - 1].trim_start();
                    if !above.starts_with("//") {
                        break;
                    }
                    documented = above.starts_with("// ordering:");
                    k -= 1;
                }
                if !documented {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line,
                        rule: "HL001",
                        what: format!("undocumented `{ord}`"),
                        hint: "add an adjacent `// ordering: <why this fence>` comment, or relax to Ordering::Relaxed",
                    });
                }
            }
        }

        // HL002: partial_cmp(..).unwrap() — panics on NaN.
        if let Some(at) = m.find("partial_cmp") {
            let next = masked_lines.get(i + 1).copied().unwrap_or("");
            if m[at..].contains(".unwrap()") || next.trim_start().starts_with(".unwrap()") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line,
                    rule: "HL002",
                    what: "`partial_cmp(..).unwrap()` panics on NaN".to_string(),
                    hint: "use f64::total_cmp (NaN-total, never panics) for metric ordering",
                });
            }
        }

        // HL004: kernel crates stay clock-free.
        if kernel_src && (m.contains("Instant::now") || m.contains("SystemTime")) {
            findings.push(Finding {
                file: rel.to_string(),
                line,
                rule: "HL004",
                what: format!("wall-clock access in a kernel crate: {}", raw.trim()),
                hint: "kernel crates must be deterministic; thread timing through the caller (bench/server layers)",
            });
        }

        // HL005: server request paths never panic.
        if server_src {
            for pat in [".unwrap()", ".expect("] {
                if m.contains(pat) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line,
                        rule: "HL005",
                        what: format!("`{pat}..` on a server path: {}", raw.trim()),
                        hint: "return a logged 500 / Option instead, or allowlist in scripts/lint_allow.txt with a justification",
                    });
                }
            }
        }
    }
}

/// True at index i if the line is inside a `#[cfg(test)]` item body.
fn test_regions(masked_lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; masked_lines.len()];
    let mut i = 0;
    while i < masked_lines.len() {
        if masked_lines[i].contains("#[cfg(test)]") || masked_lines[i].contains("#[cfg(all(test") {
            // Skip to the matching close brace of the annotated item.
            // Attributes may stack, so scan forward for the first `{`.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < masked_lines.len() {
                for c in masked_lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                flags[j] = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replace comments and string/char literals with spaces, preserving
/// line structure, so rule patterns never match inside them.
fn mask(text: &str) -> String {
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
    }
    let b = text.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::Line;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'"' {
                    st = St::Str;
                    out.push(b' ');
                    i += 1;
                } else if c == b'r' && matches!(b.get(i + 1), Some(b'"') | Some(b'#')) {
                    // raw string r"..." or r#"..."# (not an identifier tail)
                    let ident_prefix = i > 0 && is_ident(b[i - 1]);
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if !ident_prefix && b.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(b' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == b'\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // few bytes ('x', '\n', '\u{7f}'); a lifetime doesn't.
                    let mut j = i + 1;
                    if b.get(j) == Some(&b'\\') {
                        j += 1;
                        while j < b.len() && b[j] != b'\'' && j - i < 12 {
                            j += 1;
                        }
                    } else if j < b.len() {
                        j += 1;
                        while j < b.len() && (b[j] & 0xC0) == 0x80 {
                            j += 1; // skip UTF-8 continuation bytes
                        }
                    }
                    if b.get(j) == Some(&b'\'') && j > i + 1 {
                        for _ in i..=j {
                            out.push(b' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c); // lifetime tick
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::Line => {
                if c == b'\n' {
                    st = St::Code;
                    out.push(c);
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            St::Block(d) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(d + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == b'\\' && i + 1 < b.len() {
                    out.extend_from_slice(if b[i + 1] == b'\n' { b" \n" } else { b"  " });
                    i += 2;
                } else {
                    if c == b'"' {
                        st = St::Code;
                    }
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::RawStr(h) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut k = 0;
                    while k < h && b.get(j) == Some(&b'#') {
                        k += 1;
                        j += 1;
                    }
                    if k == h {
                        st = St::Code;
                        for _ in i..j {
                            out.push(b' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------
// Manifest rule (HL006)
// ---------------------------------------------------------------------

fn lint_manifest(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let mut in_deps = false;
    let mut table_dep: Option<(String, usize, bool)> = None; // [dependencies.NAME]
    for (i, line) in text.lines().enumerate() {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.starts_with('[') {
            if let Some((name, at, saw_path)) = table_dep.take() {
                if !saw_path {
                    push_dep_finding(rel, at, &name, findings);
                }
            }
            let section = body.trim_matches(['[', ']']);
            in_deps = matches!(
                section,
                "dependencies"
                    | "dev-dependencies"
                    | "build-dependencies"
                    | "workspace.dependencies"
            );
            for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                if let Some(name) = section.strip_prefix(prefix) {
                    table_dep = Some((name.to_string(), i + 1, false));
                }
            }
            continue;
        }
        if let Some((_, _, saw_path)) = &mut table_dep {
            if body.starts_with("path ") || body.starts_with("path=") || body.starts_with("path =")
            {
                *saw_path = true;
            }
            continue;
        }
        if in_deps && !body.is_empty() {
            let Some((name, spec)) = body.split_once('=') else {
                continue;
            };
            if !spec.contains("path") {
                push_dep_finding(rel, i + 1, name.trim(), findings);
            }
        }
    }
    if let Some((name, at, saw_path)) = table_dep {
        if !saw_path {
            push_dep_finding(rel, at, &name, findings);
        }
    }
}

fn push_dep_finding(rel: &str, line: usize, name: &str, findings: &mut Vec<Finding>) {
    findings.push(Finding {
        file: rel.to_string(),
        line,
        rule: "HL006",
        what: format!("external dependency `{name}`"),
        hint: "the workspace is std-only; vendor needed code under crates/ as a path dependency",
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_on(rel: &str, src: &str) -> Vec<(usize, &'static str)> {
        let mut f = Vec::new();
        lint_rust(rel, src, &mut f);
        f.into_iter().map(|x| (x.line, x.rule)).collect()
    }

    #[test]
    fn mask_blanks_strings_and_comments_but_keeps_lines() {
        let src = "let a = \"unsafe\"; // unsafe in a comment\nlet b = 1; /* unsafe\nstill comment */ let c = 'x';\n";
        let m = mask(src);
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(
            !m.contains("unsafe"),
            "patterns inside strings/comments must not survive: {m}"
        );
        assert!(m.contains("let a"), "code must survive masking");
    }

    #[test]
    fn mask_keeps_lifetimes_but_blanks_char_literals() {
        let m = mask("fn f<'a>(x: &'a str) { let c = '\\n'; let d = 'q'; }");
        assert!(m.contains("<'a>"), "lifetime ticks must survive: {m}");
        assert!(
            !m.contains('q'),
            "char literal contents must be blanked: {m}"
        );
    }

    #[test]
    fn hl001_requires_an_ordering_note_and_accepts_block_comments() {
        let bad = "use std::sync::atomic::Ordering;\nfn f(a: &AB) { a.load(Ordering::Acquire); }\n";
        assert_eq!(rules_on("crates/x/src/a.rs", bad), vec![(2, "HL001")]);
        let good = "// ordering: pairs with the Release store in g()\n// (multi-line block is fine)\nfn f(a: &AB) { a.load(Ordering::Acquire); }\n";
        assert!(rules_on("crates/x/src/a.rs", good).is_empty());
        let trailing = "fn f(a: &AB) { a.load(Ordering::Release); } // ordering: publishes init\n";
        assert!(rules_on("crates/x/src/a.rs", trailing).is_empty());
    }

    #[test]
    fn hl002_flags_partial_cmp_unwrap_even_split_across_lines() {
        let bad = "v.sort_by(|a, b| a.partial_cmp(b)\n    .unwrap());\n";
        assert_eq!(rules_on("crates/x/src/a.rs", bad), vec![(1, "HL002")]);
        let good = "v.sort_by(|a, b| a.total_cmp(b));\n";
        assert!(rules_on("crates/x/src/a.rs", good).is_empty());
    }

    #[test]
    fn hl003_fires_even_inside_cfg_test() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { danger() } }\n}\n";
        assert_eq!(rules_on("crates/x/src/a.rs", src), vec![(3, "HL003")]);
    }

    #[test]
    fn hl004_only_fires_in_kernel_crate_src() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_on("crates/graph/src/a.rs", src), vec![(1, "HL004")]);
        assert!(rules_on("crates/bench/src/a.rs", src).is_empty());
    }

    #[test]
    fn hl005_skips_cfg_test_modules() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert_eq!(rules_on("crates/server/src/a.rs", src), vec![(1, "HL005")]);
    }

    #[test]
    fn hl006_accepts_path_deps_and_flags_external_ones() {
        let mut f = Vec::new();
        lint_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\nhyperline-util = { path = \"../util\" }\nserde = \"1\"\n\n[dev-dependencies.hyperline-sched]\npath = \"../sched\"\n",
            &mut f,
        );
        let got: Vec<_> = f.iter().map(|x| (x.line, x.rule, x.what.clone())).collect();
        assert_eq!(got.len(), 1, "only serde should be flagged: {got:?}");
        assert_eq!(got[0].0, 3);
        assert!(got[0].2.contains("serde"));
    }
}
