//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace-local crate provides the *exact* API subset the
//! hyperline crates use from `rand` 0.8 — `StdRng`, `SeedableRng`,
//! `Rng::{gen, gen_range, gen_bool}` and the prelude — backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace only relies on determinism for a
//! fixed seed and on reasonable statistical quality, both of which
//! xoshiro256++ provides.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256++ (Blackman & Vigna), seeded via
/// SplitMix64 exactly as the xoshiro reference code recommends.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly over their whole value range (the subset of
/// upstream `rand`'s `Standard` distribution that hyperline uses; `f64`
/// samples uniformly from `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types with uniform range sampling (Lemire-style rejection on
/// the 64-bit stream: bias-free for every range size hyperline uses).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`. Panics if `high < low`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over [0, k·span), the largest multiple of `span`
    // representable in 64 bits. `rem = 2^64 mod span` values are rejected.
    let rem = (u64::MAX % span).wrapping_add(1) % span;
    let limit = 0u64.wrapping_sub(rem); // 2^64 - rem (mod 2^64)
    loop {
        let x = rng.next_u64();
        if rem == 0 || x < limit {
            return x % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain 64-bit range: every value is valid.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from empty range {low}..{high}");
        low + f64::sample_standard(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, f64::next_up(high))
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform draw from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// User-facing random value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution
    /// (full integer range; `[0, 1)` for `f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&z));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(1).gen_range(5..5u32);
    }
}
