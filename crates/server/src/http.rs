//! A small, strict HTTP/1.1 request parser and response writer stack.
//!
//! Covers exactly what the query server needs: request line + headers +
//! optional `Content-Length` body (with `Expect: 100-continue`
//! handling), query-string splitting, keep-alive negotiation,
//! fixed-length JSON responses for small bodies, and a
//! [`ChunkedWriter`] transfer-encoding adapter for streamed ones.
//! Everything body-shaped takes `impl Write`, not `TcpStream`, so the
//! writer stack composes (`json → gzip → chunked → socket`) and tests
//! run against byte buffers. Limits are hard-coded defensively (8 KiB
//! of headers, 1 MiB of body) since request bodies are small control
//! messages — responses are the large direction.

use std::io::{BufRead, Read, Write};

/// Maximum accepted size of the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum accepted request body size.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (e.g. `/datasets/x/slg`).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// True when the request line declared `HTTP/1.0` (affects the
    /// keep-alive default).
    pub http10: bool,
}

impl Request {
    /// The request's parameters as a [`Params`] view.
    pub fn params(&self) -> Params<'_> {
        Params(&self.query)
    }

    /// First non-empty value of query parameter `name`, if present. An
    /// empty value (`?s=`) counts as absent, so defaults apply instead of
    /// failing to parse the empty string.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.params().get(name)
    }

    /// Parses query parameter `name`, falling back to `default` when
    /// absent; `Err` carries a client-facing message when malformed.
    pub fn query_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        self.params().parse_or(name, default)
    }

    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => !self.http10,
        }
    }
}

/// A borrowed view of `name=value` parameters, shared by the query
/// string of GET endpoints and the JSON sub-queries of `POST /query`
/// (whose scalar fields are rendered to the same string form). This is
/// the one place parameter semantics live: first occurrence wins, and an
/// **empty value counts as absent** so `?s=` falls back to the default
/// instead of failing to parse `""`.
#[derive(Debug, Clone, Copy)]
pub struct Params<'a>(pub &'a [(String, String)]);

impl<'a> Params<'a> {
    /// First non-empty value of parameter `name`, if present (empty
    /// occurrences are skipped entirely, so `?s=&s=3` resolves to `3`).
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.0
            .iter()
            .find(|(k, v)| k == name && !v.is_empty())
            .map(|(_, v)| v.as_str())
    }

    /// Parses parameter `name`, falling back to `default` when absent or
    /// empty; `Err` carries a client-facing message when malformed.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("query parameter {name}={raw:?} is not a valid value")),
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line.
    ConnectionClosed,
    /// Underlying socket error (including read timeouts).
    Io(std::io::Error),
    /// The request was malformed; the message is client-facing.
    Malformed(String),
    /// The head parsed but the request must be refused with `status`,
    /// and the connection closed: its body bytes were **not** read, so
    /// continuing the keep-alive loop would parse them as the next
    /// request (a desync a client could exploit for request smuggling).
    Rejected {
        /// Response status (`400` oversized body, `417` unsupported
        /// expectation, `501` unsupported transfer coding).
        status: u16,
        /// Client-facing message.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed"),
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::Rejected { status, message } => {
                write!(f, "rejected request ({status}): {message}")
            }
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Percent-decodes one path segment, query key or query value: `%XX`
/// becomes the byte `0xXX` and `+` becomes a space (the form-encoding
/// clients and curl emit). Invalid escapes (`%`, `%2`, `%zz`) and
/// non-UTF-8 decoded bytes are rejected — silently passing them through
/// would mint distinct dataset names / cache keys for what the client
/// meant as one string.
pub fn percent_decode(raw: &str) -> Result<String, String> {
    if !raw.as_bytes().iter().any(|&b| b == b'%' || b == b'+') {
        return Ok(raw.to_string());
    }
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                // Require two hex *digits*: from_str_radix alone would
                // also accept sign-prefixed forms like "%+5".
                let hex = bytes
                    .get(i + 1..i + 3)
                    .filter(|pair| pair.iter().all(u8::is_ascii_hexdigit))
                    .and_then(|pair| std::str::from_utf8(pair).ok())
                    .and_then(|pair| u8::from_str_radix(pair, 16).ok())
                    .ok_or_else(|| format!("invalid percent escape in {raw:?}"))?;
                out.push(hex);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("percent escapes in {raw:?} are not UTF-8"))
}

/// Percent-decodes a request path segment by segment and re-joins with
/// `/`. Note this makes `%2F` routing-equivalent to a literal slash
/// (the decoded path is what [`crate::server`] splits into segments);
/// that is harmless here because no routable name may contain `/` —
/// dataset names are validated to `[A-Za-z0-9._-]` — so an encoded
/// slash can only ever produce the same route the literal spelling
/// would, never smuggle a separator into a name.
pub fn decode_path(raw: &str) -> Result<String, String> {
    let segments: Vec<String> = raw
        .split('/')
        .map(percent_decode)
        .collect::<Result<_, _>>()?;
    Ok(segments.join("/"))
}

/// Splits a raw query string (`a=1&b=two`) into pairs, percent-decoding
/// every key and value (`%XX` and `+`). Missing `=` yields an empty
/// value; invalid escapes are an error (answered with 400).
pub fn parse_query(raw: &str) -> Result<Vec<(String, String)>, String> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => Ok((percent_decode(k)?, percent_decode(v)?)),
            None => Ok((percent_decode(part)?, String::new())),
        })
        .collect()
}

/// Reads one `\n`-terminated line, enforcing `budget` *while* reading —
/// a header line longer than the remaining budget is rejected before it
/// is buffered, so a newline-less flood cannot grow memory unboundedly.
fn read_crlf_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Err(ParseError::ConnectionClosed);
            }
            // EOF with a partial line: hand it up; the caller's grammar
            // will reject whatever is incomplete.
            break;
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if take > *budget {
            return Err(ParseError::Malformed("headers exceed 8 KiB".into()));
        }
        *budget -= take;
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ParseError::Malformed("non-UTF-8 header bytes".into()))
}

/// Reads and parses one request from `reader`.
///
/// `interim` receives 1xx interim responses: a conforming HTTP/1.1
/// client that sent `Expect: 100-continue` waits for `100 Continue`
/// before transmitting its body, so the parser must answer mid-read
/// (previously such clients stalled until the read timeout).
///
/// Returns [`ParseError::ConnectionClosed`] when the peer closed the
/// socket cleanly between requests (the keep-alive loop's exit signal);
/// [`ParseError::Rejected`] means body bytes were left unread and the
/// caller must answer the carried status and close the connection.
pub fn read_request(
    reader: &mut impl BufRead,
    interim: &mut impl Write,
) -> Result<Request, ParseError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_crlf_line(reader, &mut budget)?;
    let mut header_lines = Vec::new();
    loop {
        let line = match read_crlf_line(reader, &mut budget) {
            Ok(line) => line,
            // EOF mid-headers is malformed, not a clean close.
            Err(ParseError::ConnectionClosed) => {
                return Err(ParseError::Malformed(
                    "connection closed mid-headers".into(),
                ))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        header_lines.push(line);
    }
    let head = finish_head(&request_line, header_lines)?;
    let mut request = head.request;
    // A 100-continue client sends nothing until told to proceed (1xx
    // responses predate HTTP/1.1, so never send one to a 1.0 client —
    // they would read it as the final response).
    if head.expect_continue {
        interim.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        interim.flush()?;
    }
    if head.body_len > 0 {
        let mut body = vec![0u8; head.body_len];
        reader.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(request)
}

/// A fully validated request head: everything [`read_request`] decides
/// before the body, surfaced so the evented loop can act on it — read
/// `body_len` more bytes, and send the interim `100 Continue` first
/// when `expect_continue` is set.
pub struct ParsedHead {
    /// The parsed request, body still empty.
    pub request: Request,
    /// Body bytes the client declared (`Content-Length`, validated).
    pub body_len: usize,
    /// Whether the client awaits `100 Continue` before sending the
    /// body.
    pub expect_continue: bool,
}

/// The grammar and policy checks shared by the blocking
/// [`read_request`] and the incremental [`parse_head`]: request-line
/// shape, version, path/query decoding, header syntax, and the
/// body-framing rules (transfer codings refused, duplicate or oversized
/// `Content-Length` rejected, `Expect` validated).
fn finish_head(request_line: &str, header_lines: Vec<String>) -> Result<ParsedHead, ParseError> {
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (
            decode_path(p).map_err(ParseError::Malformed)?,
            parse_query(q).map_err(ParseError::Malformed)?,
        ),
        None => (
            decode_path(target).map_err(ParseError::Malformed)?,
            Vec::new(),
        ),
    };
    let mut headers = Vec::new();
    for line in header_lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
        http10: version == "HTTP/1.0",
    };
    // Request bodies with a transfer coding are not supported; ignoring
    // the header would leave the chunked body on the socket to be parsed
    // as the next request, so refuse and close (RFC 9112 §6.1 says
    // answer 501 for transfer codings the server does not understand).
    if request.header("transfer-encoding").is_some() {
        return Err(ParseError::Rejected {
            status: 501,
            message: "transfer-encoding request bodies are not supported".into(),
        });
    }
    // Duplicate Content-Length headers are the classic request-smuggling
    // ambiguity: two in-path parsers disagreeing on which one frames the
    // body desynchronize. Reject outright rather than pick one.
    if request
        .headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return Err(ParseError::Malformed(
            "multiple content-length headers".into(),
        ));
    }
    let expect = request.header("expect").map(str::to_string);
    if let Some(expect) = &expect {
        if !expect.eq_ignore_ascii_case("100-continue") {
            return Err(ParseError::Rejected {
                status: 417,
                message: format!("unsupported expectation {expect:?}"),
            });
        }
    }
    let mut body_len = 0;
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| ParseError::Malformed(format!("bad content-length {len:?}")))?;
        if len > MAX_BODY_BYTES {
            // The body was not (and must not be) read: the caller must
            // close, or its bytes would be parsed as the next pipelined
            // request.
            return Err(ParseError::Rejected {
                status: 400,
                message: "body exceeds 1 MiB".into(),
            });
        }
        body_len = len;
    }
    let expect_continue = body_len > 0 && expect.is_some() && !request.http10;
    Ok(ParsedHead {
        request,
        body_len,
        expect_continue,
    })
}

/// Incrementally parses a request head out of `buf` (the evented
/// loop's per-connection inbound buffer).
///
/// * `Ok(None)` — no complete head yet; accumulate more bytes (the
///   8 KiB head budget is enforced while the head is still partial, so
///   a newline-less or header-dribbling flood fails fast).
/// * `Ok(Some((head, consumed)))` — a complete, validated head occupied
///   `buf[..consumed]`; the remainder is body bytes and/or pipelined
///   requests.
/// * `Err` — same grammar and policy verdicts as [`read_request`].
pub fn parse_head(buf: &[u8]) -> Result<Option<(ParsedHead, usize)>, ParseError> {
    let mut request_line: Option<String> = None;
    let mut header_lines: Vec<String> = Vec::new();
    let mut pos = 0;
    loop {
        let Some(newline) = buf[pos..].iter().position(|&b| b == b'\n') else {
            // No terminator yet: a partial head may not outgrow the
            // budget while waiting for one.
            if buf.len() >= MAX_HEAD_BYTES {
                return Err(ParseError::Malformed("headers exceed 8 KiB".into()));
            }
            return Ok(None);
        };
        let line_end = pos + newline + 1;
        if line_end > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("headers exceed 8 KiB".into()));
        }
        let mut line_bytes = &buf[pos..pos + newline];
        while line_bytes.last() == Some(&b'\r') {
            line_bytes = &line_bytes[..line_bytes.len() - 1];
        }
        let line = std::str::from_utf8(line_bytes)
            .map_err(|_| ParseError::Malformed("non-UTF-8 header bytes".into()))?
            .to_string();
        pos = line_end;
        match &request_line {
            None => request_line = Some(line),
            Some(_) if line.is_empty() => break,
            Some(_) => header_lines.push(line),
        }
    }
    let Some(request_line) = request_line else {
        return Ok(None);
    };
    let head = finish_head(&request_line, header_lines)?;
    Ok(Some((head, pos)))
}

/// Reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        417 => "Expectation Failed",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A `TcpStream` reader enforcing a **cumulative** deadline on each
/// request read, closing the slow-loris window.
///
/// A bare `set_read_timeout` restarts its clock on every `read()`, so a
/// client dribbling one header byte per timeout window can pin a worker
/// forever. This wrapper keeps two budgets instead:
///
/// * **idle** — how long a keep-alive connection may sit silent before
///   the next request's first byte (the old `read_timeout` semantics);
/// * **head** — once the first byte of a request arrives, a deadline is
///   armed and every subsequent read's OS timeout is set to the
///   *remaining* budget, so the whole request (head + body) must finish
///   inside it no matter how slowly bytes trickle.
///
/// [`TimedReader::reset`] re-enters idle mode after a request is fully
/// parsed. Expiry surfaces as `ErrorKind::TimedOut`, which the
/// connection loop treats as a quiet close.
pub struct TimedReader {
    stream: std::net::TcpStream,
    idle: std::time::Duration,
    head: std::time::Duration,
    deadline: Option<std::time::Instant>,
}

impl TimedReader {
    /// Wraps `stream` with the given idle timeout and per-request
    /// cumulative head budget.
    pub fn new(
        stream: std::net::TcpStream,
        idle: std::time::Duration,
        head: std::time::Duration,
    ) -> Self {
        Self {
            stream,
            idle,
            head,
            deadline: None,
        }
    }

    /// Marks the current request fully read: the next read waits under
    /// the idle timeout again and the first byte arms a fresh deadline.
    pub fn reset(&mut self) {
        self.deadline = None;
    }

    /// Whether a request head is partially read (its deadline is armed)
    /// — distinguishes a slow-loris close from an idle keep-alive
    /// timeout when a read fails.
    pub fn mid_head(&self) -> bool {
        self.deadline.is_some()
    }
}

impl Read for TimedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if hyperline_util::failpoint::check("socket.read").is_some() {
            return Err(hyperline_util::failpoint::io_error("socket.read"));
        }
        let timeout = match self.deadline {
            None => self.idle,
            Some(d) => {
                let remaining = d.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "request head deadline exceeded",
                    ));
                }
                remaining
            }
        };
        self.stream.set_read_timeout(Some(timeout))?;
        let n = self.stream.read(buf)?;
        if n > 0 && self.deadline.is_none() {
            self.deadline = Some(std::time::Instant::now() + self.head);
        }
        Ok(n)
    }
}

/// Whether the client accepts a gzip response body: `Accept-Encoding`
/// lists `gzip` (case-insensitively) with a nonzero quality. Only an
/// explicit listing opts in — `*` is ignored, so clients that never
/// asked keep getting identity bodies.
pub fn accepts_gzip(request: &Request) -> bool {
    let Some(value) = request.header("accept-encoding") else {
        return false;
    };
    value.split(',').any(|entry| {
        let mut parts = entry.trim().split(';');
        if !parts
            .next()
            .is_some_and(|token| token.trim().eq_ignore_ascii_case("gzip"))
        {
            return false;
        }
        for param in parts {
            // Parameter names are case-insensitive (RFC 9110 §5.6.6):
            // `Q=0` refuses exactly like `q=0`.
            if let Some((name, value)) = param.split_once('=') {
                if name.trim().eq_ignore_ascii_case("q") {
                    return value.trim().parse::<f64>().is_ok_and(|q| q > 0.0);
                }
            }
        }
        true
    })
}

/// The `content-type` of every JSON response.
pub const CONTENT_TYPE_JSON: &str = "application/json";

/// The `content-type` of Prometheus text exposition format 0.0.4
/// (`GET /metrics?format=prometheus`).
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Writes a response head: status line, the given `content-type`, any
/// `extra` headers (framing: `content-length`, `transfer-encoding`,
/// `content-encoding`), `connection`, and the terminating blank line.
pub fn write_response_head(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\n",
        reason(status)
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(stream, "connection: {connection}\r\n\r\n")
}

/// Writes a fixed-length response with a JSON body (the fast path for
/// small bodies; large ones stream through [`ChunkedWriter`]).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let length = body.len().to_string();
    write_response_head(
        stream,
        status,
        CONTENT_TYPE_JSON,
        keep_alive,
        &[("content-length", &length)],
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a headers-only response carrying the `content-length` the
/// equivalent GET body would have — the HEAD half of every GET route.
pub fn write_head_response(
    stream: &mut impl Write,
    status: u16,
    content_length: u64,
    keep_alive: bool,
) -> std::io::Result<()> {
    let length = content_length.to_string();
    write_response_head(
        stream,
        status,
        CONTENT_TYPE_JSON,
        keep_alive,
        &[("content-length", &length)],
    )?;
    stream.flush()
}

/// Payload bytes buffered per `Transfer-Encoding: chunked` frame.
pub const CHUNK_BYTES: usize = 16 * 1024;

/// A `Transfer-Encoding: chunked` framing adapter over any [`Write`]:
/// buffered bytes are emitted as `SIZE\r\nPAYLOAD\r\n` frames of up to
/// [`CHUNK_BYTES`], and [`ChunkedWriter::finish`] writes the terminal
/// zero-length chunk. This is what lets a response start before its
/// length is known — the body renders straight from cached artifacts
/// with O(1) buffering instead of into a body-sized `String`.
pub struct ChunkedWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
}

impl<W: Write> ChunkedWriter<W> {
    /// Wraps `inner`; the response head (with `transfer-encoding:
    /// chunked`) must already be written.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(CHUNK_BYTES),
        }
    }

    fn flush_chunk(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            // A zero-size chunk would terminate the body.
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", self.buf.len())?;
        self.inner.write_all(&self.buf)?;
        self.inner.write_all(b"\r\n")?;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the pending chunk, writes the terminal `0\r\n\r\n`, and
    /// returns the inner writer. Skipping this truncates the body (which
    /// chunked clients detect — unlike a close-delimited body).
    pub fn finish(mut self) -> std::io::Result<W> {
        self.flush_chunk()?;
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        // Fill to the frame size and emit, so a single large write still
        // produces bounded frames (and bounded buffering).
        let mut rest = data;
        while !rest.is_empty() {
            let room = CHUNK_BYTES - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() >= CHUNK_BYTES {
                self.flush_chunk()?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.flush_chunk()?;
        self.inner.flush()
    }
}

/// Reassembles a chunked body's payload bytes — the strict inverse of
/// [`ChunkedWriter`], shared by the integration tests and the
/// `server_smoke` benchmark (the same role `gzip::decode` plays for
/// compressed bodies). Requires well-formed framing: hex size lines,
/// `\r\n` chunk terminators, a terminal zero chunk, and nothing after
/// its final CRLF.
pub fn dechunk(mut body: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    loop {
        let line_end = body
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| "missing chunk-size line".to_string())?;
        let size = std::str::from_utf8(&body[..line_end])
            .ok()
            .and_then(|line| usize::from_str_radix(line.trim(), 16).ok())
            .ok_or_else(|| "bad chunk-size line".to_string())?;
        body = &body[line_end + 2..];
        if size == 0 {
            return if body == b"\r\n" {
                Ok(out)
            } else {
                Err("bytes after the terminal chunk".to_string())
            };
        }
        let payload = body
            .get(..size)
            .ok_or_else(|| "truncated chunk payload".to_string())?;
        out.extend_from_slice(payload);
        if body.get(size..size + 2) != Some(b"\r\n") {
            return Err("missing chunk payload terminator".to_string());
        }
        body = &body[size + 2..];
    }
}

/// A [`Write`] that only counts bytes — how HEAD answers compute the
/// exact `content-length` of a streamed body without allocating it.
#[derive(Debug, Default)]
pub struct CountingWriter(u64);

impl CountingWriter {
    /// Bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.0
    }
}

impl Write for CountingWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0 += data.len() as u64;
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(text.as_bytes()), &mut Vec::new())
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /datasets/x/slg?s=3&weighted=1 HTTP/1.1\r\nHost: a\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/datasets/x/slg");
        assert_eq!(r.query_param("s"), Some("3"));
        assert_eq!(r.query_param("weighted"), Some("1"));
        assert_eq!(r.query_param("missing"), None);
        assert_eq!(r.header("host"), Some("a"));
        assert!(r.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse("POST /datasets?name=z HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn connection_close_header_disables_keep_alive() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive());
        let r = parse("GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close() {
        let r = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(r.http10);
        assert!(!r.keep_alive(), "HTTP/1.0 default is close");
        let r = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive(), "explicit keep-alive opts in");
    }

    #[test]
    fn clean_eof_reports_connection_closed() {
        assert!(matches!(parse(""), Err(ParseError::ConnectionClosed)));
    }

    #[test]
    fn eof_mid_headers_is_malformed() {
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: a\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\ncontent-length: wat\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_head() {
        let huge = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn rejects_endless_line_without_buffering_it() {
        // An infinite stream with no newline must be rejected at the
        // budget, not buffered until OOM.
        let mut reader = BufReader::new(std::io::repeat(b'a'));
        assert!(matches!(
            read_request(&mut reader, &mut Vec::new()),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_non_utf8_header_bytes() {
        let raw: &[u8] = b"GET / HTTP/1.1\r\nx: \xff\xfe\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(raw), &mut Vec::new()),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        // The body bytes stay on the socket, so the error must instruct
        // the caller to close (Rejected), not continue the keep-alive
        // loop into a desync.
        let r = parse(&format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ));
        assert!(matches!(r, Err(ParseError::Rejected { status: 400, .. })));
    }

    #[test]
    fn expect_100_continue_emits_interim_response_before_body() {
        let raw = "POST /query HTTP/1.1\r\nexpect: 100-continue\r\ncontent-length: 5\r\n\r\nhello";
        let mut interim = Vec::new();
        let r = read_request(&mut BufReader::new(raw.as_bytes()), &mut interim).unwrap();
        assert_eq!(r.body, b"hello");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        // Case-insensitive expectation value.
        let raw = "POST / HTTP/1.1\r\nExpect: 100-Continue\r\ncontent-length: 2\r\n\r\nok";
        let mut interim = Vec::new();
        read_request(&mut BufReader::new(raw.as_bytes()), &mut interim).unwrap();
        assert!(!interim.is_empty());
        // No body declared: nothing to wait for, no interim response.
        let raw = "GET / HTTP/1.1\r\nexpect: 100-continue\r\n\r\n";
        let mut interim = Vec::new();
        read_request(&mut BufReader::new(raw.as_bytes()), &mut interim).unwrap();
        assert!(interim.is_empty());
        // 1xx responses must never go to an HTTP/1.0 client.
        let raw = "POST / HTTP/1.0\r\nexpect: 100-continue\r\ncontent-length: 2\r\n\r\nok";
        let mut interim = Vec::new();
        read_request(&mut BufReader::new(raw.as_bytes()), &mut interim).unwrap();
        assert!(interim.is_empty());
    }

    #[test]
    fn unsupported_expectation_is_417() {
        let r = parse("POST / HTTP/1.1\r\nexpect: teleport\r\ncontent-length: 2\r\n\r\nok");
        assert!(matches!(r, Err(ParseError::Rejected { status: 417, .. })));
    }

    #[test]
    fn transfer_encoded_request_bodies_are_501() {
        // Ignoring the header would desync the connection (the chunked
        // body would be parsed as the next request).
        let r = parse("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n");
        assert!(matches!(r, Err(ParseError::Rejected { status: 501, .. })));
    }

    #[test]
    fn duplicate_content_length_is_malformed() {
        let r = parse("POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\nokx");
        assert!(matches!(r, Err(ParseError::Malformed(_))));
    }

    #[test]
    fn query_string_forms() {
        assert_eq!(
            parse_query("a=1&b=&c&a=2").unwrap(),
            vec![
                ("a".into(), "1".into()),
                ("b".into(), String::new()),
                ("c".into(), String::new()),
                ("a".into(), "2".into()),
            ]
        );
        assert!(parse_query("").unwrap().is_empty());
    }

    #[test]
    fn query_or_parses_with_default() {
        let r = parse("GET /x?s=4 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.query_or("s", 2u32), Ok(4));
        assert_eq!(r.query_or("top", 10usize), Ok(10));
        assert!(r.query_or::<u32>("s", 2).is_ok());
        let r = parse("GET /x?s=banana HTTP/1.1\r\n\r\n").unwrap();
        assert!(r.query_or::<u32>("s", 2).is_err());
    }

    #[test]
    fn empty_query_value_counts_as_absent() {
        // `?s=` must fall back to the default, not fail to parse "".
        let r = parse("GET /x?s=&top=7 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.query_param("s"), None);
        assert_eq!(r.query_or("s", 2u32), Ok(2));
        assert_eq!(r.query_or("top", 10usize), Ok(7));
        // Empty occurrences are skipped, not short-circuited: a later
        // non-empty occurrence wins.
        let r = parse("GET /x?s=&s=3 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.query_param("s"), Some("3"));
        assert_eq!(r.query_or("s", 2u32), Ok(3));
    }

    #[test]
    fn percent_decoding_roundtrips() {
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert_eq!(percent_decode("a%20b").unwrap(), "a b");
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
        assert_eq!(percent_decode("100%25").unwrap(), "100%");
        assert_eq!(percent_decode("h%C3%A9llo").unwrap(), "héllo");
        // `%+5` / `%-5` must not sneak through via from_str_radix's
        // tolerance for sign prefixes.
        for bad in ["%", "%2", "%zz", "%ff", "%+5", "%-5", "% 1"] {
            assert!(percent_decode(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn request_paths_and_queries_are_decoded() {
        let r = parse("GET /datasets/my%20set/slg?s=%32&x=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/datasets/my set/slg");
        assert_eq!(r.query_or("s", 0u32), Ok(2));
        assert_eq!(r.query_param("x"), Some("a b"));
        // An encoded slash adds a path segment; it cannot hide in one.
        let r = parse("GET /datasets/a%2Fb/slg HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/datasets/a/b/slg");
        // Invalid escapes are a 400, not a silent passthrough.
        assert!(matches!(
            parse("GET /datasets/a%zz/slg HTTP/1.1\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x?bad=%f HTTP/1.1\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn response_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(&mut out, 404, "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }

    #[test]
    fn head_response_has_length_but_no_body() {
        let mut out = Vec::new();
        write_head_response(&mut out, 200, 1234, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("content-length: 1234\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "no body after the head: {text}");
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut chunked = ChunkedWriter::new(Vec::new());
        chunked.write_all(b"hello ").unwrap();
        chunked.write_all(b"world").unwrap();
        let out = chunked.finish().unwrap();
        assert_eq!(out, b"b\r\nhello world\r\n0\r\n\r\n");
        // Empty body: just the terminal chunk.
        let out = ChunkedWriter::new(Vec::new()).finish().unwrap();
        assert_eq!(out, b"0\r\n\r\n");
        // Large writes split at the chunk size: one full frame, and the
        // remainder rides the terminal flush.
        let mut chunked = ChunkedWriter::new(Vec::new());
        chunked.write_all(&vec![b'x'; CHUNK_BYTES + 3]).unwrap();
        let out = chunked.finish().unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with(&format!("{CHUNK_BYTES:x}\r\n")));
        assert!(text.contains("\r\n3\r\nxxx\r\n0\r\n\r\n"));
        assert_eq!(dechunk(&out).unwrap(), vec![b'x'; CHUNK_BYTES + 3]);
        // An explicit flush mid-stream emits a frame without terminating.
        let mut chunked = ChunkedWriter::new(Vec::new());
        chunked.write_all(b"ab").unwrap();
        chunked.flush().unwrap();
        chunked.write_all(b"cd").unwrap();
        let out = chunked.finish().unwrap();
        assert_eq!(out, b"2\r\nab\r\n2\r\ncd\r\n0\r\n\r\n");
        assert_eq!(dechunk(&out).unwrap(), b"abcd");
    }

    #[test]
    fn dechunk_rejects_malformed_framing() {
        for bad in [
            b"nope".as_slice(),
            b"5\r\nhello",               // missing payload terminator
            b"5\r\nhello\r\n",           // missing terminal chunk
            b"zz\r\nhello\r\n0\r\n\r\n", // bad size line
            b"0\r\n\r\nextra",           // bytes after the terminal chunk
        ] {
            assert!(dechunk(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn counting_writer_counts() {
        let mut counter = CountingWriter::default();
        counter.write_all(b"hello").unwrap();
        counter.write_all(b" world").unwrap();
        assert_eq!(counter.bytes(), 11);
    }

    #[test]
    fn parse_head_resumes_across_arbitrary_splits() {
        let raw = b"POST /datasets?name=z HTTP/1.1\r\nHost: a\r\ncontent-length: 5\r\n\r\nhello";
        // Every prefix that ends before the blank line is "keep going".
        let head_end = raw.len() - 5;
        for cut in 0..head_end {
            assert!(
                parse_head(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes parsed early"
            );
        }
        // From the blank line on, the head parses and `consumed` pins
        // the body boundary regardless of how much tail arrived.
        for cut in head_end..=raw.len() {
            let (head, consumed) = parse_head(&raw[..cut]).unwrap().expect("complete head");
            assert_eq!(consumed, head_end);
            assert_eq!(head.request.method, "POST");
            assert_eq!(head.request.path, "/datasets");
            assert_eq!(head.request.query_param("name"), Some("z"));
            assert_eq!(head.request.header("host"), Some("a"));
            assert_eq!(head.body_len, 5);
            assert!(!head.expect_continue);
        }
    }

    #[test]
    fn parse_head_leaves_pipelined_tail() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (head, consumed) = parse_head(raw).unwrap().expect("complete head");
        assert_eq!(head.request.path, "/a");
        assert_eq!(head.body_len, 0);
        let (next, tail_consumed) = parse_head(&raw[consumed..]).unwrap().expect("second head");
        assert_eq!(next.request.path, "/b");
        assert_eq!(consumed + tail_consumed, raw.len());
    }

    #[test]
    fn parse_head_flags_expect_continue() {
        let raw = b"POST / HTTP/1.1\r\nexpect: 100-continue\r\ncontent-length: 2\r\n\r\n";
        let (head, _) = parse_head(raw).unwrap().expect("complete head");
        assert!(head.expect_continue);
        // No body declared: nothing to invite.
        let raw = b"GET / HTTP/1.1\r\nexpect: 100-continue\r\n\r\n";
        let (head, _) = parse_head(raw).unwrap().expect("complete head");
        assert!(!head.expect_continue);
        // 1xx responses must never go to an HTTP/1.0 client.
        let raw = b"POST / HTTP/1.0\r\nexpect: 100-continue\r\ncontent-length: 2\r\n\r\n";
        let (head, _) = parse_head(raw).unwrap().expect("complete head");
        assert!(!head.expect_continue);
    }

    #[test]
    fn parse_head_matches_blocking_verdicts() {
        assert!(matches!(
            parse_head(b"NOT-HTTP\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_head(b"GET / SPDY/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_head(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_head(b"GET / HTTP/1.1\r\nx: \xff\xfe\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_head(b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_head(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(ParseError::Rejected { status: 501, .. })
        ));
        assert!(matches!(
            parse_head(b"POST / HTTP/1.1\r\nexpect: teleport\r\ncontent-length: 2\r\n\r\n"),
            Err(ParseError::Rejected { status: 417, .. })
        ));
        let oversized = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_head(oversized.as_bytes()),
            Err(ParseError::Rejected { status: 400, .. })
        ));
    }

    #[test]
    fn parse_head_enforces_budget_on_partial_heads() {
        // A complete oversized head fails...
        let huge = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            parse_head(huge.as_bytes()),
            Err(ParseError::Malformed(_))
        ));
        // ...and so does a newline-less flood still waiting for one.
        let flood = vec![b'a'; MAX_HEAD_BYTES];
        assert!(matches!(parse_head(&flood), Err(ParseError::Malformed(_))));
        // Under budget and incomplete: keep reading.
        assert!(parse_head(b"GET / HT").unwrap().is_none());
        assert!(parse_head(b"").unwrap().is_none());
    }

    #[test]
    fn accept_encoding_negotiation() {
        let with = |value: Option<&str>| {
            let mut r = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
            if let Some(v) = value {
                r.headers
                    .push(("accept-encoding".to_string(), v.to_string()));
            }
            accepts_gzip(&r)
        };
        assert!(!with(None));
        assert!(with(Some("gzip")));
        assert!(with(Some("GZIP")), "token is case-insensitive");
        assert!(with(Some("deflate, gzip;q=0.5, br")));
        assert!(with(Some("gzip; q=1.0")));
        assert!(!with(Some("gzip;q=0")), "q=0 refuses gzip");
        assert!(!with(Some("gzip;q=0.0")));
        assert!(!with(Some("identity")));
        assert!(!with(Some("*")), "wildcard does not opt in");
        assert!(!with(Some("sgzip")), "substring is not a token match");
    }
}
