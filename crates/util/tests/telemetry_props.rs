//! Property tests for the telemetry histogram: quantile estimates are
//! cross-checked against an exact sorted-vector oracle on random sample
//! sets, and merging two histograms matches recording into one.

use hyperline_util::telemetry::Histogram;
use proptest::prelude::*;

/// The oracle: exact value at quantile `q` under the histogram's rank
/// definition (1-based rank `ceil(q · n)`).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_match_sorted_oracle(
        samples in proptest::collection::vec(0u64..10_000_000_000, 1..400),
        qnum in 0u32..=1000,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let q = qnum as f64 / 1000.0;
        let oracle = oracle_quantile(&sorted, q);
        let est = h.quantile(q);
        // Log-bucketed storage bounds relative error by half a
        // sub-bucket width (1/32); allow the full bucket width plus one
        // to stay robust at bucket edges and tiny values.
        let err = est.abs_diff(oracle);
        prop_assert!(
            err <= oracle / 16 + 1,
            "q={} est={} oracle={} err={}", q, est, oracle, err
        );
        prop_assert!(est <= h.max());
    }

    #[test]
    fn merged_histogram_equals_single_recorder(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge_from(&hb);
        let (merged, single) = (ha.snapshot(), hall.snapshot());
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.sum(), single.sum());
        prop_assert_eq!(merged.max(), single.max());
        for qnum in [0u32, 250, 500, 900, 990, 1000] {
            let q = qnum as f64 / 1000.0;
            prop_assert_eq!(merged.quantile(q), single.quantile(q), "q={}", q);
        }
    }
}
