//! A std-only Rust lexer for the workspace analyzer.
//!
//! Produces a flat token stream with byte spans into the source; all
//! trivia (whitespace, line/block comments — including *nested* block
//! comments) lives in the gaps between consecutive token spans, so the
//! original file reconstructs byte-identically from the spans alone
//! (asserted by the workspace self-parse test via [`round_trip`]).
//!
//! The lexer is tolerant where tolerance is safe (a malformed numeric
//! suffix still becomes one token) but records an error for anything
//! that would desynchronize the stream — an unterminated string or
//! block comment — because every downstream rule assumes the stream
//! covers the whole file.

/// Token classification — just enough structure for the parser.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Integer literal (any base, with suffix).
    Int,
    /// Float literal.
    Float,
    /// String, raw string, byte-string or char/byte literal.
    Literal,
    /// A single punctuation byte (`.` `,` `;` `!` `&` …).
    Punct(u8),
    /// `::`
    PathSep,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// `(`, `[` or `{` (the byte is the opening delimiter).
    Open(u8),
    /// `)`, `]` or `}` (the byte is the *opening* delimiter it closes).
    Close(u8),
}

/// One token: kind plus byte span and 1-based source line.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Classification.
    pub kind: Tok,
    /// Byte offset of the first byte.
    pub lo: u32,
    /// Byte offset one past the last byte.
    pub hi: u32,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.lo as usize..self.hi as usize]
    }
}

/// A lexed file: tokens plus any desync errors (empty on success).
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Errors that would desynchronize the stream (unterminated
    /// string/comment). Non-empty means downstream analysis must not
    /// trust the stream.
    pub errors: Vec<String>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Never panics on any input.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut tokens = Vec::with_capacity(src.len() / 6);
    let mut errors = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    // Tracks newline counting lazily: `line` is advanced as bytes are
    // consumed, so every token records the line its first byte sits on.
    macro_rules! bump_lines {
        ($lo:expr, $hi:expr) => {
            for k in $lo..$hi {
                if b[k] == b'\n' {
                    line += 1;
                }
            }
        };
    }
    while i < b.len() {
        let c = b[i];
        // Trivia: whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Trivia: line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Trivia: block comment, nesting tracked.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let start_line = line;
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            if depth > 0 {
                errors.push(format!("line {start_line}: unterminated block comment"));
            }
            i = j;
            continue;
        }
        let lo = i;
        let tok_line = line;
        // Raw strings and raw identifiers: r"..", r#".."#, br".."‚ r#ident.
        let (raw_offset, is_raw_candidate) = match c {
            b'r' => (1usize, true),
            b'b' if b.get(i + 1) == Some(&b'r') => (2, true),
            _ => (0, false),
        };
        if is_raw_candidate {
            let mut j = i + raw_offset;
            let mut hashes = 0usize;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                // Raw (byte) string: scan for `"` + `hashes` hashes.
                j += 1;
                let mut closed = false;
                while j < b.len() {
                    if b[j] == b'"' {
                        let mut k = 0;
                        while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            closed = true;
                            break;
                        }
                    }
                    j += 1;
                }
                if !closed {
                    errors.push(format!("line {tok_line}: unterminated raw string"));
                }
                bump_lines!(lo, j.min(b.len()));
                tokens.push(Token {
                    kind: Tok::Literal,
                    lo: lo as u32,
                    hi: j.min(b.len()) as u32,
                    line: tok_line,
                });
                i = j.min(b.len());
                continue;
            }
            if raw_offset == 1 && hashes == 1 && b.get(j).is_some_and(|&x| is_ident_start(x)) {
                // Raw identifier r#type.
                let mut k = j;
                while k < b.len() && is_ident_cont(b[k]) {
                    k += 1;
                }
                tokens.push(Token {
                    kind: Tok::Ident,
                    lo: lo as u32,
                    hi: k as u32,
                    line: tok_line,
                });
                i = k;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Identifiers / keywords (also absorbs b'x' byte-char prefix and
        // b"..." byte-string prefix via the literal checks below).
        if is_ident_start(c) {
            // b'..' byte char / b".." byte string.
            if c == b'b' && b.get(i + 1) == Some(&b'\'') {
                if let Some(end) = scan_char(b, i + 1) {
                    bump_lines!(lo, end);
                    tokens.push(Token {
                        kind: Tok::Literal,
                        lo: lo as u32,
                        hi: end as u32,
                        line: tok_line,
                    });
                    i = end;
                    continue;
                }
            }
            if c == b'b' && b.get(i + 1) == Some(&b'"') {
                match scan_string(b, i + 1) {
                    Some(end) => {
                        bump_lines!(lo, end);
                        tokens.push(Token {
                            kind: Tok::Literal,
                            lo: lo as u32,
                            hi: end as u32,
                            line: tok_line,
                        });
                        i = end;
                        continue;
                    }
                    None => {
                        errors.push(format!("line {tok_line}: unterminated byte string"));
                        i = b.len();
                        continue;
                    }
                }
            }
            let mut j = i + 1;
            while j < b.len() && is_ident_cont(b[j]) {
                j += 1;
            }
            tokens.push(Token {
                kind: Tok::Ident,
                lo: lo as u32,
                hi: j as u32,
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let (end, is_float) = scan_number(b, i);
            tokens.push(Token {
                kind: if is_float { Tok::Float } else { Tok::Int },
                lo: lo as u32,
                hi: end as u32,
                line: tok_line,
            });
            i = end;
            continue;
        }
        // Strings.
        if c == b'"' {
            match scan_string(b, i) {
                Some(end) => {
                    bump_lines!(lo, end);
                    tokens.push(Token {
                        kind: Tok::Literal,
                        lo: lo as u32,
                        hi: end as u32,
                        line: tok_line,
                    });
                    i = end;
                    continue;
                }
                None => {
                    errors.push(format!("line {tok_line}: unterminated string"));
                    i = b.len();
                    continue;
                }
            }
        }
        // Char literal vs lifetime/label.
        if c == b'\'' {
            if let Some(end) = scan_char(b, i) {
                tokens.push(Token {
                    kind: Tok::Literal,
                    lo: lo as u32,
                    hi: end as u32,
                    line: tok_line,
                });
                i = end;
                continue;
            }
            // Lifetime: tick + identifier.
            let mut j = i + 1;
            while j < b.len() && is_ident_cont(b[j]) {
                j += 1;
            }
            tokens.push(Token {
                kind: Tok::Lifetime,
                lo: lo as u32,
                hi: j.max(i + 1) as u32,
                line: tok_line,
            });
            i = j.max(i + 1);
            continue;
        }
        // Multi-byte operators the parser leans on.
        if c == b':' && b.get(i + 1) == Some(&b':') {
            tokens.push(Token {
                kind: Tok::PathSep,
                lo: lo as u32,
                hi: (i + 2) as u32,
                line: tok_line,
            });
            i += 2;
            continue;
        }
        if c == b'-' && b.get(i + 1) == Some(&b'>') {
            tokens.push(Token {
                kind: Tok::Arrow,
                lo: lo as u32,
                hi: (i + 2) as u32,
                line: tok_line,
            });
            i += 2;
            continue;
        }
        if c == b'=' && b.get(i + 1) == Some(&b'>') {
            tokens.push(Token {
                kind: Tok::FatArrow,
                lo: lo as u32,
                hi: (i + 2) as u32,
                line: tok_line,
            });
            i += 2;
            continue;
        }
        // Delimiters.
        let kind = match c {
            b'(' | b'[' | b'{' => Tok::Open(c),
            b')' => Tok::Close(b'('),
            b']' => Tok::Close(b'['),
            b'}' => Tok::Close(b'{'),
            other => Tok::Punct(other),
        };
        tokens.push(Token {
            kind,
            lo: lo as u32,
            hi: (i + 1) as u32,
            line: tok_line,
        });
        i += 1;
    }
    Lexed { tokens, errors }
}

/// Scans a char/byte-char literal starting at the `'`; returns the end
/// offset, or `None` when this is a lifetime tick instead.
fn scan_char(b: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(b.get(i), Some(&b'\''));
    let mut j = i + 1;
    if b.get(j) == Some(&b'\\') {
        j += 1;
        // Escape body: \n, \u{..}, \x7f — bounded scan to the close.
        let mut n = 0;
        while j < b.len() && b[j] != b'\'' && n < 12 {
            j += 1;
            n += 1;
        }
        if b.get(j) == Some(&b'\'') {
            return Some(j + 1);
        }
        return None;
    }
    if j < b.len() && b[j] != b'\'' {
        // One scalar value (skip UTF-8 continuation bytes).
        j += 1;
        while j < b.len() && (b[j] & 0xC0) == 0x80 {
            j += 1;
        }
        if b.get(j) == Some(&b'\'') && !is_ident_cont(b[i + 1]) {
            return Some(j + 1);
        }
        // `'x'` where x is ident-ish could still be a char literal if
        // exactly one char wide and closed — `'q'` — but `'a` followed
        // by more ident chars is a lifetime.
        if b.get(j) == Some(&b'\'') && j == i + 2 {
            return Some(j + 1);
        }
    }
    None
}

/// Scans a (byte-)string literal starting at the `"`; returns the end
/// offset, or `None` when unterminated.
fn scan_string(b: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(b.get(i), Some(&b'"'));
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return Some(j + 1),
            _ => j += 1,
        }
    }
    None
}

/// Scans a numeric literal; returns `(end, is_float)`.
fn scan_number(b: &[u8], i: usize) -> (usize, bool) {
    let radix_prefixed = b[i] == b'0'
        && matches!(
            b.get(i + 1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
        );
    let mut j = i;
    let mut is_float = false;
    let consume_run = |j: &mut usize| {
        while *j < b.len() && (b[*j].is_ascii_alphanumeric() || b[*j] == b'_') {
            *j += 1;
        }
    };
    consume_run(&mut j);
    // Exponent sign: `1e-3` / `2.5E+7` (never after 0x/0o/0b).
    let exponent_sign = |j: &mut usize| -> bool {
        if !radix_prefixed
            && *j > i
            && matches!(b[*j - 1], b'e' | b'E')
            && matches!(b.get(*j), Some(b'+') | Some(b'-'))
            && b.get(*j + 1).is_some_and(|d| d.is_ascii_digit())
        {
            *j += 1;
            return true;
        }
        false
    };
    if exponent_sign(&mut j) {
        is_float = true;
        consume_run(&mut j);
    }
    // Fraction: a `.` joins only when followed by a digit (so `0..n`
    // and `1.max(2)` tokenize as Int + Punct).
    if !radix_prefixed
        && b.get(j) == Some(&b'.')
        && b.get(j + 1).is_some_and(|d| d.is_ascii_digit())
    {
        is_float = true;
        j += 1;
        consume_run(&mut j);
        if exponent_sign(&mut j) {
            consume_run(&mut j);
        }
    }
    // `1e3` with no sign still floats.
    if !radix_prefixed && b[i..j].iter().any(|&c| matches!(c, b'e' | b'E')) {
        is_float = true;
    }
    (j, is_float)
}

/// Reconstructs the source from the token spans plus the trivia gaps
/// between them and compares byte-for-byte. The stream is only valid
/// when spans are strictly monotonic and in-bounds — both checked here.
pub fn round_trip(src: &str, tokens: &[Token]) -> bool {
    let mut rebuilt = String::with_capacity(src.len());
    let mut prev = 0usize;
    for t in tokens {
        let (lo, hi) = (t.lo as usize, t.hi as usize);
        if lo < prev || hi < lo || hi > src.len() {
            return false;
        }
        rebuilt.push_str(&src[prev..lo]); // trivia gap
        rebuilt.push_str(&src[lo..hi]); // the token itself
        prev = hi;
    }
    rebuilt.push_str(&src[prev..]);
    rebuilt == src
}
