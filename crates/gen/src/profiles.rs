//! Per-dataset generator profiles.
//!
//! Each profile mimics the *shape* of one dataset from the paper's
//! Table IV (or the application sections), scaled ~10²–10³× down to laptop
//! size: the |V|:|E| ratio, mean/max degree skew, and — where an
//! experiment depends on it — exact planted deep-overlap structure (e.g.
//! Friendster's 20 communities sharing ≥ 1024 members, IMDB's star-shaped
//! 100-connected component). DESIGN.md §3 documents the substitution
//! argument; this module is its implementation.

use crate::community::CommunityModel;
use crate::planted::{plant_groups, GroupShape, PlantedGroup};
use crate::sampling::sample_distinct;
use hyperline_hypergraph::Hypergraph;
use rand::prelude::*;

/// A named synthetic dataset mimicking one of the paper's inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Social: community hypergraph à la LiveJournal (skewed, large Δe).
    LiveJournal,
    /// Social: com-Orkut — many mid-size communities.
    ComOrkut,
    /// Social: Friendster — few edges, deep planted cores (s = 1024
    /// components exist, §VI-G).
    Friendster,
    /// Web: host-page structure, extreme vertex skew, dense s-line graphs.
    Web,
    /// Web: Amazon product reviews.
    AmazonReviews,
    /// Web: Stack Overflow answers (many small edges).
    StackOverflow,
    /// Cyber: activeDNS (domains → IPs), tiny edges, hub IPs.
    ActiveDns,
    /// Email: email-EuAll, small bipartite network.
    EmailEuAll,
    /// Application: disGeNet disease-gene network (Table II).
    DisGeNet,
    /// Application: condMat author-paper network with planted author teams
    /// (Fig. 6 needs non-singleton components up to s = 16).
    CondMat,
    /// Application: company-board membership network (Fig. 4).
    CompBoard,
    /// Application: Les Misérables character-scene network (Fig. 4).
    LesMis,
    /// Application: virology transcriptomics — 6 planted "important genes"
    /// sharing > 100 conditions pairwise (§V-A, Fig. 5).
    Genomics,
    /// Application: IMDB actor-movie network with the planted 100-overlap
    /// star and pair components of §V-C.
    Imdb,
}

impl Profile {
    /// Every profile, in the order used by the experiment tables.
    pub const ALL: [Profile; 14] = [
        Profile::LiveJournal,
        Profile::ComOrkut,
        Profile::Friendster,
        Profile::Web,
        Profile::AmazonReviews,
        Profile::StackOverflow,
        Profile::ActiveDns,
        Profile::EmailEuAll,
        Profile::DisGeNet,
        Profile::CondMat,
        Profile::CompBoard,
        Profile::LesMis,
        Profile::Genomics,
        Profile::Imdb,
    ];

    /// The dataset name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            Profile::LiveJournal => "LiveJournal",
            Profile::ComOrkut => "com-Orkut",
            Profile::Friendster => "Friendster",
            Profile::Web => "Web",
            Profile::AmazonReviews => "Amazon-reviews",
            Profile::StackOverflow => "Stackoverflow-answers",
            Profile::ActiveDns => "activeDNS",
            Profile::EmailEuAll => "email-EuAll",
            Profile::DisGeNet => "disGeNet",
            Profile::CondMat => "condMat",
            Profile::CompBoard => "compBoard",
            Profile::LesMis => "lesMis",
            Profile::Genomics => "genomics",
            Profile::Imdb => "IMDB",
        }
    }

    /// Parses a profile from its (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<Profile> {
        let lower = name.to_ascii_lowercase();
        Profile::ALL
            .into_iter()
            .find(|p| p.name().to_ascii_lowercase() == lower)
    }

    /// The base community-model parameters for this profile (before any
    /// planted structure).
    fn model(self) -> CommunityModel {
        match self {
            Profile::LiveJournal => CommunityModel {
                num_vertices: 32_000,
                num_edges: 75_000,
                edge_size_min: 2,
                // Δe in the real LiveJournal is 1.1M; the scaled-down tail
                // still needs edges big enough that explicit set
                // intersections (Algorithm 1) dwarf wedge counting.
                edge_size_max: 5_000,
                edge_size_exponent: 2.1,
                num_communities: 500,
                core_size: 300,
                affinity: 0.75,
                community_skew: 0.9,
                vertex_skew: 0.95,
            },
            Profile::ComOrkut => CommunityModel {
                num_vertices: 23_000,
                num_edges: 120_000,
                edge_size_min: 2,
                edge_size_max: 90,
                edge_size_exponent: 1.8,
                num_communities: 1_000,
                core_size: 40,
                affinity: 0.75,
                community_skew: 0.8,
                vertex_skew: 0.85,
            },
            Profile::Friendster => CommunityModel {
                num_vertices: 79_000,
                num_edges: 16_000,
                edge_size_min: 3,
                edge_size_max: 2_000,
                edge_size_exponent: 1.9,
                num_communities: 200,
                core_size: 300,
                affinity: 0.5,
                community_skew: 0.7,
                vertex_skew: 0.6,
            },
            Profile::Web => CommunityModel {
                num_vertices: 140_000,
                num_edges: 64_000,
                edge_size_min: 2,
                edge_size_max: 3_000,
                edge_size_exponent: 2.2,
                num_communities: 300,
                core_size: 150,
                affinity: 0.8,
                community_skew: 0.9,
                vertex_skew: 1.1,
            },
            Profile::AmazonReviews => CommunityModel {
                num_vertices: 23_000,
                num_edges: 43_000,
                edge_size_min: 3,
                edge_size_max: 300,
                edge_size_exponent: 1.9,
                num_communities: 400,
                core_size: 50,
                affinity: 0.7,
                community_skew: 0.8,
                vertex_skew: 0.8,
            },
            Profile::StackOverflow => CommunityModel {
                num_vertices: 50_000,
                num_edges: 76_000,
                edge_size_min: 2,
                edge_size_max: 100,
                edge_size_exponent: 1.8,
                num_communities: 800,
                core_size: 30,
                affinity: 0.6,
                community_skew: 0.7,
                vertex_skew: 0.9,
            },
            Profile::ActiveDns => dns_model(16),
            Profile::EmailEuAll => CommunityModel {
                num_vertices: 2_650,
                num_edges: 2_650,
                edge_size_min: 1,
                edge_size_max: 30,
                edge_size_exponent: 2.2,
                num_communities: 100,
                core_size: 20,
                affinity: 0.6,
                community_skew: 0.7,
                vertex_skew: 0.9,
            },
            Profile::DisGeNet => CommunityModel {
                num_vertices: 2_000,
                num_edges: 20_000,
                edge_size_min: 2,
                edge_size_max: 30,
                edge_size_exponent: 2.0,
                num_communities: 200,
                core_size: 30,
                affinity: 0.3,
                community_skew: 0.8,
                // Strong hub diseases: top vertices co-occur in hundreds of
                // gene edges, so s = 100 s-clique graphs are non-trivial.
                vertex_skew: 1.3,
            },
            Profile::CondMat => CommunityModel {
                num_vertices: 1_700,
                num_edges: 2_200,
                edge_size_min: 1,
                edge_size_max: 20,
                edge_size_exponent: 2.5,
                num_communities: 150,
                core_size: 12,
                affinity: 0.8,
                community_skew: 0.5,
                vertex_skew: 0.4,
            },
            Profile::CompBoard => CommunityModel {
                num_vertices: 800,
                num_edges: 1_200,
                edge_size_min: 3,
                edge_size_max: 15,
                edge_size_exponent: 2.0,
                num_communities: 80,
                core_size: 12,
                affinity: 0.6,
                community_skew: 0.6,
                vertex_skew: 0.7,
            },
            Profile::LesMis => CommunityModel {
                num_vertices: 80,
                num_edges: 400,
                edge_size_min: 2,
                edge_size_max: 10,
                edge_size_exponent: 1.8,
                num_communities: 10,
                core_size: 10,
                affinity: 0.7,
                community_skew: 0.6,
                vertex_skew: 0.8,
            },
            Profile::Genomics => CommunityModel {
                num_vertices: 201,
                num_edges: 2_500,
                edge_size_min: 1,
                edge_size_max: 60,
                edge_size_exponent: 1.6,
                num_communities: 20,
                core_size: 30,
                affinity: 0.6,
                community_skew: 0.6,
                vertex_skew: 0.5,
            },
            Profile::Imdb => CommunityModel {
                num_vertices: 100_000,
                num_edges: 60_000,
                edge_size_min: 1,
                edge_size_max: 800,
                edge_size_exponent: 2.2,
                num_communities: 600,
                core_size: 100,
                affinity: 0.4,
                community_skew: 0.8,
                vertex_skew: 0.7,
            },
        }
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(self, seed: u64) -> Hypergraph {
        let model = self.model();
        let mut lists = model.generate_edge_lists(seed);
        let mut num_vertices = model.num_vertices;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        match self {
            Profile::Friendster => {
                // §VI-G: 20 core communities sharing at least 1024 members —
                // the s = 1024 line graph has exactly 20 components.
                let groups: Vec<PlantedGroup> = (0..20)
                    .map(|i| PlantedGroup {
                        members: 2 + (i % 3),
                        shared: 1_024 + 2 * i,
                        extra_per_member: 10,
                        shape: GroupShape::Clique,
                    })
                    .collect();
                plant_groups(&mut lists, &mut num_vertices, &groups, &mut rng);
            }
            Profile::CondMat => {
                // §V-B, Figure 6's shape: sparse *chains* of papers
                // dominate the mid-s regime (s = 4..12 — low algebraic
                // connectivity: authors collaborate only sparsely), while
                // tight author *teams* with 13..16 joint papers take over
                // at high s (sharp connectivity rise from s = 13).
                let mut groups: Vec<PlantedGroup> = (4..=12)
                    .map(|shared| PlantedGroup {
                        // Longer chains at lower s; always longer than the
                        // 5-member teams so the largest component stays a
                        // sparse chain until the teams take over at s = 13.
                        members: 18 - shared,
                        shared,
                        extra_per_member: 1,
                        shape: GroupShape::Chain,
                    })
                    .collect();
                groups.extend((13..=16).map(|shared| PlantedGroup {
                    members: 5,
                    shared,
                    extra_per_member: 2,
                    shape: GroupShape::Clique,
                }));
                plant_groups(&mut lists, &mut num_vertices, &groups, &mut rng);
            }
            Profile::Genomics => {
                // §V-A: six genes pairwise sharing > 100 of the 201
                // experimental conditions. Each gets a random 150-subset of
                // the condition space (expected pairwise overlap ≈ 112).
                for _ in 0..6 {
                    lists.push(sample_distinct(&mut rng, 201, 150));
                }
            }
            Profile::Imdb => {
                // §V-C: the four 100-connected components — a 5-actor star
                // (Adoor Bhasi at the hub) plus three collaborating pairs.
                let groups = [
                    PlantedGroup {
                        members: 5,
                        shared: 110,
                        extra_per_member: 8,
                        shape: GroupShape::Star,
                    },
                    PlantedGroup {
                        members: 2,
                        shared: 105,
                        extra_per_member: 5,
                        shape: GroupShape::Clique,
                    },
                    PlantedGroup {
                        members: 2,
                        shared: 103,
                        extra_per_member: 5,
                        shape: GroupShape::Clique,
                    },
                    PlantedGroup {
                        members: 2,
                        shared: 101,
                        extra_per_member: 5,
                        shape: GroupShape::Clique,
                    },
                ];
                plant_groups(&mut lists, &mut num_vertices, &groups, &mut rng);
            }
            _ => {}
        }
        Hypergraph::from_edge_lists(&lists, num_vertices)
    }

    /// For the planted profiles, the hyperedge IDs of the planted
    /// structures (they are appended after the background edges, so the
    /// range is deterministic).
    pub fn planted_edge_range(self, seed: u64) -> Option<std::ops::Range<u32>> {
        let base = self.model().num_edges as u32;
        match self {
            Profile::Friendster => {
                let total: usize = (0..20).map(|i| 2 + (i % 3)).sum();
                Some(base..base + total as u32)
            }
            Profile::CondMat => {
                // Chains: Σ (18 - shared) for shared 4..=12, then 4 teams of 5.
                let chain_edges: usize = (4..=12).map(|shared| 18 - shared).sum();
                Some(base..base + (chain_edges + 20) as u32)
            }
            Profile::Genomics => Some(base..base + 6),
            Profile::Imdb => Some(base..base + 11),
            _ => {
                let _ = seed;
                None
            }
        }
    }
}

/// The activeDNS community model for a given number of "AVRO chunks";
/// size scales linearly with `chunks` (the paper's weak-scaling axis,
/// dns_4 .. dns_128, plus DNS-256 in the strong-scaling figure).
/// One "AVRO chunk" worth of activeDNS-like data (domains → IPs):
/// tiny skewed edges, hub IPs within the chunk.
fn dns_chunk_model() -> CommunityModel {
    CommunityModel {
        num_vertices: 1_500,
        num_edges: 4_000,
        edge_size_min: 1,
        edge_size_max: 40,
        edge_size_exponent: 2.5,
        num_communities: 50,
        core_size: 15,
        affinity: 0.6,
        community_skew: 0.8,
        vertex_skew: 1.2,
    }
}

/// The default activeDNS profile size (16 chunks).
fn dns_model(chunks: usize) -> CommunityModel {
    let base = dns_chunk_model();
    CommunityModel {
        num_vertices: base.num_vertices * chunks,
        num_edges: base.num_edges * chunks,
        num_communities: base.num_communities * chunks,
        ..base
    }
}

/// Generates the activeDNS dataset at a given chunk count.
///
/// Mirrors how the paper scales the workload — "4 AVRO files worth of
/// data (dns_4) up to 128 files (dns_128)": each chunk is an independent
/// block of domains/IPs appended to the stream, so the total work grows
/// *linearly* in the chunk count (the property the weak-scaling
/// experiment of Figure 9 relies on). Hub IPs exist within chunks but do
/// not span the whole stream.
pub fn dns_chunks(chunks: usize, seed: u64) -> Hypergraph {
    assert!(chunks >= 1, "need at least one chunk");
    let base = dns_chunk_model();
    let mut lists: Vec<Vec<u32>> = Vec::with_capacity(base.num_edges * chunks);
    for c in 0..chunks {
        let offset = (c * base.num_vertices) as u32;
        let chunk_lists = base.generate_edge_lists(seed.wrapping_add(c as u64 * 0x9e37));
        for mut edge in chunk_lists {
            for v in edge.iter_mut() {
                *v += offset;
            }
            lists.push(edge);
        }
    }
    Hypergraph::from_edge_lists(&lists, base.num_vertices * chunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in Profile::ALL {
            assert_eq!(Profile::from_name(p.name()), Some(p));
            assert_eq!(Profile::from_name(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(Profile::from_name("nope"), None);
    }

    #[test]
    fn small_profiles_generate_with_expected_shape() {
        let h = Profile::LesMis.generate(1);
        assert_eq!(h.num_edges(), 400);
        assert_eq!(h.num_vertices(), 80);
        let h = Profile::EmailEuAll.generate(1);
        assert_eq!(h.num_edges(), 2650);
    }

    #[test]
    fn genomics_has_six_planted_genes_with_deep_overlap() {
        let h = Profile::Genomics.generate(3);
        let range = Profile::Genomics.planted_edge_range(3).unwrap();
        assert_eq!(range.len(), 6);
        let ids: Vec<u32> = range.collect();
        let mut deep_pairs = 0;
        for (i, &e) in ids.iter().enumerate() {
            assert_eq!(h.edge_size(e), 150);
            for &f in &ids[i + 1..] {
                if h.inc(e, f) > 100 {
                    deep_pairs += 1;
                }
            }
        }
        // All 15 pairs have expected overlap ≈ 112; allow a couple below.
        assert!(
            deep_pairs >= 13,
            "only {deep_pairs}/15 planted pairs share > 100 conditions"
        );
    }

    #[test]
    fn imdb_planted_star_structure() {
        let h = Profile::Imdb.generate(4);
        let range = Profile::Imdb.planted_edge_range(4).unwrap();
        let ids: Vec<u32> = range.collect();
        assert_eq!(ids.len(), 11);
        let hub = ids[0];
        for &leaf in &ids[1..5] {
            assert!(h.inc(hub, leaf) >= 100, "hub-leaf overlap too small");
        }
        // Leaves don't overlap 100-deep with each other.
        for i in 1..5 {
            for j in (i + 1)..5 {
                assert!(h.inc(ids[i], ids[j]) < 100);
            }
        }
        // The three pairs.
        for k in 0..3 {
            let (a, b) = (ids[5 + 2 * k], ids[6 + 2 * k]);
            assert!(h.inc(a, b) >= 100, "pair {k} overlap too small");
        }
    }

    #[test]
    fn friendster_has_1024_deep_cores() {
        let h = Profile::Friendster.generate(5);
        let range = Profile::Friendster.planted_edge_range(5).unwrap();
        // First planted group: 2 members sharing 1024.
        let first = range.start;
        assert!(h.inc(first, first + 1) >= 1024);
    }

    #[test]
    fn condmat_planted_teams() {
        let h = Profile::CondMat.generate(6);
        let range = Profile::CondMat.planted_edge_range(6).unwrap();
        let ids: Vec<u32> = range.collect();
        // Last group (shared = 16): a team of 5 papers sharing 16 authors.
        let team: &[u32] = &ids[ids.len() - 5..];
        for (i, &e) in team.iter().enumerate() {
            for &f in &team[i + 1..] {
                assert_eq!(h.inc(e, f), 16);
            }
        }
        // First group: a chain of 10 papers with consecutive overlap 4.
        let chain: &[u32] = &ids[..10];
        assert_eq!(h.inc(chain[0], chain[1]), 4);
        assert_eq!(h.inc(chain[0], chain[2]), 0);
    }

    #[test]
    fn dns_chunks_scale_linearly() {
        let h4 = dns_chunks(4, 7);
        let h8 = dns_chunks(8, 7);
        assert_eq!(h4.num_edges(), 16_000);
        assert_eq!(h8.num_edges(), 32_000);
        assert_eq!(h8.num_vertices(), 2 * h4.num_vertices());
    }

    #[test]
    fn deterministic_generation() {
        let a = Profile::CompBoard.generate(11);
        let b = Profile::CompBoard.generate(11);
        assert_eq!(a, b);
    }

    #[test]
    fn skew_present_in_social_profiles() {
        let h = Profile::ComOrkut.generate(1);
        assert!(h.max_edge_size() as f64 > 4.0 * h.mean_edge_size());
        assert!(h.max_vertex_degree() as f64 > 4.0 * h.mean_vertex_degree());
    }
}
