//! Betweenness centrality (Brandes' algorithm), sequential and parallel.
//!
//! The paper's *s-betweenness centrality* of a hyperedge `e` is
//! `Σ_{f≠g} σ_fg(e) / σ_fg` evaluated on the s-line graph, i.e. exactly
//! vertex betweenness centrality of the s-line graph. The parallel variant
//! distributes Brandes' single-source dependency accumulations over
//! scoped worker threads and sums per-worker partial scores.

use crate::graph::Graph;
use hyperline_util::parallel::par_map_range_init;

/// State for one single-source Brandes sweep, reused across sources.
struct BrandesState {
    /// BFS order (stack for the reverse pass).
    order: Vec<u32>,
    /// Number of shortest paths from the source.
    sigma: Vec<f64>,
    /// BFS distance from the source (-1 = unvisited).
    dist: Vec<i32>,
    /// Dependency accumulator.
    delta: Vec<f64>,
    /// BFS queue.
    queue: std::collections::VecDeque<u32>,
}

impl BrandesState {
    fn new(n: usize) -> Self {
        Self {
            order: Vec::with_capacity(n),
            sigma: vec![0.0; n],
            dist: vec![-1; n],
            delta: vec![0.0; n],
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Runs one source sweep, adding dependencies into `scores`.
    fn accumulate(&mut self, g: &Graph, source: u32, scores: &mut [f64]) {
        self.order.clear();
        self.queue.clear();
        for v in 0..g.num_vertices() {
            self.sigma[v] = 0.0;
            self.dist[v] = -1;
            self.delta[v] = 0.0;
        }
        self.sigma[source as usize] = 1.0;
        self.dist[source as usize] = 0;
        self.queue.push_back(source);
        while let Some(u) = self.queue.pop_front() {
            self.order.push(u);
            let du = self.dist[u as usize];
            for &v in g.neighbors(u) {
                if self.dist[v as usize] < 0 {
                    self.dist[v as usize] = du + 1;
                    self.queue.push_back(v);
                }
                if self.dist[v as usize] == du + 1 {
                    self.sigma[v as usize] += self.sigma[u as usize];
                }
            }
        }
        // Reverse pass: accumulate dependencies from the BFS frontier back.
        for &w in self.order.iter().rev() {
            let dw = self.dist[w as usize];
            let coeff = (1.0 + self.delta[w as usize]) / self.sigma[w as usize];
            for &v in g.neighbors(w) {
                if self.dist[v as usize] + 1 == dw {
                    self.delta[v as usize] += self.sigma[v as usize] * coeff;
                }
            }
            if w != source {
                scores[w as usize] += self.delta[w as usize];
            }
        }
    }
}

/// Sequential Brandes betweenness centrality.
///
/// For undirected graphs every unordered pair is counted twice (once per
/// ordered pair), so raw scores are halved, matching the standard
/// definition.
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut scores = vec![0.0; n];
    let mut state = BrandesState::new(n);
    for s in 0..n as u32 {
        state.accumulate(g, s, &mut scores);
    }
    for x in &mut scores {
        *x /= 2.0;
    }
    scores
}

/// Maximum number of logical accumulation blocks a parallel betweenness
/// run is split into. Deliberately *not* a function of the worker
/// count — so the floating-point reduction order is identical no matter
/// how many threads the caller's compute budget happens to grant.
/// 64 blocks keep any realistic core count busy.
const MAX_REDUCTION_BLOCKS: usize = 64;

/// Byte cap on the transient partial-score vectors held live during the
/// reduction (all blocks' partials exist until the ordered merge). On
/// huge line graphs the block count shrinks to respect this — trading
/// parallelism for memory — which stays deterministic because the cap
/// divides by `n`, a property of the input, not of the machine.
const MAX_PARTIAL_BYTES: usize = 1 << 28; // 256 MiB

/// Sums Brandes sweeps over `sources` with a **fixed-order reduction**:
/// sources are strided over logical blocks, each block accumulates its
/// partial score vector sequentially (in source order), and the partials
/// are summed in block order. Because the block count and both summation
/// orders depend only on the input (`sources.len()` and `n`), the result
/// is bit-identical across thread counts and runs — a served
/// `/betweenness` response can be cached and compared byte-for-byte.
fn betweenness_over_sources(g: &Graph, sources: &[u32]) -> Vec<f64> {
    let n = g.num_vertices();
    let memory_cap = (MAX_PARTIAL_BYTES / (n.max(1) * std::mem::size_of::<f64>())).max(1);
    let stride = MAX_REDUCTION_BLOCKS
        .min(memory_cap)
        .min(sources.len().max(1));
    // Results come back in block-index order, which is what makes the
    // merge below a fixed-order reduction. The O(n) BrandesState is
    // allocated once per *worker* and reused across that worker's
    // blocks — `accumulate` fully resets it per source, so reuse cannot
    // leak state between blocks (and thus cannot perturb bits).
    let partials = par_map_range_init(
        stride,
        || BrandesState::new(n),
        |state, b| {
            let mut local = vec![0.0f64; n];
            for &s in sources.iter().skip(b).step_by(stride) {
                state.accumulate(g, s, &mut local);
            }
            local
        },
    );
    let mut scores = vec![0.0f64; n];
    for local in partials {
        for (x, y) in scores.iter_mut().zip(&local) {
            *x += y;
        }
    }
    scores
}

/// Parallel Brandes betweenness: sources distributed over the worker
/// pool, per-worker score vectors summed at the end.
pub fn betweenness_parallel(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let sources: Vec<u32> = (0..n as u32).collect();
    let mut scores = betweenness_over_sources(g, &sources);
    for x in &mut scores {
        *x /= 2.0;
    }
    scores
}

/// Approximate betweenness by sampling `num_sources` BFS sources
/// (Brandes–Pich style): scores are scaled by `n / num_sources` so they
/// estimate the exact values. Deterministic in `seed`. Sampling all
/// sources matches the exact algorithm up to floating-point summation
/// order (the sampled sweep sums over a permuted source list, so low
/// bits can differ from [`betweenness`]).
///
/// Useful when the squeezed s-line graph is still large and only a
/// ranking of the top-central hyperedges is needed.
pub fn betweenness_sampled(g: &Graph, num_sources: usize, seed: u64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let k = num_sources.clamp(1, n);
    // Deterministic sample without replacement via xorshift + partial
    // Fisher-Yates over the vertex IDs. The seed is passed through a
    // splitmix64 finalizer first: seeding the xorshift state directly
    // (e.g. with `seed | 1` to dodge the all-zero state) would alias
    // every even seed with its odd neighbor and hand them the exact
    // same sample.
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let mut state = {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) | 1
    };
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..k {
        let j = i + (next() as usize) % (n - i);
        ids.swap(i, j);
    }
    let sources = &ids[..k];

    let mut scores = betweenness_over_sources(g, sources);
    let scale = n as f64 / k as f64 / 2.0;
    for x in &mut scores {
        *x *= scale;
    }
    scores
}

/// Normalizes betweenness scores to `[0, 1]` by the number of ordered
/// pairs excluding the vertex itself: `(n-1)(n-2)/2` for undirected
/// graphs. Graphs with `n < 3` normalize to all zeros.
pub fn normalize(scores: &mut [f64]) {
    let n = scores.len() as f64;
    if n < 3.0 {
        scores.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    let denom = (n - 1.0) * (n - 2.0) / 2.0;
    scores.iter_mut().for_each(|x| *x /= denom);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    /// O(V^3)-ish brute force via explicit shortest path enumeration.
    fn brute_force(g: &Graph) -> Vec<f64> {
        let n = g.num_vertices();
        let mut scores = vec![0.0; n];
        // all-pairs shortest path counts via BFS from each source
        let dist_sigma: Vec<(Vec<u32>, Vec<f64>)> = (0..n as u32)
            .map(|s| {
                let d = crate::bfs::bfs_distances(g, s);
                // count shortest paths with DP in BFS order
                let mut order: Vec<u32> = (0..n as u32)
                    .filter(|&v| d[v as usize] != u32::MAX)
                    .collect();
                order.sort_by_key(|&v| d[v as usize]);
                let mut sigma = vec![0.0; n];
                sigma[s as usize] = 1.0;
                for &v in &order {
                    if v == s {
                        continue;
                    }
                    for &u in g.neighbors(v) {
                        if d[u as usize] != u32::MAX && d[u as usize] + 1 == d[v as usize] {
                            sigma[v as usize] += sigma[u as usize];
                        }
                    }
                }
                (d, sigma)
            })
            .collect();
        for s in 0..n {
            for t in 0..n {
                if s == t || dist_sigma[s].0[t] == u32::MAX {
                    continue;
                }
                let dst = dist_sigma[s].0[t];
                let total = dist_sigma[s].1[t];
                for v in 0..n {
                    if v == s || v == t {
                        continue;
                    }
                    let dsv = dist_sigma[s].0[v];
                    let dvt = dist_sigma[v].0[t];
                    if dsv != u32::MAX && dvt != u32::MAX && dsv + dvt == dst {
                        scores[v] += dist_sigma[s].1[v] * dist_sigma[t].1[v] / total;
                    }
                }
            }
        }
        for x in &mut scores {
            *x /= 2.0;
        }
        scores
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_centers() {
        // Path 0-1-2-3-4: BC = [0, 3, 4, 3, 0]
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let bc = betweenness(&g);
        assert_close(&bc, &[0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_graph_center_dominates() {
        // Star with center 0 over 4 leaves: center BC = C(4,2) = 6.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let bc = betweenness(&g);
        assert_close(&bc, &[6.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn complete_graph_all_zero() {
        let edges: Vec<(u32, u32)> = (0..4u32)
            .flat_map(|a| (a + 1..4).map(move |b| (a, b)))
            .collect();
        let g = Graph::from_edges(4, &edges);
        assert_close(&betweenness(&g), &[0.0; 4]);
    }

    #[test]
    fn diamond_splits_paths() {
        // 0-1, 0-2, 1-3, 2-3: two shortest paths 0->3, each middle gets 0.5.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let bc = betweenness(&g);
        assert_close(&bc, &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = rng.gen_range(2..40usize);
            let nedges = rng.gen_range(1..80usize);
            let edges: Vec<(u32, u32)> = (0..nedges)
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .collect();
            let g = Graph::from_edges(n, &edges);
            assert_close(&betweenness(&g), &betweenness_parallel(&g));
        }
    }

    #[test]
    fn parallel_is_bit_identical_across_thread_counts() {
        // The fixed-order reduction must make scores *bit*-identical (not
        // merely close) no matter the worker budget — ties in downstream
        // rankings and cached HTTP bodies depend on it.
        let mut rng = StdRng::seed_from_u64(23);
        let n = 120usize;
        let edges: Vec<(u32, u32)> = (0..400)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let reference: Vec<u64> =
            hyperline_util::parallel::with_threads(1, || betweenness_parallel(&g))
                .into_iter()
                .map(f64::to_bits)
                .collect();
        for threads in [2usize, 3, 5, 8, 13] {
            let bits: Vec<u64> =
                hyperline_util::parallel::with_threads(threads, || betweenness_parallel(&g))
                    .into_iter()
                    .map(f64::to_bits)
                    .collect();
            assert_eq!(bits, reference, "{threads} threads diverged");
        }
        // The sampled variant is deterministic in (samples, seed) too.
        let sampled: Vec<u64> = betweenness_sampled(&g, 40, 7)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        let again: Vec<u64> =
            hyperline_util::parallel::with_threads(3, || betweenness_sampled(&g, 40, 7))
                .into_iter()
                .map(f64::to_bits)
                .collect();
        assert_eq!(sampled, again);
    }

    #[test]
    fn brandes_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let n = rng.gen_range(2..15usize);
            let nedges = rng.gen_range(1..30usize);
            let edges: Vec<(u32, u32)> = (0..nedges)
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .collect();
            let g = Graph::from_edges(n, &edges);
            assert_close(&betweenness(&g), &brute_force(&g));
        }
    }

    #[test]
    fn disconnected_components_independent() {
        // Two paths: 0-1-2 and 3-4-5; middles get BC 1 each.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert_close(&betweenness(&g), &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn normalization() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut bc = betweenness(&g);
        normalize(&mut bc);
        // center: 4 / ((4*3)/2) = 4/6
        assert!((bc[2] - 4.0 / 6.0).abs() < 1e-12);
        let mut tiny = vec![1.0, 2.0];
        normalize(&mut tiny);
        assert_eq!(tiny, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert!(betweenness(&g).is_empty());
        assert!(betweenness_parallel(&g).is_empty());
        assert!(betweenness_sampled(&g, 5, 1).is_empty());
    }

    #[test]
    fn sampled_with_all_sources_is_exact() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)]);
        let exact = betweenness(&g);
        let sampled = betweenness_sampled(&g, 6, 7);
        assert_close(&exact, &sampled);
        // Oversampling clamps to n.
        let oversampled = betweenness_sampled(&g, 100, 7);
        assert_close(&exact, &oversampled);
    }

    #[test]
    fn sampled_preserves_star_ranking() {
        // Star: the hub must dominate even from a single sampled source.
        let g = Graph::from_edges(9, &(1..9u32).map(|v| (0, v)).collect::<Vec<_>>());
        for seed in [1u64, 2, 3] {
            let approx = betweenness_sampled(&g, 3, seed);
            let hub = approx[0];
            assert!(
                (1..9).all(|v| approx[v] <= hub),
                "seed {seed}: hub not dominant: {approx:?}"
            );
        }
    }

    #[test]
    fn sampled_estimate_near_exact_on_path() {
        let n = 60;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(n, &edges);
        let exact = betweenness(&g);
        let approx = betweenness_sampled(&g, 30, 9);
        // Relative error of the center vertex under half sampling.
        let c = n / 2;
        let rel = (approx[c] - exact[c]).abs() / exact[c];
        assert!(rel < 0.35, "relative error {rel}");
    }
}
