//! Tolerant recursive-descent parser over the [`crate::lexer`] stream.
//!
//! Parses every workspace file to the depth the interprocedural rules
//! need: item structure (modules, impls, traits, structs, statics) is
//! parsed for real; `fn` bodies are walked as balanced token trees from
//! which the analyzer extracts
//!
//! * **call sites** — free/path calls and method calls, with the path
//!   qualifier and the set of locks held at the call;
//! * **panic sinks** — `.unwrap()`, `.expect(`, `panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!`, and slice indexing;
//! * **lock events** — `.lock()`/`.read()`/`.write()` acquisitions with
//!   guard-scope tracking (`let`-bound guards live to the end of their
//!   block or an explicit `drop(guard)`; temporaries to the statement);
//! * **atomic operations** — `load`/`store`/RMW calls with their
//!   `Ordering::*` arguments and an alias-resolved receiver.
//!
//! Closure bodies are attributed to the defining function, which is
//! what makes higher-order seams (`with_compute_budget(state, || ...)`)
//! analyze conservatively: the closure's calls are edges out of the
//! *caller*, so reachability never depends on resolving the `f()`
//! inside the helper.
//!
//! Anything the parser does not model (unknown item forms, macro
//! bodies) is skipped as a balanced token tree; a construct that cannot
//! even be skipped safely is recorded in [`FileAst::errors`], and the
//! self-parse test keeps that list empty for the whole workspace.

use crate::lexer::{lex, Tok, Token};

/// A lock-relevant method call kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockKind {
    /// `Mutex::lock`.
    Mutex,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

/// One lock acquisition inside a function body.
#[derive(Clone, Debug)]
pub struct LockAcq {
    /// Dotted receiver chain as written (`self.state`, alias-resolved).
    pub chain: String,
    /// Which primitive method was called.
    pub kind: LockKind,
    /// 1-based source line.
    pub line: u32,
    /// Receiver chains of locks held when this one was taken.
    pub held: Vec<String>,
}

/// One atomic operation inside a function body.
#[derive(Clone, Debug)]
pub struct AtomicOp {
    /// Dotted receiver chain, alias-resolved.
    pub chain: String,
    /// Method name (`load`, `store`, `fetch_add`, `compare_exchange`…).
    pub method: String,
    /// The `Ordering::X` idents that appear in the argument list.
    pub orderings: Vec<String>,
    /// 1-based source line.
    pub line: u32,
}

/// A panicking sink inside a function body.
#[derive(Clone, Debug)]
pub struct Sink {
    /// Compact sink name: `.unwrap()`, `.expect(`, `panic!`,
    /// `unreachable!`, `todo!`, `unimplemented!`, `index[]`.
    pub what: &'static str,
    /// 1-based source line.
    pub line: u32,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name (last path segment or method name).
    pub name: String,
    /// Path qualifier directly before the name (`http` in
    /// `http::write_response`, `Json` in `Json::obj`, `Self`), if any.
    pub qual: Option<String>,
    /// True for `recv.name(...)` method-call syntax.
    pub method: bool,
    /// Dotted receiver chain for method calls on simple chains
    /// (`self.pool`), alias-resolved; `None` for free calls and for
    /// receivers that are themselves call results.
    pub recv: Option<String>,
    /// 1-based source line.
    pub line: u32,
    /// Receiver chains of locks held across this call.
    pub held: Vec<String>,
}

/// One parsed `fn`.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Bare name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, when any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when under `#[cfg(test)]` / `#[test]` or in a tests file.
    pub in_test: bool,
    /// Defined inside a `trait` declaration or an `impl Trait for Type`
    /// block — i.e. callable through dynamic (trait-object) dispatch.
    pub via_trait: bool,
    /// `// lint: <marker>` annotations attached to this fn.
    pub markers: Vec<String>,
    /// Calls out of this fn (closure bodies included).
    pub calls: Vec<CallSite>,
    /// Panic sinks syntactically inside this fn.
    pub sinks: Vec<Sink>,
    /// Lock acquisitions inside this fn.
    pub locks: Vec<LockAcq>,
    /// Atomic operations inside this fn.
    pub atomics: Vec<AtomicOp>,
    /// Declared local types, in binding order: parameter `name: Ty`
    /// pairs plus `let x: Ty = ..` annotations and `let x = Ty::ctor(..)`
    /// constructor bindings. Used to type single-segment method
    /// receivers; later bindings shadow earlier ones.
    pub locals: Vec<(String, String)>,
}

impl FnDef {
    /// `Type::name` when inside an impl/trait, else the bare name.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One struct field (named fields only; tuple fields are opaque).
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Source text of the type.
    pub ty: String,
}

/// A parsed struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Named fields.
    pub fields: Vec<Field>,
}

/// A parsed `static` item (atomics live here too).
#[derive(Clone, Debug)]
pub struct StaticDef {
    /// Item name.
    pub name: String,
    /// Source text of the type.
    pub ty: String,
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct FileAst {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Functions (methods included), in source order.
    pub fns: Vec<FnDef>,
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Static items.
    pub statics: Vec<StaticDef>,
    /// True when the file imports through the `hyperline_util::sync`
    /// seam (directly or via a re-export) — the scope gate for the
    /// lock-order and ordering-pairing rules.
    pub uses_sync_seam: bool,
    /// Parse/lex errors; non-empty disables interprocedural rules for
    /// this file and re-enables the HL005 line fallback.
    pub errors: Vec<String>,
}

/// Parses one file. Never panics; problems land in [`FileAst::errors`].
pub fn parse_file(path: &str, src: &str) -> FileAst {
    let lexed = lex(src);
    let mut ast = FileAst {
        path: path.to_string(),
        uses_sync_seam: detects_sync_seam(src),
        errors: lexed.errors,
        ..FileAst::default()
    };
    if !ast.errors.is_empty() {
        return ast;
    }
    let markers = scan_markers(src);
    let file_in_test = path.contains("/tests/") || path.contains("/benches/");
    let mut p = Parser {
        src,
        toks: &lexed.tokens,
        pos: 0,
        ast: &mut ast,
    };
    p.items(None, file_in_test, false, None);
    // Attach each `// lint: X` marker to the first fn defined after it.
    for (marker_line, marker) in markers {
        if let Some(f) = ast
            .fns
            .iter_mut()
            .filter(|f| f.line > marker_line)
            .min_by_key(|f| f.line)
        {
            f.markers.push(marker);
        }
    }
    ast
}

/// `// lint: request-root`-style annotations, scanned from raw lines
/// (the lexer drops comments).
fn scan_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("// lint:") {
            out.push(((i + 1) as u32, rest.trim().to_string()));
        }
    }
    out
}

/// Whether the file imports sync primitives through the seam.
fn detects_sync_seam(src: &str) -> bool {
    [
        "use crate::sync",
        "hyperline_util::sync",
        "use crate::sync::atomic",
    ]
    .iter()
    .any(|needle| src.contains(needle))
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
    pos: usize,
    ast: &'a mut FileAst,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn text(&self, t: &Token) -> &'a str {
        t.text(self.src)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(t) if t.kind == Tok::Ident && self.text(t) == word)
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.at_ident(word) {
            self.pos += 1;
            return true;
        }
        false
    }

    /// Skips a balanced token tree starting at an `Open` token. Returns
    /// the token range of the *contents* (open/close excluded).
    fn skip_tree(&mut self) -> (usize, usize) {
        let Some(open) = self.peek() else {
            return (self.pos, self.pos);
        };
        let Tok::Open(delim) = open.kind else {
            self.pos += 1;
            return (self.pos, self.pos);
        };
        self.pos += 1;
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(t) = self.peek() {
            match t.kind {
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => {
                    depth -= 1;
                    if depth == 0 {
                        let end = self.pos;
                        self.pos += 1;
                        let _ = delim;
                        return (start, end);
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        (start, self.pos)
    }

    /// Skips a `<...>` generics list if the cursor is on `<`.
    fn skip_generics(&mut self) {
        if !matches!(self.peek(), Some(t) if t.kind == Tok::Punct(b'<')) {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.kind {
                Tok::Punct(b'<') => depth += 1,
                Tok::Punct(b'>') => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                Tok::Open(_) => {
                    self.skip_tree();
                    continue;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips tokens until a `;` or an `Open({)` at delimiter depth 0;
    /// consumes the `;` but leaves the `{`. Returns true when a body
    /// brace follows.
    fn skip_to_body_or_semi(&mut self) -> bool {
        while let Some(t) = self.peek() {
            match t.kind {
                Tok::Punct(b';') => {
                    self.pos += 1;
                    return false;
                }
                Tok::Open(b'{') => return true,
                Tok::Open(_) => {
                    self.skip_tree();
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        false
    }

    /// Consumes one attribute `#[...]` / `#![...]`; returns its text.
    fn attr_text(&mut self) -> String {
        // Cursor on `#`.
        self.pos += 1;
        if matches!(self.peek(), Some(t) if t.kind == Tok::Punct(b'!')) {
            self.pos += 1;
        }
        let lo = self.pos;
        let (start, end) = self.skip_tree();
        let _ = lo;
        self.toks[start..end]
            .iter()
            .map(|t| t.text(self.src))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Parses an item sequence until EOF or the enclosing `}`.
    fn items(
        &mut self,
        self_ty: Option<&str>,
        in_test: bool,
        via_trait: bool,
        until_close: Option<()>,
    ) {
        loop {
            let Some(t) = self.peek() else { return };
            if until_close.is_some() {
                if let Tok::Close(b'{') = t.kind {
                    self.pos += 1;
                    return;
                }
            }
            let mut item_test = in_test;
            // Attributes (stacked); `cfg(test)` / `test` mark the item.
            while matches!(self.peek(), Some(t) if t.kind == Tok::Punct(b'#')) {
                let attr = self.attr_text();
                if attr.contains("cfg ( test")
                    || attr.contains("cfg ( all ( test")
                    || attr == "test"
                    || attr.starts_with("test ")
                {
                    item_test = true;
                }
            }
            // Visibility.
            if self.eat_ident("pub") {
                if matches!(self.peek(), Some(t) if t.kind == Tok::Open(b'(')) {
                    self.skip_tree();
                }
            }
            let Some(t) = self.peek() else { return };
            let word = if t.kind == Tok::Ident {
                self.text(t)
            } else {
                ""
            };
            match word {
                "fn" => self.item_fn(self_ty, item_test, via_trait),
                "unsafe" | "async" | "const" if self.is_fn_modifier() => {
                    // `const fn` / (hypothetical) `unsafe fn` prefix.
                    self.pos += 1;
                }
                "struct" => self.item_struct(),
                "enum" | "union" => {
                    self.pos += 1;
                    self.bump(); // name
                    self.skip_generics();
                    if self.skip_to_body_or_semi() {
                        self.skip_tree();
                    }
                }
                "trait" => {
                    self.pos += 1;
                    let name = self.bump().map(|t| t.text(self.src).to_string());
                    self.skip_generics();
                    if self.skip_to_body_or_semi() {
                        self.pos += 1; // consume `{`
                        self.items(name.as_deref(), item_test, true, Some(()));
                    }
                }
                "impl" => self.item_impl(item_test),
                "mod" => {
                    self.pos += 1;
                    self.bump(); // name
                    match self.peek().map(|t| t.kind) {
                        Some(Tok::Punct(b';')) => {
                            self.pos += 1;
                        }
                        Some(Tok::Open(b'{')) => {
                            self.pos += 1;
                            self.items(self_ty, item_test, via_trait, Some(()));
                        }
                        _ => {
                            self.error_here("malformed mod item");
                        }
                    }
                }
                "use" | "type" | "extern" => {
                    self.pos += 1;
                    self.skip_item_to_semi();
                }
                "static" | "const" => {
                    self.pos += 1;
                    self.item_static_or_const();
                }
                "macro_rules" => {
                    self.pos += 1;
                    // `! name { ... }`
                    if matches!(self.peek(), Some(t) if t.kind == Tok::Punct(b'!')) {
                        self.pos += 1;
                    }
                    self.bump(); // name
                    if matches!(self.peek(), Some(t) if matches!(t.kind, Tok::Open(_))) {
                        self.skip_tree();
                    }
                }
                _ => {
                    // Item-level macro invocation `name!(...);` or
                    // `path::name! { ... }`.
                    if t.kind == Tok::Ident && self.is_macro_invocation() {
                        self.skip_macro_invocation();
                    } else {
                        self.error_here("unexpected item-level token");
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn is_fn_modifier(&self) -> bool {
        matches!(self.toks.get(self.pos + 1), Some(t) if t.kind == Tok::Ident
            && matches!(t.text(self.src), "fn" | "unsafe" | "extern"))
    }

    fn is_macro_invocation(&self) -> bool {
        let mut k = self.pos;
        // name (:: name)* !
        loop {
            match self.toks.get(k).map(|t| t.kind) {
                Some(Tok::Ident) => k += 1,
                _ => return false,
            }
            match self.toks.get(k).map(|t| t.kind) {
                Some(Tok::PathSep) => k += 1,
                Some(Tok::Punct(b'!')) => return true,
                _ => return false,
            }
        }
    }

    fn skip_macro_invocation(&mut self) {
        while let Some(t) = self.peek() {
            match t.kind {
                Tok::Punct(b'!') => {
                    self.pos += 1;
                    break;
                }
                Tok::Ident | Tok::PathSep => self.pos += 1,
                _ => break,
            }
        }
        if matches!(self.peek(), Some(t) if matches!(t.kind, Tok::Open(_))) {
            let braces = matches!(self.peek(), Some(t) if t.kind == Tok::Open(b'{'));
            self.skip_tree();
            if !braces && matches!(self.peek(), Some(t) if t.kind == Tok::Punct(b';')) {
                self.pos += 1;
            }
        }
    }

    /// Skips to the `;` ending a non-brace item, honoring token trees.
    fn skip_item_to_semi(&mut self) {
        while let Some(t) = self.peek() {
            match t.kind {
                Tok::Punct(b';') => {
                    self.pos += 1;
                    return;
                }
                Tok::Open(_) => {
                    self.skip_tree();
                }
                Tok::Close(_) => return, // tolerate missing `;` at scope end
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    fn error_here(&mut self, what: &str) {
        let (line, text) = match self.peek() {
            Some(t) => (t.line, self.text(t).to_string()),
            None => (0, "<eof>".to_string()),
        };
        self.ast
            .errors
            .push(format!("line {line}: {what} `{text}`"));
    }

    fn item_static_or_const(&mut self) {
        // (already past the keyword) [mut] NAME : TYPE = ... ;
        self.eat_ident("mut");
        let name = match self.peek() {
            Some(t) if t.kind == Tok::Ident => {
                let n = self.text(t).to_string();
                self.pos += 1;
                n
            }
            // `const fn` handled by the caller; `const _ :` etc.
            _ => String::new(),
        };
        // Type text: between `:` and `=`/`;` at depth 0.
        let mut ty = String::new();
        if matches!(self.peek(), Some(t) if t.kind == Tok::Punct(b':')) {
            self.pos += 1;
            let ty_start = self.peek().map(|t| t.lo as usize);
            let mut ty_end = ty_start;
            while let Some(t) = self.peek() {
                match t.kind {
                    Tok::Punct(b'=') | Tok::Punct(b';') => break,
                    Tok::Open(_) => {
                        let before_close = self.skip_tree().1;
                        ty_end = self.toks.get(before_close).map(|t| t.hi as usize);
                        continue;
                    }
                    _ => {
                        ty_end = Some(t.hi as usize);
                        self.pos += 1;
                    }
                }
            }
            if let (Some(lo), Some(hi)) = (ty_start, ty_end) {
                if lo <= hi && hi <= self.src.len() {
                    ty = self.src[lo..hi].to_string();
                }
            }
        }
        self.skip_item_to_semi();
        if !name.is_empty() {
            self.ast.statics.push(StaticDef { name, ty });
        }
    }

    fn item_struct(&mut self) {
        self.pos += 1; // `struct`
        let Some(name_tok) = self.bump() else { return };
        let name = name_tok.text(self.src).to_string();
        self.skip_generics();
        // where-clause then `{ fields }`, `( tuple );`, or `;`.
        let mut fields = Vec::new();
        loop {
            match self.peek().map(|t| t.kind) {
                Some(Tok::Punct(b';')) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Open(b'(')) => {
                    self.skip_tree();
                }
                Some(Tok::Open(b'{')) => {
                    let (start, end) = self.skip_tree();
                    fields = self.parse_fields(start, end);
                    break;
                }
                Some(_) => {
                    self.pos += 1;
                }
                None => break,
            }
        }
        self.ast.structs.push(StructDef { name, fields });
    }

    /// Parses named fields from the token range of a struct body.
    fn parse_fields(&self, start: usize, end: usize) -> Vec<Field> {
        let mut fields = Vec::new();
        let mut k = start;
        while k < end {
            // Skip attributes and visibility.
            while k < end && self.toks[k].kind == Tok::Punct(b'#') {
                k += 1;
                if k < end {
                    k = skip_tree_at(self.toks, k, end);
                }
            }
            if k < end && self.toks[k].kind == Tok::Ident && self.toks[k].text(self.src) == "pub" {
                k += 1;
                if k < end && self.toks[k].kind == Tok::Open(b'(') {
                    k = skip_tree_at(self.toks, k, end);
                }
            }
            // name : type , — commas inside (), [], {} and <> don't end
            // the field.
            if k + 1 < end
                && self.toks[k].kind == Tok::Ident
                && self.toks[k + 1].kind == Tok::Punct(b':')
            {
                let name = self.toks[k].text(self.src).to_string();
                k += 2;
                let ty_lo = self.toks.get(k).map(|t| t.lo as usize);
                let mut ty_hi = ty_lo;
                let mut angle = 0i32;
                while k < end {
                    match self.toks[k].kind {
                        Tok::Punct(b',') if angle == 0 => break,
                        Tok::Punct(b'<') => angle += 1,
                        Tok::Punct(b'>') => angle -= 1,
                        Tok::Open(_) => {
                            let after = skip_tree_at(self.toks, k, end);
                            ty_hi = self.toks.get(after - 1).map(|t| t.hi as usize);
                            k = after;
                            continue;
                        }
                        _ => {}
                    }
                    ty_hi = Some(self.toks[k].hi as usize);
                    k += 1;
                }
                if let (Some(lo), Some(hi)) = (ty_lo, ty_hi) {
                    if lo <= hi && hi <= self.src.len() {
                        fields.push(Field {
                            name,
                            ty: self.src[lo..hi].to_string(),
                        });
                    }
                }
            }
            // Consume the separating comma (or make progress).
            if k < end {
                k += 1;
            } else {
                break;
            }
        }
        fields
    }

    fn item_impl(&mut self, in_test: bool) {
        self.pos += 1; // `impl`
        self.skip_generics();
        // Collect path tokens up to `{`; the self type is the segment
        // after `for` when present, else the first path.
        let mut segments: Vec<String> = Vec::new();
        let mut after_for: Option<usize> = None;
        while let Some(t) = self.peek() {
            match t.kind {
                Tok::Open(b'{') => break,
                Tok::Ident => {
                    let word = self.text(t);
                    if word == "for" {
                        after_for = Some(segments.len());
                    } else if word == "where" {
                        // bounds — stop collecting type segments
                        if self.skip_to_body_or_semi() {
                            break;
                        }
                        return;
                    } else {
                        segments.push(word.to_string());
                    }
                    self.pos += 1;
                }
                Tok::Punct(b'<') => self.skip_generics(),
                Tok::Open(_) => {
                    self.skip_tree();
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        let self_ty = match after_for {
            Some(ix) => segments.get(ix).cloned(),
            // `impl Foo` — last segment of the (possibly qualified) path.
            None => segments.last().cloned(),
        };
        if matches!(self.peek(), Some(t) if t.kind == Tok::Open(b'{')) {
            self.pos += 1;
            self.items(self_ty.as_deref(), in_test, after_for.is_some(), Some(()));
        }
    }

    fn item_fn(&mut self, self_ty: Option<&str>, in_test: bool, via_trait: bool) {
        let fn_tok_line = self.peek().map(|t| t.line).unwrap_or(0);
        self.pos += 1; // `fn`
        let Some(name_tok) = self.bump() else { return };
        let name = name_tok.text(self.src).to_string();
        self.skip_generics();
        let mut locals: Vec<(String, String)> = Vec::new();
        if matches!(self.peek(), Some(t) if t.kind == Tok::Open(b'(')) {
            let (start, end) = self.skip_tree(); // params
            locals = param_types(self.src, &self.toks[start..end]);
        }
        let has_body = self.skip_to_body_or_semi();
        let mut def = FnDef {
            name,
            self_ty: self_ty.map(|s| s.to_string()),
            line: fn_tok_line,
            in_test,
            via_trait,
            markers: Vec::new(),
            calls: Vec::new(),
            sinks: Vec::new(),
            locks: Vec::new(),
            atomics: Vec::new(),
            locals,
        };
        if has_body {
            let (start, end) = self.skip_tree();
            walk_body(self.src, &self.toks[start..end], &mut def);
        }
        self.ast.fns.push(def);
    }
}

/// Extracts `name: Type` pairs from a parameter token slice (the
/// tokens between the parens). `self` receivers and pattern parameters
/// are skipped; the type text runs to the next top-level comma, which
/// truncates inside generic argument lists — harmless, since receiver
/// classification only reads the head of the type.
fn param_types(src: &str, toks: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut k = 0usize;
    while k < toks.len() {
        match toks[k].kind {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Ident
                if depth == 0
                    && toks.get(k + 1).map(|t| t.kind) == Some(Tok::Punct(b':'))
                    && toks[k].text(src) != "self" =>
            {
                let name = toks[k].text(src).to_string();
                let Some(first) = toks.get(k + 2) else { break };
                let lo = first.lo;
                let mut j = k + 2;
                let mut d = 0usize;
                while j < toks.len() {
                    match toks[j].kind {
                        Tok::Open(_) => d += 1,
                        Tok::Close(_) => d = d.saturating_sub(1),
                        Tok::Punct(b',') if d == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j > k + 2 {
                    out.push((name, src[lo as usize..toks[j - 1].hi as usize].to_string()));
                }
                k = j + 1;
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Type of a `let` binding at token `k` (the `let`): an explicit
/// `let x: Ty = ..` annotation, or the qualifier of a constructor call
/// `let x = Ty::ctor(..)`. Returns `None` for untypable initializers.
fn let_type(src: &str, toks: &[Token], k: usize) -> Option<String> {
    let mut j = k + 1;
    if matches!(toks.get(j), Some(t) if t.kind == Tok::Ident && t.text(src) == "mut") {
        j += 1;
    }
    if toks.get(j).map(|t| t.kind) != Some(Tok::Ident) {
        return None; // pattern binding
    }
    match toks.get(j + 1).map(|t| t.kind) {
        Some(Tok::Punct(b':')) => {
            let lo = toks.get(j + 2)?.lo;
            let mut i = j + 2;
            let mut d = 0usize;
            while i < toks.len() {
                match toks[i].kind {
                    Tok::Open(_) => d += 1,
                    Tok::Close(_) => {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                    }
                    Tok::Punct(b'=') | Tok::Punct(b';') if d == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            (i > j + 2).then(|| src[lo as usize..toks[i - 1].hi as usize].to_string())
        }
        Some(Tok::Punct(b'=')) => {
            // `let x = Ty::ctor(..)` — uppercase head + `::` is a
            // constructor-ish path; anything else stays untyped.
            let head = toks.get(j + 2)?;
            if head.kind == Tok::Ident
                && toks.get(j + 3).map(|t| t.kind) == Some(Tok::PathSep)
                && head.text(src).starts_with(|c: char| c.is_ascii_uppercase())
                // `Arc::clone(&x)`-style wrapper paths are aliases,
                // not constructors — the alias map owns those.
                && !matches!(head.text(src), "Arc" | "Rc" | "Box")
            {
                Some(head.text(src).to_string())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Skips a balanced tree in a token slice starting at `k` (an `Open`);
/// returns the index one past the matching close.
fn skip_tree_at(toks: &[Token], k: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut k = k;
    while k < end {
        match toks[k].kind {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    end
}

const PANIC_MACROS: [(&str, &str); 4] = [
    ("panic", "panic!"),
    ("unreachable", "unreachable!"),
    ("todo", "todo!"),
    ("unimplemented", "unimplemented!"),
];

const KEYWORDS_NOT_CALLS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "else", "in", "as", "move", "break",
    "continue",
];

/// Methods that acquire a lock when called with zero arguments.
fn lock_method(name: &str) -> Option<LockKind> {
    match name {
        "lock" => Some(LockKind::Mutex),
        "read" => Some(LockKind::Read),
        "write" => Some(LockKind::Write),
        _ => None,
    }
}

/// Atomic read/write classification for HL009.
pub fn atomic_method(name: &str) -> Option<(bool, bool)> {
    // (reads, writes)
    match name {
        "load" => Some((true, false)),
        "store" => Some((false, true)),
        "swap"
        | "compare_exchange"
        | "compare_exchange_weak"
        | "fetch_add"
        | "fetch_sub"
        | "fetch_and"
        | "fetch_or"
        | "fetch_xor"
        | "fetch_nand"
        | "fetch_min"
        | "fetch_max"
        | "fetch_update" => Some((true, true)),
        _ => None,
    }
}

/// One held guard during the body walk.
struct Held {
    chain: String,
    binding: Option<String>,
    /// Brace depth at acquisition; `None` marks a statement temporary.
    scope: Option<usize>,
}

/// Walks one fn body's token slice, filling `def`.
fn walk_body(src: &str, toks: &[Token], def: &mut FnDef) {
    let text = |k: usize| toks[k].text(src);
    let kind = |k: usize| toks.get(k).map(|t| t.kind);
    let mut held: Vec<Held> = Vec::new();
    let mut aliases: Vec<(String, String)> = Vec::new(); // name -> chain
    let mut depth = 0usize;
    let mut stmt_start = true;
    let mut stmt_binding: Option<String> = None;

    let mut k = 0usize;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            Tok::Open(b'{') => {
                depth += 1;
                stmt_start = true;
                stmt_binding = None;
                k += 1;
                continue;
            }
            Tok::Close(b'{') => {
                // Scoped guards die with their block; a surviving
                // statement temporary is a tail-expression guard that
                // also dies at the block end.
                held.retain(|h| h.scope.is_some_and(|s| s < depth));
                depth = depth.saturating_sub(1);
                stmt_start = true;
                stmt_binding = None;
                k += 1;
                continue;
            }
            Tok::Punct(b';') => {
                // Statement temporaries release here.
                held.retain(|h| h.scope.is_some());
                stmt_start = true;
                stmt_binding = None;
                k += 1;
                continue;
            }
            _ => {}
        }
        // `let` binding name (first ident after `let`, skipping `mut`
        // and tuple/struct pattern sugar — good enough for guards).
        if stmt_start && t.kind == Tok::Ident && text(k) == "let" {
            let mut j = k + 1;
            while j < toks.len() {
                match toks[j].kind {
                    Tok::Ident if text(j) == "mut" => j += 1,
                    Tok::Ident => {
                        stmt_binding = Some(text(j).to_string());
                        break;
                    }
                    Tok::Open(_) | Tok::Punct(b'&') => j += 1,
                    _ => break,
                }
            }
            stmt_start = false;
            // Alias tracking: `let a = Arc::clone(&b);` / `let a = b.clone();`
            if let Some(name) = &stmt_binding {
                if let Some(target) = alias_target(src, toks, k) {
                    let resolved = resolve_alias(&aliases, &target);
                    aliases.retain(|(n, _)| n != name);
                    aliases.push((name.clone(), resolved));
                }
                if let Some(ty) = let_type(src, toks, k) {
                    def.locals.push((name.clone(), ty));
                }
            }
            k += 1;
            continue;
        }
        stmt_start = false;

        // `drop(guard)` releases a named guard.
        if t.kind == Tok::Ident
            && text(k) == "drop"
            && kind(k + 1) == Some(Tok::Open(b'('))
            && kind(k + 2) == Some(Tok::Ident)
            && kind(k + 3) == Some(Tok::Close(b'('))
        {
            let name = text(k + 2).to_string();
            held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
            k += 4;
            continue;
        }

        // Macro sinks + macro calls: IDENT `!` `(`/`[`/`{` (the
        // delimiter requirement keeps `x != y` from matching).
        if t.kind == Tok::Ident
            && kind(k + 1) == Some(Tok::Punct(b'!'))
            && matches!(kind(k + 2), Some(Tok::Open(_)))
        {
            let name = text(k);
            if let Some((_, label)) = PANIC_MACROS.iter().find(|(m, _)| *m == name) {
                def.sinks.push(Sink {
                    what: label,
                    line: t.line,
                });
            }
            k += 2;
            continue;
        }

        // Method calls: `.` IDENT `(`.
        if t.kind == Tok::Punct(b'.')
            && kind(k + 1) == Some(Tok::Ident)
            && kind(k + 2) == Some(Tok::Open(b'('))
        {
            let name = text(k + 1);
            let line = toks[k + 1].line;
            let arg_count = count_args(toks, k + 2);
            // Sinks.
            if name == "unwrap" && arg_count == 0 {
                def.sinks.push(Sink {
                    what: ".unwrap()",
                    line,
                });
            } else if name == "expect" {
                def.sinks.push(Sink {
                    what: ".expect(",
                    line,
                });
            }
            let chain = receiver_chain(src, toks, k).map(|c| resolve_alias(&aliases, &c));
            // Lock acquisitions: zero-arg lock()/read()/write() on a
            // simple receiver chain.
            if let (Some(lk), Some(chain), 0) = (lock_method(name), chain.as_ref(), arg_count) {
                def.locks.push(LockAcq {
                    chain: chain.clone(),
                    kind: lk,
                    line,
                    held: held.iter().map(|h| h.chain.clone()).collect(),
                });
                held.push(Held {
                    chain: chain.clone(),
                    binding: stmt_binding.clone(),
                    scope: stmt_binding.as_ref().map(|_| depth),
                });
            }
            // Atomic ops with Ordering arguments.
            if let (Some(_), Some(chain)) = (atomic_method(name), chain.as_ref()) {
                let orderings = collect_orderings(src, toks, k + 2);
                if !orderings.is_empty() {
                    def.atomics.push(AtomicOp {
                        chain: chain.clone(),
                        method: name.to_string(),
                        orderings,
                        line,
                    });
                }
            }
            def.calls.push(CallSite {
                name: name.to_string(),
                qual: None,
                method: true,
                recv: chain,
                line,
                held: held.iter().map(|h| h.chain.clone()).collect(),
            });
            k += 2; // land on `(` so the args are walked too
            continue;
        }

        // Free / path calls: IDENT `(` not preceded by `.` or `fn`.
        if t.kind == Tok::Ident && kind(k + 1) == Some(Tok::Open(b'(')) {
            let name = text(k);
            let prev = k.checked_sub(1).and_then(|p| toks.get(p));
            let prev_kind = prev.map(|t| t.kind);
            let prev_is_dot = prev_kind == Some(Tok::Punct(b'.'));
            let prev_is_fn = matches!(prev, Some(p) if p.kind == Tok::Ident && p.text(src) == "fn");
            if !prev_is_dot && !prev_is_fn && !KEYWORDS_NOT_CALLS.contains(&name) {
                let qual = if prev_kind == Some(Tok::PathSep) {
                    k.checked_sub(2)
                        .and_then(|p| toks.get(p))
                        .filter(|t| t.kind == Tok::Ident)
                        .map(|t| t.text(src).to_string())
                } else {
                    None
                };
                def.calls.push(CallSite {
                    name: name.to_string(),
                    qual,
                    method: false,
                    recv: None,
                    line: t.line,
                    held: held.iter().map(|h| h.chain.clone()).collect(),
                });
            }
            k += 1; // land on `(`
            continue;
        }

        // Indexing sink: IDENT `[` or `)` `[` / `]` `[` (only meaningful
        // for `// lint: hot-path` functions; always recorded, filtered
        // at rule time).
        if matches!(t.kind, Tok::Open(b'['))
            && k > 0
            && matches!(
                toks[k - 1].kind,
                Tok::Ident | Tok::Close(b'(') | Tok::Close(b'[')
            )
        {
            def.sinks.push(Sink {
                what: "index[]",
                line: t.line,
            });
        }

        k += 1;
    }
}

/// Counts top-level comma-separated arguments inside the tree opening
/// at `open` (an `Open('(')` index). Zero when the parens are empty.
fn count_args(toks: &[Token], open: usize) -> usize {
    let end = skip_tree_at(toks, open, toks.len());
    if end <= open + 2 {
        return 0; // `()`
    }
    let mut commas = 0usize;
    let mut depth = 0usize;
    for t in &toks[open + 1..end - 1] {
        match t.kind {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct(b',') if depth == 0 => commas += 1,
            _ => {}
        }
    }
    commas + 1
}

/// Extracts the dotted receiver chain ending at the `.` at index `dot`:
/// `self.state.lock()` → `self.state`. Only simple `ident(.ident)*`
/// chains resolve; anything else (calls, indexing, literals) is opaque.
fn receiver_chain(src: &str, toks: &[Token], dot: usize) -> Option<String> {
    let mut names: Vec<&str> = Vec::new();
    let mut k = dot; // at `.`
    loop {
        let prev = k.checked_sub(1)?;
        let t = toks.get(prev)?;
        if t.kind != Tok::Ident {
            return None;
        }
        names.push(t.text(src));
        let Some(before) = prev.checked_sub(1).and_then(|p| toks.get(p)) else {
            break;
        };
        if before.kind == Tok::Punct(b'.') {
            k = prev - 1;
            continue;
        }
        // A path separator (`Ordering::Relaxed.foo`) or anything else
        // ends the chain; `&` and friends are fine chain starts.
        break;
    }
    names.reverse();
    if names.is_empty() || KEYWORDS_NOT_CALLS.contains(&names[0]) {
        return None;
    }
    Some(names.join("."))
}

/// `Ordering::X` idents inside the call tree opening at `open`.
fn collect_orderings(src: &str, toks: &[Token], open: usize) -> Vec<String> {
    let end = skip_tree_at(toks, open, toks.len());
    let mut out = Vec::new();
    let mut k = open;
    while k + 2 < end {
        if toks[k].kind == Tok::Ident
            && toks[k].text(src) == "Ordering"
            && toks[k + 1].kind == Tok::PathSep
            && toks[k + 2].kind == Tok::Ident
        {
            out.push(toks[k + 2].text(src).to_string());
            k += 3;
            continue;
        }
        k += 1;
    }
    out
}

/// Detects `let NAME = Arc::clone(&CHAIN)` / `let NAME = CHAIN.clone()`
/// at the `let` at index `k`; returns the aliased chain.
fn alias_target(src: &str, toks: &[Token], k: usize) -> Option<String> {
    // Find `=` within the statement.
    let mut j = k;
    let mut eq = None;
    while j < toks.len() && j < k + 8 {
        if toks[j].kind == Tok::Punct(b'=') {
            eq = Some(j);
            break;
        }
        if toks[j].kind == Tok::Punct(b';') {
            return None;
        }
        j += 1;
    }
    let eq = eq?;
    // Arc::clone(&chain) | chain.clone()
    let t = |i: usize| toks.get(i);
    if t(eq + 1).is_some_and(|x| x.kind == Tok::Ident && x.text(src) == "Arc")
        && t(eq + 2).is_some_and(|x| x.kind == Tok::PathSep)
        && t(eq + 3).is_some_and(|x| x.kind == Tok::Ident && x.text(src) == "clone")
        && t(eq + 4).is_some_and(|x| x.kind == Tok::Open(b'('))
    {
        let end = skip_tree_at(toks, eq + 4, toks.len());
        let mut names = Vec::new();
        for tok in &toks[eq + 5..end.saturating_sub(1)] {
            match tok.kind {
                Tok::Ident => names.push(tok.text(src)),
                Tok::Punct(b'&') | Tok::Punct(b'.') => {}
                _ => return None,
            }
        }
        if names.is_empty() {
            return None;
        }
        return Some(names.join("."));
    }
    // chain.clone()
    let mut j = eq + 1;
    let mut names = Vec::new();
    while let Some(tok) = t(j) {
        match tok.kind {
            Tok::Ident if tok.text(src) == "clone" && names.is_empty() => return None,
            Tok::Ident => {
                names.push(tok.text(src));
                j += 1;
            }
            Tok::Punct(b'.') => {
                if t(j + 1).is_some_and(|x| x.kind == Tok::Ident && x.text(src) == "clone")
                    && t(j + 2).is_some_and(|x| x.kind == Tok::Open(b'('))
                    && t(j + 3).is_some_and(|x| x.kind == Tok::Close(b'('))
                    && t(j + 4).is_none_or(|x| x.kind == Tok::Punct(b';'))
                {
                    if names.is_empty() {
                        return None;
                    }
                    return Some(names.join("."));
                }
                j += 1;
            }
            Tok::Punct(b'&') => j += 1,
            _ => return None,
        }
    }
    None
}

/// Resolves a chain's first segment through the alias map.
fn resolve_alias(aliases: &[(String, String)], chain: &str) -> String {
    let mut parts: Vec<&str> = chain.split('.').collect();
    if let Some((_, target)) = aliases.iter().rev().find(|(n, _)| n == parts[0]) {
        let mut resolved: Vec<&str> = target.split('.').collect();
        resolved.extend(parts.drain(1..));
        return resolved.join(".");
    }
    chain.to_string()
}
