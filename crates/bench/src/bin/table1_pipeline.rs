//! Table I: per-stage cost of the framework, Algorithm 1 vs Algorithm 2.
//!
//! Runs the full five-stage pipeline on the LiveJournal profile at s = 8
//! with both the HiPC'21 set-intersection algorithm (Algorithm 1) and the
//! paper's hashmap algorithm (Algorithm 2), printing per-stage times, the
//! total speedup, and the set-intersection counts (Algorithm 2 performs
//! zero — the paper's headline row).
//!
//! `cargo run -p hyperline-bench --release --bin table1_pipeline`
//! Options: `--profile=LiveJournal --s=8 --seed=42`

use hyperline_bench::{arg, fmt_speedup, print_header};
use hyperline_gen::Profile;
use hyperline_slinegraph::{run_pipeline, Algorithm, PipelineConfig, Strategy};
use hyperline_util::table::{group_thousands, Table};
use hyperline_util::timer::fmt_duration;

fn main() {
    print_header("Table I: per-stage cost of the high-order line graph framework");
    let profile_name: String = arg("profile", "LiveJournal".to_string());
    let profile = Profile::from_name(&profile_name).expect("unknown profile");
    let s: u32 = arg("s", 8);
    let seed: u64 = arg("seed", 42);

    let h = profile.generate(seed);
    println!(
        "dataset: {} ({} vertices, {} edges), s = {s}\n",
        profile.name(),
        h.num_vertices(),
        h.num_edges()
    );

    // Both algorithms run with their best strategy from Figure 7 (blocked
    // + relabel-ascending), like the paper's Table I column pairing.
    let strategy = Strategy::default().with_relabel(hyperline_hypergraph::RelabelOrder::Ascending);
    let configs = [
        ("Algorithm in [29]", Algorithm::Algo1),
        ("our method", Algorithm::Algo2),
    ];

    let mut runs = Vec::new();
    for (label, algorithm) in configs {
        let config = PipelineConfig {
            s,
            algorithm,
            strategy,
            ..PipelineConfig::new(s)
        };
        let run = run_pipeline(&h, &config);
        runs.push((label, run));
    }

    let mut table = Table::new(["Stage", runs[0].0, runs[1].0]);
    for stage in [
        "preprocessing",
        "s-overlap",
        "postprocess",
        "squeeze",
        "s-connected-components",
    ] {
        table.row([
            stage.to_string(),
            fmt_duration(runs[0].1.times.get(stage).unwrap()),
            fmt_duration(runs[1].1.times.get(stage).unwrap()),
        ]);
    }
    let totals: Vec<f64> = runs
        .iter()
        .map(|(_, r)| r.times.total().as_secs_f64())
        .collect();
    table.row([
        "total time".to_string(),
        fmt_duration(runs[0].1.times.total()),
        fmt_duration(runs[1].1.times.total()),
    ]);
    table.row([
        "speedup".to_string(),
        "1x".to_string(),
        fmt_speedup(totals[0] / totals[1]),
    ]);
    table.row([
        "#set intersections".to_string(),
        group_thousands(runs[0].1.stats.total().set_intersections),
        group_thousands(runs[1].1.stats.total().set_intersections),
    ]);
    table.print();

    let (e1, e2) = (&runs[0].1.line_graph.edges, &runs[1].1.line_graph.edges);
    assert_eq!(e1, e2, "algorithms must produce identical s-line graphs");
    println!(
        "\nboth algorithms produced the same {}-line graph: {} edges, {} components",
        s,
        e2.len(),
        runs[1].1.components.as_ref().unwrap().len()
    );
}
