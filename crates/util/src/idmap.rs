//! Dense re-mapping of sparse ID spaces ("ID squeezing").
//!
//! Stage 4 of the paper's framework: after s-filtration most hyperedge IDs
//! no longer appear in the s-line graph, so the ID space is hypersparse.
//! [`IdSqueezer`] remaps the surviving IDs to a contiguous `0..k` range and
//! remembers the inverse mapping so metric results can be reported against
//! original IDs.

use crate::fxhash::FxHashMap;

/// Builds and applies a dense remapping `original ID -> squeezed ID`.
///
/// Squeezed IDs are assigned in ascending order of original ID, so the
/// relative order of surviving IDs is preserved (this keeps downstream
/// CSR construction deterministic).
#[derive(Debug, Clone, Default)]
pub struct IdSqueezer {
    forward: FxHashMap<u32, u32>,
    inverse: Vec<u32>,
}

impl IdSqueezer {
    /// Builds a squeezer from the set of surviving original IDs.
    /// Duplicates are allowed and ignored.
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        let mut unique: Vec<u32> = ids.into_iter().collect();
        unique.sort_unstable();
        unique.dedup();
        let forward = unique
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        Self {
            forward,
            inverse: unique,
        }
    }

    /// Builds a squeezer from the endpoint IDs of an edge list.
    pub fn from_edges(edges: &[(u32, u32)]) -> Self {
        Self::from_ids(edges.iter().flat_map(|&(a, b)| [a, b]))
    }

    /// Number of surviving (squeezed) IDs.
    pub fn len(&self) -> usize {
        self.inverse.len()
    }

    /// True if no IDs survive.
    pub fn is_empty(&self) -> bool {
        self.inverse.is_empty()
    }

    /// Maps an original ID to its squeezed ID, if it survived.
    #[inline]
    pub fn squeeze(&self, original: u32) -> Option<u32> {
        self.forward.get(&original).copied()
    }

    /// Maps a squeezed ID back to its original ID.
    ///
    /// # Panics
    /// Panics if `squeezed` is out of range.
    #[inline]
    pub fn unsqueeze(&self, squeezed: u32) -> u32 {
        self.inverse[squeezed as usize]
    }

    /// Remaps an edge list in place. Every endpoint must be a surviving ID
    /// (which holds by construction when built via [`Self::from_edges`]).
    pub fn squeeze_edges(&self, edges: &mut [(u32, u32)]) {
        for (a, b) in edges.iter_mut() {
            *a = self.forward[a];
            *b = self.forward[b];
        }
    }

    /// The full inverse mapping: `inverse()[squeezed] == original`.
    pub fn inverse(&self) -> &[u32] {
        &self.inverse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squeeze_preserves_order() {
        let s = IdSqueezer::from_ids([100, 5, 42, 5, 100]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.squeeze(5), Some(0));
        assert_eq!(s.squeeze(42), Some(1));
        assert_eq!(s.squeeze(100), Some(2));
        assert_eq!(s.squeeze(7), None);
    }

    #[test]
    fn roundtrip() {
        let ids = [9u32, 3, 77, 1024];
        let s = IdSqueezer::from_ids(ids.iter().copied());
        for &id in &ids {
            let sq = s.squeeze(id).unwrap();
            assert_eq!(s.unsqueeze(sq), id);
        }
    }

    #[test]
    fn from_edges_and_remap() {
        let mut edges = vec![(10u32, 20u32), (20, 30), (10, 30)];
        let s = IdSqueezer::from_edges(&edges);
        assert_eq!(s.len(), 3);
        s.squeeze_edges(&mut edges);
        assert_eq!(edges, vec![(0, 1), (1, 2), (0, 2)]);
        assert_eq!(s.inverse(), &[10, 20, 30]);
    }

    #[test]
    fn empty() {
        let s = IdSqueezer::from_ids(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn hypersparse_space_compacts() {
        // IDs spread across a huge range squeeze to a tiny dense range.
        let s = IdSqueezer::from_ids([0u32, 1_000_000, 4_000_000_000]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.squeeze(4_000_000_000), Some(2));
    }
}
