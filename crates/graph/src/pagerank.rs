//! PageRank by power iteration.
//!
//! Used for the paper's Table II experiment: ranking "diseases" by
//! PageRank score on the clique expansion (`s = 1`) versus higher-order
//! s-clique graphs (`s = 10, 100`) and comparing the top-k overlap.

use crate::graph::Graph;
use hyperline_util::parallel::par_for_each_indexed_mut;

/// Options for the PageRank iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Damping factor (probability of following an edge).
    pub damping: f64,
    /// L1 convergence tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// Computes PageRank scores on an undirected graph (each edge acts as two
/// directed arcs). Scores sum to 1. Dangling (isolated) vertices
/// redistribute their mass uniformly.
pub fn pagerank(g: &Graph, opts: PageRankOptions) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..opts.max_iterations {
        let dangling_mass: f64 = (0..n)
            .filter(|&v| g.degree(v as u32) == 0)
            .map(|v| rank[v])
            .sum();
        let base = (1.0 - opts.damping) * uniform + opts.damping * dangling_mass * uniform;
        par_for_each_indexed_mut(&mut next, |v, slot| {
            let incoming: f64 = g
                .neighbors(v as u32)
                .iter()
                .map(|&u| rank[u as usize] / g.degree(u) as f64)
                .sum();
            *slot = base + opts.damping * incoming;
        });
        let diff: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if diff < opts.tolerance {
            break;
        }
    }
    rank
}

/// Ranks vertices by score descending; returns `(vertex, score, rank)`
/// where rank is 1-based and ties share order by vertex ID. NaN-safe:
/// scores compare under [`f64::total_cmp`] (a NaN score ranks ahead of
/// `+∞` instead of panicking the sort).
pub fn rank_order(scores: &[f64]) -> Vec<(u32, f64, usize)> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    idx.into_iter()
        .enumerate()
        .map(|(i, v)| (v, scores[v as usize], i + 1))
        .collect()
}

/// Score percentile of each vertex: fraction of vertices with a strictly
/// lower score, as a percentage. The paper's Table II reports these.
pub fn score_percentiles(scores: &[f64]) -> Vec<f64> {
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(f64::total_cmp);
    scores
        .iter()
        .map(|&s| {
            let below = sorted.partition_point(|&x| x < s);
            100.0 * below as f64 / n as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_one() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let pr = pagerank(&g, PageRankOptions::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&g, PageRankOptions::default());
        for &p in &pr {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn star_center_ranks_first() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let pr = pagerank(&g, PageRankOptions::default());
        let order = rank_order(&pr);
        assert_eq!(order[0].0, 0);
        assert_eq!(order[0].2, 1);
        assert!(pr[0] > pr[1]);
        // Leaves are symmetric.
        for leaf in 2..5 {
            assert!((pr[1] - pr[leaf]).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_vertices_keep_total_mass() {
        let g = Graph::from_edges(4, &[(0, 1)]); // 2 and 3 isolated
        let pr = pagerank(&g, PageRankOptions::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pr[0] > pr[2], "connected vertices outrank isolated ones");
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert!(pagerank(&g, PageRankOptions::default()).is_empty());
        assert!(score_percentiles(&[]).is_empty());
    }

    #[test]
    fn rank_order_ties_by_id() {
        let order = rank_order(&[0.3, 0.5, 0.3]);
        assert_eq!(order[0], (1, 0.5, 1));
        assert_eq!(order[1].0, 0);
        assert_eq!(order[2].0, 2);
    }

    #[test]
    fn nan_scores_rank_without_panicking() {
        // Regression: partial_cmp().unwrap() used to panic here.
        let order = rank_order(&[0.3, f64::NAN, 0.5]);
        assert_eq!(order.len(), 3);
        // total_cmp places NaN above +inf: it ranks first, deterministically.
        assert_eq!(order[0].0, 1);
        assert!(order[0].1.is_nan());
        assert_eq!(order[1], (2, 0.5, 2));
        assert_eq!(order[2], (0, 0.3, 3));
        let p = score_percentiles(&[0.1, f64::NAN, 0.2]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn percentiles_match_definition() {
        let p = score_percentiles(&[0.1, 0.4, 0.2, 0.3]);
        assert_eq!(p, vec![0.0, 75.0, 25.0, 50.0]);
    }

    #[test]
    fn converges_under_loose_cap() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tight = pagerank(
            &g,
            PageRankOptions {
                max_iterations: 500,
                ..Default::default()
            },
        );
        let loose = pagerank(
            &g,
            PageRankOptions {
                max_iterations: 5000,
                ..Default::default()
            },
        );
        for (a, b) in tight.iter().zip(&loose) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}
