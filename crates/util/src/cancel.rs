//! Request-lifecycle cancellation: deadline tokens, an ambient
//! per-thread token, and the watchdog timer thread that arms deadlines.
//!
//! The server gives every request a bounded lifecycle:
//!
//! * [`CancelToken`] — a shared advisory flag polled by pipeline stages
//!   and kernel chunk loops. The poll is a single `Relaxed` atomic load,
//!   so kernels stay clock-free (lint rule HL004): all clocks live here
//!   and in the watchdog, never in kernel crates. The token is
//!   *single-flight aware*: it counts **interest** — the flight leader
//!   plus every waiter holds one registration, and the token only trips
//!   when every registrant has given up or expired. A leader with live
//!   waiters keeps computing even after its own deadline passes.
//! * [`Deadline`] — RAII handle for one request's deadline, armed on a
//!   [`Watchdog`]. At expiry the watchdog marks the request expired and
//!   releases the interest the request attached; dropping the handle
//!   first (request finished) disarms the entry.
//! * [`Watchdog`] — one timer thread per server, draining a binary heap
//!   of pending expirations via `Condvar::wait_timeout`.
//! * [`checkpoint`] — the coordinator-side cancellation point: when the
//!   ambient token has tripped it panics with the [`Cancelled`] payload,
//!   which the single-flight cache's `catch_unwind` converts into the
//!   [`CANCELLED`] sentinel error (mapped to a 504 by the server, never
//!   negative-cached). Worker loops never panic — they only poll the
//!   flag and exit early; the coordinator owns the unwind.
//!
//! The ambient token is a thread-local set by [`with_token`];
//! [`crate::parallel::scope_workers`] re-propagates it into spawned
//! workers the same way it propagates the telemetry span context.

use crate::sync::Arc;
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sentinel error string a cancelled flight resolves to. The server
/// maps exactly this string to `504 Gateway Timeout` and the cache
/// never negative-caches it (the *next* request should recompute).
pub const CANCELLED: &str = "request deadline exceeded";

/// Panic payload thrown by [`checkpoint`]. The single-flight cache's
/// `catch_unwind` downcasts this before the generic panic arms so a
/// cancellation is reported as [`CANCELLED`], not as a crash.
pub struct Cancelled;

struct TokenInner {
    /// Tripped when interest drains to zero (or `cancel()` forces it).
    /// Advisory flag: all accesses are `Relaxed` — pollers act on it
    /// eventually, nothing synchronizes through it.
    cancelled: AtomicBool,
    /// Number of registered participants still wanting the result.
    interest: AtomicUsize,
}

/// A shared cancellation flag with interest counting.
///
/// Cloning shares the flag. Created with zero interest; each
/// participant calls [`register_interest`](CancelToken::register_interest)
/// and something (normally the watchdog at deadline expiry) later calls
/// [`release_interest`](CancelToken::release_interest). The drop from
/// one registration to zero trips the flag — so a token with a
/// no-deadline participant never trips, and a flight leader is only
/// cancelled when *all* its waiters have given up.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh, untripped token with zero registered interest.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                interest: AtomicUsize::new(0),
            }),
        }
    }

    /// True once the token has tripped. A single `Relaxed` load — safe
    /// to call from kernel inner loops.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Adds one participant keeping the computation alive.
    pub fn register_interest(&self) {
        self.inner.interest.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes one participant; the release that drains interest to
    /// zero trips the token.
    pub fn release_interest(&self) {
        if self.inner.interest.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Participants currently registered (diagnostics/tests).
    pub fn interest(&self) -> usize {
        self.inner.interest.load(Ordering::Relaxed)
    }

    /// Trips the token unconditionally, regardless of interest.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("interest", &self.interest())
            .finish()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Runs `f` with `token` as the thread's ambient cancellation token,
/// restoring the previous ambient token afterwards (panic-safe).
pub fn with_token<T>(token: Option<CancelToken>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), token));
    let _restore = Restore(prev);
    f()
}

/// The calling thread's ambient cancellation token, if any.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when the ambient token exists and has tripped.
#[inline]
pub fn cancelled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|t| t.is_cancelled()))
}

/// A hoisted handle for hot loops: resolves the thread-local once, then
/// each poll is a plain atomic load (or a constant `false` when no
/// token is ambient).
pub struct Poll(Option<CancelToken>);

impl Poll {
    /// Captures the calling thread's ambient token.
    pub fn capture() -> Self {
        Poll(current())
    }

    /// True when the captured token has tripped.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.as_ref().is_some_and(|t| t.is_cancelled())
    }
}

/// Coordinator-side cancellation point: panics with [`Cancelled`] when
/// the ambient token has tripped. Call this only on a flight-owner
/// thread running under the single-flight cache's `catch_unwind` (or a
/// test harness that catches it) — worker threads poll the flag and
/// exit early instead of unwinding.
pub fn checkpoint() {
    if cancelled() {
        std::panic::panic_any(Cancelled);
    }
}

// ---------------------------------------------------------------------
// Watchdog: the timer thread that arms per-request deadlines.
// ---------------------------------------------------------------------

/// One registered interest, releasable exactly once — by the watchdog
/// at expiry, by a timed-out waiter giving up, or on `Deadline` drop.
struct InterestCell {
    token: CancelToken,
    released: AtomicBool,
}

impl InterestCell {
    fn release(&self) {
        if !self.released.swap(true, Ordering::Relaxed) {
            self.token.release_interest();
        }
    }
}

struct DeadlineState {
    /// Wall-clock expiry instant (also serves `remaining()` queries).
    at: Instant,
    /// Set by the watchdog when the deadline fires.
    expired: AtomicBool,
    /// Set by `Deadline::drop` so a completed request's stale heap
    /// entry is skipped instead of fired.
    disarmed: AtomicBool,
    /// The flight interests this request holds (one per flight it
    /// joined — e.g. metric tier and artifact tier), released at expiry.
    attached: Mutex<Vec<Arc<InterestCell>>>,
}

impl DeadlineState {
    fn fire(&self) {
        if self.disarmed.load(Ordering::Relaxed) {
            return;
        }
        self.expired.store(true, Ordering::Relaxed);
        let cells = std::mem::take(&mut *self.attached.lock().unwrap_or_else(|p| p.into_inner()));
        for cell in cells {
            cell.release();
        }
    }
}

/// RAII handle for one armed deadline. Dropping it disarms the watchdog
/// entry and releases any still-attached flight interest (idempotent —
/// harmless after the flight completed).
pub struct Deadline {
    state: Arc<DeadlineState>,
}

impl Deadline {
    /// True once the watchdog fired this deadline.
    pub fn expired(&self) -> bool {
        self.state.expired.load(Ordering::Relaxed)
    }

    /// Time left before expiry (zero once passed).
    pub fn remaining(&self) -> Duration {
        self.state.at.saturating_duration_since(Instant::now())
    }

    /// The absolute expiry instant.
    pub fn at(&self) -> Instant {
        self.state.at
    }

    /// Registers this request's interest in `token` and arranges for
    /// the watchdog to release it at expiry. The returned guard
    /// releases the same interest when dropped (whichever happens first
    /// wins; the release is idempotent), so a request that completes —
    /// or a waiter that gives up — frees its hold on the flight without
    /// waiting for the watchdog sweep.
    pub fn attach(&self, token: &CancelToken) -> InterestGuard {
        token.register_interest();
        let cell = Arc::new(InterestCell {
            token: token.clone(),
            released: AtomicBool::new(false),
        });
        self.state
            .attached
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&cell));
        // If the deadline fired between arming and this attach, the
        // watchdog will not revisit the entry: release immediately.
        if self.expired() {
            cell.release();
        }
        InterestGuard { cell }
    }

    /// Explicitly gives up: marks the request expired and releases the
    /// attached interest now instead of waiting for the watchdog sweep.
    pub fn give_up(&self) {
        self.state.fire();
    }
}

impl Drop for Deadline {
    fn drop(&mut self) {
        self.state.disarmed.store(true, Ordering::Relaxed);
        let cells = std::mem::take(
            &mut *self
                .state
                .attached
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        );
        for cell in cells {
            cell.release();
        }
    }
}

/// RAII handle for one [`Deadline::attach`] registration: dropping it
/// releases the interest if the watchdog has not already done so.
pub struct InterestGuard {
    cell: Arc<InterestCell>,
}

impl InterestGuard {
    /// Releases the interest now (idempotent with expiry and drop).
    pub fn release(&self) {
        self.cell.release();
    }
}

impl Drop for InterestGuard {
    fn drop(&mut self) {
        self.cell.release();
    }
}

/// Heap entry ordered soonest-first (BinaryHeap is a max-heap, so the
/// ordering is reversed).
struct Armed {
    at: Instant,
    state: Arc<DeadlineState>,
}

impl PartialEq for Armed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for Armed {}
impl PartialOrd for Armed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Armed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at)
    }
}

struct WatchdogInner {
    queue: Mutex<BinaryHeap<Armed>>,
    wake: Condvar,
    shutdown: AtomicBool,
    expired_total: AtomicU64,
}

/// The per-server timer thread arming request deadlines. One thread
/// serves every request: arming pushes onto a shared heap and wakes it;
/// the thread sleeps until the earliest pending expiry.
pub struct Watchdog {
    inner: Arc<WatchdogInner>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Silences the default panic hook for [`Cancelled`] unwinds: deadline
/// cancellation is control flow caught by the single-flight engine, not
/// a crash, and must not print a thread-panic backtrace on every
/// expiry. Every other panic payload still reaches the previously
/// installed hook. Installed once per process, the first time a
/// [`Watchdog`] is created (i.e. before any deadline can exist).
fn install_quiet_cancel_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Cancelled>().is_none() {
                previous(info);
            }
        }));
    });
}

impl Watchdog {
    /// Spawns the watchdog thread.
    pub fn new() -> Self {
        install_quiet_cancel_hook();
        let inner = Arc::new(WatchdogInner {
            queue: Mutex::new(BinaryHeap::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            expired_total: AtomicU64::new(0),
        });
        let run = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("hyperline-watchdog".to_string())
            .spawn(move || Self::run(&run))
            .ok();
        Self {
            inner,
            handle: Mutex::new(handle),
        }
    }

    fn run(inner: &WatchdogInner) {
        let mut queue = inner.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if inner.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let now = Instant::now();
            // Collect due entries, then fire them outside the queue
            // lock (fire takes the per-deadline attachment lock).
            let mut due = Vec::new();
            while queue.peek().is_some_and(|top| top.at <= now) {
                if let Some(armed) = queue.pop() {
                    due.push(armed.state);
                }
            }
            if !due.is_empty() {
                drop(queue);
                for state in due {
                    if !state.disarmed.load(Ordering::Relaxed) {
                        inner.expired_total.fetch_add(1, Ordering::Relaxed);
                    }
                    state.fire();
                }
                queue = inner.queue.lock().unwrap_or_else(|p| p.into_inner());
                continue;
            }
            match queue
                .peek()
                .map(|top| top.at.saturating_duration_since(now))
            {
                None => {
                    queue = inner.wake.wait(queue).unwrap_or_else(|p| p.into_inner());
                }
                Some(sleep) => {
                    let (g, _) = inner
                        .wake
                        .wait_timeout(queue, sleep)
                        .unwrap_or_else(|p| p.into_inner());
                    queue = g;
                }
            }
        }
    }

    /// Arms a deadline `after` from now and returns its RAII handle.
    pub fn arm(&self, after: Duration) -> Deadline {
        let state = Arc::new(DeadlineState {
            at: Instant::now() + after,
            expired: AtomicBool::new(false),
            disarmed: AtomicBool::new(false),
            attached: Mutex::new(Vec::new()),
        });
        {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push(Armed {
                at: state.at,
                state: Arc::clone(&state),
            });
        }
        self.inner.wake.notify_one();
        Deadline { state }
    }

    /// Deadlines that fired while still armed, over the watchdog's
    /// lifetime.
    pub fn expired_total(&self) -> u64 {
        self.inner.expired_total.load(Ordering::Relaxed)
    }

    /// Stops and joins the timer thread. Outstanding `Deadline` handles
    /// stay valid but will no longer fire.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.wake.notify_all();
        let handle = self.handle.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_when_interest_drains() {
        let t = CancelToken::new();
        t.register_interest();
        t.register_interest();
        assert!(!t.is_cancelled());
        t.release_interest();
        assert!(!t.is_cancelled(), "one registrant still live");
        t.release_interest();
        assert!(t.is_cancelled(), "last release trips the token");
    }

    #[test]
    fn ambient_token_scoping() {
        assert!(current().is_none());
        assert!(!cancelled());
        let t = CancelToken::new();
        with_token(Some(t.clone()), || {
            assert!(current().is_some());
            assert!(!cancelled());
            t.cancel();
            assert!(cancelled());
            with_token(None, || assert!(!cancelled()));
            assert!(cancelled(), "inner scope restored");
        });
        assert!(current().is_none(), "outer scope restored");
    }

    #[test]
    fn checkpoint_panics_with_cancelled_payload() {
        let t = CancelToken::new();
        t.cancel();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_token(Some(t), checkpoint)
        }));
        let payload = r.expect_err("checkpoint must unwind");
        assert!(payload.downcast_ref::<Cancelled>().is_some());
    }

    #[test]
    fn watchdog_fires_and_releases_interest() {
        let wd = Watchdog::new();
        let token = CancelToken::new();
        let dl = wd.arm(Duration::from_millis(20));
        let _keep = dl.attach(&token);
        assert!(!dl.expired());
        assert!(!token.is_cancelled());
        let start = Instant::now();
        while !dl.expired() && start.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(dl.expired(), "watchdog must fire within the bound");
        assert!(token.is_cancelled(), "sole registrant expired -> tripped");
        assert_eq!(wd.expired_total(), 1);
        wd.shutdown();
    }

    #[test]
    fn dropped_deadline_is_disarmed() {
        let wd = Watchdog::new();
        let token = CancelToken::new();
        {
            let dl = wd.arm(Duration::from_millis(30));
            let _keep = dl.attach(&token);
        } // dropped before expiry: disarms + releases its interest
        assert!(token.is_cancelled(), "drop released the only registration");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(wd.expired_total(), 0, "disarmed entry must not count");
        wd.shutdown();
    }

    #[test]
    fn leader_survives_while_other_interest_lives() {
        let wd = Watchdog::new();
        let token = CancelToken::new();
        token.register_interest(); // a waiter with no deadline
        let dl = wd.arm(Duration::from_millis(10));
        let _keep = dl.attach(&token);
        let start = Instant::now();
        while !dl.expired() && start.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(dl.expired());
        assert!(
            !token.is_cancelled(),
            "live waiter keeps the flight running"
        );
        token.release_interest();
        assert!(token.is_cancelled());
        wd.shutdown();
    }

    #[test]
    fn give_up_is_idempotent_with_watchdog() {
        let wd = Watchdog::new();
        let token = CancelToken::new();
        token.register_interest(); // second registrant
        let dl = wd.arm(Duration::from_millis(10));
        let _keep = dl.attach(&token);
        dl.give_up();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            token.interest(),
            1,
            "give_up + watchdog release exactly once"
        );
        wd.shutdown();
    }
}
