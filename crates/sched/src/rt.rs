//! The scheduler runtime: one instance per explored schedule.
//!
//! Exactly one model thread runs at a time. Every shim operation enters
//! the runtime, parks the calling OS thread, and lets the scheduler pick
//! who continues — the pick is a recorded *choice*, and the sequence of
//! choices is the schedule the explorer enumerates. Weak-memory effects
//! are modelled with per-location store histories + vector clocks; which
//! store a relaxed load returns is a choice too.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Per-OS-thread model context: set for the lifetime of a model thread,
/// absent everywhere else (which is what makes the shims fall back to
/// real std behaviour outside a run).
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) rt: Arc<Runtime>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Payload of the internal unwind used to tear down model threads after
/// a failure. The thread wrapper swallows it; the panic hook mutes it.
pub(crate) struct SchedAbort;

/// Signals "the run was aborted" out of a runtime entry point so the
/// shim can unwind *outside* the runtime lock.
pub(crate) struct Aborted;

/// Monotonic epoch distinguishing runs, so shim objects (including
/// `static`s) can lazily re-register per run.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// A vector clock: `clock[tid]` counts events of thread `tid` known to
/// the owner. Missing entries are zero.
pub(crate) type Vc = Vec<u64>;

fn vc_join(a: &mut Vc, b: &Vc) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = (*x).max(*y);
    }
}

fn vc_leq(a: &Vc, b: &Vc) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &x)| x == 0 || b.get(i).copied().unwrap_or(0) >= x)
}

/// One write to an atomic location.
struct Store {
    value: u64,
    /// Synchronization message: joined into an acquire reader's clock.
    /// Empty for stores that neither release nor continue a release
    /// sequence.
    msg: Vc,
    /// The writer's full clock at the store — used for coherence: a
    /// reader that already knows about this store can't read older ones.
    hb: Vc,
}

struct LocState {
    /// Absolute sequence number of `stores[0]`.
    base: usize,
    stores: VecDeque<Store>,
    /// Per-thread coherence floor: lowest absolute store index the
    /// thread may still read.
    floors: Vec<usize>,
}

struct MutexSt {
    locked_by: Option<usize>,
    /// Clock released by the last unlock; joined on acquire.
    release: Vc,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    Running,
    /// Blocked trying to lock the mutex.
    MutexWait(usize),
    /// Blocked in `Condvar::wait` until notified.
    CvWait {
        cv: usize,
    },
    /// Blocked joining another model thread.
    JoinWait(usize),
    Finished,
}

struct ThreadSt {
    status: Status,
    clock: Vc,
}

pub(crate) struct RtState {
    threads: Vec<ThreadSt>,
    current: usize,
    locations: Vec<LocState>,
    mutexes: Vec<MutexSt>,
    condvars: usize,
    /// Forced choices for this run (the DFS prefix or a replayed
    /// schedule); past its end the first option is taken.
    prefix: Vec<u32>,
    /// Every non-trivial choice made this run, as `(taken, options)`.
    recorded: Vec<(u32, u32)>,
    pos: usize,
    preemptions_left: usize,
    steps_left: usize,
    /// Seeded RNG state; `Some` switches from DFS to random scheduling.
    random: Option<u64>,
    max_value_choices: usize,
    failure: Option<String>,
    abort: bool,
}

impl RtState {
    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }
}

/// One schedule run's shared scheduler state. Model threads and the
/// explorer park on `cv`.
pub(crate) struct Runtime {
    state: Mutex<RtState>,
    cv: Condvar,
    pub(crate) epoch: u64,
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn lock_state(m: &Mutex<RtState>) -> MutexGuard<'_, RtState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Runtime {
    pub(crate) fn new(
        prefix: Vec<u32>,
        random: Option<u64>,
        preemption_bound: usize,
        max_steps: usize,
        max_value_choices: usize,
    ) -> Arc<Runtime> {
        Arc::new(Runtime {
            state: Mutex::new(RtState {
                threads: Vec::new(),
                current: 0,
                locations: Vec::new(),
                mutexes: Vec::new(),
                condvars: 0,
                prefix,
                recorded: Vec::new(),
                pos: 0,
                preemptions_left: preemption_bound,
                steps_left: max_steps,
                random,
                max_value_choices: max_value_choices.max(1),
                failure: None,
                abort: false,
            }),
            cv: Condvar::new(),
            epoch: EPOCH.fetch_add(1, Ordering::Relaxed) + 1,
        })
    }

    // -- registration --------------------------------------------------

    /// Registers a new atomic location initialized to `value`.
    pub(crate) fn register_location(&self, value: u64) -> usize {
        let mut st = lock_state(&self.state);
        let nthreads = st.threads.len().max(1);
        st.locations.push(LocState {
            base: 0,
            stores: VecDeque::from([Store {
                value,
                msg: Vec::new(),
                hb: Vec::new(),
            }]),
            floors: vec![0; nthreads],
        });
        st.locations.len() - 1
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = lock_state(&self.state);
        st.mutexes.push(MutexSt {
            locked_by: None,
            release: Vec::new(),
        });
        st.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = lock_state(&self.state);
        st.condvars += 1;
        st.condvars - 1
    }

    // -- choices & scheduling ------------------------------------------

    fn choose(&self, st: &mut RtState, options: u32) -> u32 {
        if options <= 1 {
            return 0;
        }
        let taken = if let Some(rng) = st.random.as_mut() {
            (splitmix(rng) % options as u64) as u32
        } else if st.pos < st.prefix.len() {
            st.prefix[st.pos].min(options - 1)
        } else {
            0
        };
        st.recorded.push((taken, options));
        st.pos += 1;
        taken
    }

    fn fail_locked(&self, st: &mut RtState, message: &str) {
        if st.failure.is_none() {
            st.failure = Some(message.to_string());
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Picks the next thread to run. The caller has already set the
    /// current thread's status (Runnable to stay eligible, a blocked
    /// variant, or Finished).
    fn pick_next(&self, st: &mut RtState) {
        if st.steps_left == 0 {
            self.fail_locked(st, "schedule exceeded max_steps (livelock?)");
            return;
        }
        st.steps_left -= 1;
        let me = st.current;
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.all_finished() {
                self.cv.notify_all();
            } else {
                self.fail_locked(st, "deadlock: every live thread is blocked");
            }
            return;
        }
        let me_runnable = st.threads[me].status == Status::Runnable;
        // Continuing the current thread is option 0 (free); switching
        // away from a still-runnable thread costs a preemption. This is
        // the classic bounded-preemption reduction: most bugs need very
        // few forced switches, and it keeps the DFS tractable.
        let options: Vec<usize> = if me_runnable {
            if st.preemptions_left == 0 {
                vec![me]
            } else {
                std::iter::once(me)
                    .chain(runnable.iter().copied().filter(|&t| t != me))
                    .collect()
            }
        } else {
            runnable
        };
        let choice = self.choose(st, options.len() as u32);
        let next = options[choice as usize];
        if me_runnable && next != me {
            st.preemptions_left -= 1;
        }
        st.threads[next].status = Status::Running;
        st.current = next;
        self.cv.notify_all();
    }

    /// Parks the calling model thread until it is scheduled again (or
    /// the run aborts).
    fn park<'a>(
        &'a self,
        mut st: MutexGuard<'a, RtState>,
        me: usize,
    ) -> Result<MutexGuard<'a, RtState>, Aborted> {
        loop {
            if st.abort {
                return Err(Aborted);
            }
            if st.current == me && st.threads[me].status == Status::Running {
                return Ok(st);
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// One scheduling point: stay runnable, let the scheduler pick, park
    /// until picked.
    fn yield_point<'a>(
        &'a self,
        mut st: MutexGuard<'a, RtState>,
        me: usize,
    ) -> Result<MutexGuard<'a, RtState>, Aborted> {
        if st.abort {
            return Err(Aborted);
        }
        st.threads[me].status = Status::Runnable;
        self.pick_next(&mut st);
        self.park(st, me)
    }

    // -- atomics -------------------------------------------------------

    fn tick(st: &mut RtState, me: usize) {
        let clock = &mut st.threads[me].clock;
        if clock.len() <= me {
            clock.resize(me + 1, 0);
        }
        clock[me] += 1;
    }

    /// Absolute indices of the stores thread `me` may legally read:
    /// everything from its coherence floor up, minus stores already
    /// superseded by a store the thread knows happened (its clock covers
    /// the newer store's writer event).
    fn eligible(st: &RtState, loc: usize, me: usize) -> Vec<usize> {
        let l = &st.locations[loc];
        let clock = &st.threads[me].clock;
        let floor = l.floors.get(me).copied().unwrap_or(l.base).max(l.base);
        let mut out = Vec::new();
        let mut superseded = false;
        for k in (floor..l.base + l.stores.len()).rev() {
            let s = &l.stores[k - l.base];
            if !superseded {
                out.push(k);
            }
            if vc_leq(&s.hb, clock) {
                superseded = true;
            }
        }
        out // newest first
    }

    pub(crate) fn atomic_load(
        &self,
        me: usize,
        loc: usize,
        order: Ordering,
    ) -> Result<u64, Aborted> {
        let st = lock_state(&self.state);
        let mut st = self.yield_point(st, me)?;
        let newest_only = matches!(order, Ordering::SeqCst);
        let mut candidates = Self::eligible(&st, loc, me);
        if newest_only {
            candidates.truncate(1);
        } else {
            candidates.truncate(st.max_value_choices);
        }
        // Which store the load returns is itself explored: index 0 (the
        // newest) first, staler values on later branches.
        let pick = self.choose(&mut st, candidates.len() as u32) as usize;
        let abs = candidates[pick];
        let l = &st.locations[loc];
        let store_msg = l.stores[abs - l.base].msg.clone();
        let value = l.stores[abs - l.base].value;
        if matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        ) {
            vc_join(&mut st.threads[me].clock, &store_msg);
        }
        let l = &mut st.locations[loc];
        if l.floors.len() <= me {
            l.floors.resize(me + 1, l.base);
        }
        l.floors[me] = l.floors[me].max(abs);
        Ok(value)
    }

    /// Store, or read-modify-write when `rmw` is set (RMWs read the
    /// newest store — atomicity — and continue its release sequence).
    /// Returns the value read (the previous value).
    pub(crate) fn atomic_store(
        &self,
        me: usize,
        loc: usize,
        order: Ordering,
        rmw: Option<&mut dyn FnMut(u64) -> u64>,
        plain_value: u64,
    ) -> Result<u64, Aborted> {
        let st = lock_state(&self.state);
        let mut st = self.yield_point(st, me)?;
        Self::tick(&mut st, me);
        let releasing = matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        );
        let acquiring = matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        );
        let (prev_value, prev_msg) = {
            let newest = st.locations[loc]
                .stores
                .back()
                .expect("history never empty");
            (newest.value, newest.msg.clone())
        };
        let is_rmw = rmw.is_some();
        // The acquire half of an acquiring RMW happens before its release
        // half, so join the read store's message into our clock first.
        if acquiring && is_rmw && !prev_msg.is_empty() {
            vc_join(&mut st.threads[me].clock, &prev_msg);
        }
        let clock = st.threads[me].clock.clone();
        let (new_value, mut msg) = match rmw {
            Some(f) => {
                // A release sequence headed by a release store continues
                // through RMWs of any ordering (C11 §5.1.2.4-ish).
                (f(prev_value), prev_msg)
            }
            // A plain store starts a new modification; it does not
            // continue the previous release sequence.
            None => (plain_value, Vec::new()),
        };
        if releasing {
            vc_join(&mut msg, &clock);
        }
        let hb = clock;
        let l = &mut st.locations[loc];
        l.stores.push_back(Store {
            value: new_value,
            msg,
            hb,
        });
        let abs = l.base + l.stores.len() - 1;
        if l.floors.len() <= me {
            l.floors.resize(me + 1, l.base);
        }
        l.floors[me] = l.floors[me].max(abs);
        // Bound the history window (staleness the checker explores).
        if l.stores.len() > HISTORY {
            l.stores.pop_front();
            l.base += 1;
        }
        Ok(prev_value)
    }

    // -- mutexes -------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, loc: usize) -> Result<(), Aborted> {
        let st = lock_state(&self.state);
        let mut st = self.yield_point(st, me)?;
        loop {
            if st.mutexes[loc].locked_by.is_none() {
                st.mutexes[loc].locked_by = Some(me);
                let release = st.mutexes[loc].release.clone();
                vc_join(&mut st.threads[me].clock, &release);
                Self::tick(&mut st, me);
                return Ok(());
            }
            st.threads[me].status = Status::MutexWait(loc);
            self.pick_next(&mut st);
            st = self.park(st, me)?;
        }
    }

    pub(crate) fn mutex_unlock(&self, me: usize, loc: usize) {
        let mut st = lock_state(&self.state);
        if st.abort {
            // Teardown: just free the lock so other unwinding threads
            // can finish; no scheduling, no panicking (we may be inside
            // a Drop during unwind).
            st.mutexes[loc].locked_by = None;
            self.cv.notify_all();
            return;
        }
        Self::tick(&mut st, me);
        let clock = st.threads[me].clock.clone();
        let m = &mut st.mutexes[loc];
        m.locked_by = None;
        vc_join(&mut m.release, &clock);
        // Wake lock waiters; they re-contend when scheduled.
        for t in st.threads.iter_mut() {
            if t.status == Status::MutexWait(loc) {
                t.status = Status::Runnable;
            }
        }
        // The unlock itself is a scheduling point: a woken waiter may
        // grab the lock before we run again.
        if let Ok(st) = self.yield_point(st, me) {
            drop(st);
        }
    }

    // -- condvars ------------------------------------------------------

    /// Blocks on `cv`, releasing model-mutex `mutex` first. Returns when
    /// notified; the caller re-locks the mutex afterwards.
    pub(crate) fn condvar_wait(&self, me: usize, cv: usize, mutex: usize) -> Result<(), Aborted> {
        let mut st = lock_state(&self.state);
        if st.abort {
            return Err(Aborted);
        }
        // Release the mutex exactly like mutex_unlock (sans yield).
        Self::tick(&mut st, me);
        let clock = st.threads[me].clock.clone();
        let m = &mut st.mutexes[mutex];
        debug_assert_eq!(m.locked_by, Some(me), "condvar wait without the lock");
        m.locked_by = None;
        vc_join(&mut m.release, &clock);
        for t in st.threads.iter_mut() {
            if t.status == Status::MutexWait(mutex) {
                t.status = Status::Runnable;
            }
        }
        st.threads[me].status = Status::CvWait { cv };
        self.pick_next(&mut st);
        let st = self.park(st, me)?;
        drop(st);
        Ok(())
    }

    /// Wakes one waiter (a scheduler choice among them) or all.
    pub(crate) fn condvar_notify(&self, me: usize, cv: usize, all: bool) -> Result<(), Aborted> {
        let st = lock_state(&self.state);
        let mut st = self.yield_point(st, me)?;
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::CvWait { cv })
            .map(|(i, _)| i)
            .collect();
        if waiters.is_empty() {
            return Ok(());
        }
        if all {
            for w in waiters {
                st.threads[w].status = Status::Runnable;
            }
        } else {
            // Which waiter a notify_one wakes is nondeterministic.
            let pick = self.choose(&mut st, waiters.len() as u32) as usize;
            st.threads[waiters[pick]].status = Status::Runnable;
        }
        Ok(())
    }

    // -- threads -------------------------------------------------------

    /// Allocates the root model thread (id 0, immediately running).
    pub(crate) fn register_root(&self) -> usize {
        let mut st = lock_state(&self.state);
        debug_assert!(st.threads.is_empty());
        st.threads.push(ThreadSt {
            status: Status::Running,
            clock: vec![1],
        });
        st.current = 0;
        0
    }

    /// Allocates a child model thread inheriting the parent's clock.
    ///
    /// This is NOT a scheduling point: the caller must first actually
    /// spawn the child's OS thread and only then yield (via
    /// [`Runtime::yield_op`]) — otherwise the scheduler could pick a
    /// child that does not exist yet and park everyone forever. No
    /// other thread can be scheduled in between because the parent is
    /// the single running thread until its next runtime call.
    pub(crate) fn register_child(&self, parent: usize) -> Result<usize, Aborted> {
        let mut st = lock_state(&self.state);
        if st.abort {
            return Err(Aborted);
        }
        Self::tick(&mut st, parent);
        let mut clock = st.threads[parent].clock.clone();
        let tid = st.threads.len();
        if clock.len() <= tid {
            clock.resize(tid + 1, 0);
        }
        clock[tid] = 1;
        st.threads.push(ThreadSt {
            status: Status::Runnable,
            clock,
        });
        for l in st.locations.iter_mut() {
            let base = l.base;
            l.floors.resize(tid + 1, base);
        }
        Ok(tid)
    }

    /// Marks `me` finished (after its result slot is populated), records
    /// a failure if it panicked with anything but [`SchedAbort`], wakes
    /// joiners, and schedules the next thread.
    pub(crate) fn finish_thread(&self, me: usize, panic_message: Option<String>) {
        let mut st = lock_state(&self.state);
        st.threads[me].status = Status::Finished;
        if let Some(msg) = panic_message {
            self.fail_locked(&mut st, &msg);
        }
        for t in st.threads.iter_mut() {
            if t.status == Status::JoinWait(me) {
                t.status = Status::Runnable;
            }
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st);
    }

    /// A pure scheduling point (`thread::yield_now` / model `sleep`).
    pub(crate) fn yield_op(&self, me: usize) -> Result<(), Aborted> {
        let st = lock_state(&self.state);
        let st = self.yield_point(st, me)?;
        drop(st);
        Ok(())
    }

    /// First call a child model thread makes: park until the scheduler
    /// hands it the CPU for the first time.
    pub(crate) fn start_thread(&self, tid: usize) -> Result<(), Aborted> {
        let st = lock_state(&self.state);
        let st = self.park(st, tid)?;
        drop(st);
        Ok(())
    }

    pub(crate) fn join_thread(&self, me: usize, target: usize) -> Result<(), Aborted> {
        let st = lock_state(&self.state);
        let mut st = self.yield_point(st, me)?;
        while st.threads[target].status != Status::Finished {
            st.threads[me].status = Status::JoinWait(target);
            self.pick_next(&mut st);
            st = self.park(st, me)?;
        }
        let target_clock = st.threads[target].clock.clone();
        vc_join(&mut st.threads[me].clock, &target_clock);
        Ok(())
    }

    // -- explorer ------------------------------------------------------

    /// Blocks the (non-model) explorer thread until the run completes,
    /// returning the recorded schedule and any failure.
    pub(crate) fn wait_done(&self) -> (Vec<(u32, u32)>, Option<String>) {
        let mut st = lock_state(&self.state);
        while !st.all_finished() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        (st.recorded.clone(), st.failure.take())
    }
}

/// Stores kept per location; older stores age out (bounding how stale a
/// relaxed load can get — a window, like a store buffer).
const HISTORY: usize = 4;
