//! Figure 10: per-thread workload distribution of Algorithm 2.
//!
//! Runs the s-overlap stage on LiveJournal with 32 workers under the six
//! Algorithm-2 variants (blocked/cyclic × relabel none/asc/desc) and
//! reports the number of hyperedges visited in the innermost loop by each
//! worker — the exact metric of the paper's Figure 10. Expect blocked
//! without relabeling to be badly imbalanced and cyclic (or relabeled)
//! distributions to flatten the histogram.
//!
//! `cargo run -p hyperline-bench --release --bin fig10_workload`
//! Options: `--profile=LiveJournal --s=8 --workers=32 --seed=42 --full`

use hyperline_bench::{arg, flag, print_header};
use hyperline_gen::Profile;
use hyperline_hypergraph::{relabel_edges_by_degree, RelabelOrder};
use hyperline_slinegraph::{algo2_slinegraph, Partition, Strategy};
use hyperline_util::table::{human_count, Table};

fn main() {
    print_header("Figure 10: per-worker innermost-loop visits, Algorithm 2");
    let profile_name: String = arg("profile", "LiveJournal".to_string());
    let profile = Profile::from_name(&profile_name).expect("unknown profile");
    let s: u32 = arg("s", 8);
    let workers: usize = arg("workers", 32);
    let seed: u64 = arg("seed", 42);
    let full = flag("full");

    let h = profile.generate(seed);
    println!(
        "dataset: {} ({} edges), s = {s}, {workers} workers\n",
        profile.name(),
        h.num_edges()
    );

    let variants: [(&str, Partition, RelabelOrder); 6] = [
        ("2BN", Partition::Blocked, RelabelOrder::None),
        ("2CN", Partition::Cyclic, RelabelOrder::None),
        ("2BA", Partition::Blocked, RelabelOrder::Ascending),
        ("2CA", Partition::Cyclic, RelabelOrder::Ascending),
        ("2BD", Partition::Blocked, RelabelOrder::Descending),
        ("2CD", Partition::Cyclic, RelabelOrder::Descending),
    ];

    let mut table = Table::new(["variant", "min", "max", "mean", "max/mean", "CV"]);
    for (label, partition, relabel) in variants {
        let relabeled = relabel_edges_by_degree(&h, relabel);
        let strategy = Strategy::default()
            .with_partition(partition)
            .with_workers(workers);
        let result = algo2_slinegraph(&relabeled.hypergraph, s, &strategy);
        let summary = result.stats.visit_summary();
        table.row([
            label.to_string(),
            human_count(summary.min as u64),
            human_count(summary.max as u64),
            human_count(summary.mean as u64),
            format!("{:.2}", summary.imbalance()),
            format!("{:.3}", summary.cv()),
        ]);
        if full {
            let visits = result.stats.visits_per_worker();
            let rendered: Vec<String> = visits.iter().map(|&v| human_count(v)).collect();
            println!("{label}: [{}]", rendered.join(", "));
        }
    }
    if full {
        println!();
    }
    table.print();
    println!("\n(max/mean = 1.00 is perfect balance; blocked+none should be the most skewed)");
}
