//! Compressed sparse row (CSR) adjacency storage.
//!
//! Both directions of the hypergraph's bipartite incidence structure
//! (edge→vertices and vertex→edges) are stored as a [`Csr`]: an offsets
//! array into a flat neighbor array. Neighbor lists are kept sorted so that
//! the set-intersection baseline (Algorithm 1) can merge-scan them.

use hyperline_util::parallel::par_for_each_mut;

/// Error from the checked (`try_`) CSR builders: an entry outside the
/// declared ID space. Untrusted inputs (dataset loads) go through the
/// `try_` builders and surface this instead of panicking; internal
/// callers keep the infallible builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrOutOfRange {
    /// Which side was violated (`"row"`, `"col"` or `"target"`).
    pub what: &'static str,
    /// The offending ID.
    pub id: u32,
    /// The size of the ID space it had to fit.
    pub space: usize,
}

impl std::fmt::Display for CsrOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} out of range {}", self.what, self.id, self.space)
    }
}

impl std::error::Error for CsrOutOfRange {}

/// CSR adjacency: `num_rows` sorted neighbor lists over targets `< num_cols`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    num_cols: usize,
}

impl Csr {
    /// Builds a CSR from per-row neighbor lists. Lists are sorted and
    /// deduplicated. `num_cols` is the target ID space size; every target
    /// must be `< num_cols`.
    ///
    /// # Panics
    /// Panics if any target is out of range (use [`Csr::try_from_lists`]
    /// for untrusted inputs).
    pub fn from_lists(lists: &[Vec<u32>], num_cols: usize) -> Self {
        Self::try_from_lists(lists, num_cols).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked variant of [`Csr::from_lists`]: returns an error instead
    /// of panicking on an out-of-range target.
    pub fn try_from_lists(lists: &[Vec<u32>], num_cols: usize) -> Result<Self, CsrOutOfRange> {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0usize);
        let mut targets = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        let mut scratch: Vec<u32> = Vec::new();
        for list in lists {
            scratch.clear();
            scratch.extend_from_slice(list);
            scratch.sort_unstable();
            scratch.dedup();
            if let Some(&t) = scratch.last().filter(|&&t| t as usize >= num_cols) {
                return Err(CsrOutOfRange {
                    what: "target",
                    id: t,
                    space: num_cols,
                });
            }
            targets.extend_from_slice(&scratch);
            offsets.push(targets.len());
        }
        Ok(Self {
            offsets,
            targets,
            num_cols,
        })
    }

    /// Builds a CSR from `(row, col)` pairs using a counting sort.
    /// Duplicate pairs are removed.
    ///
    /// # Panics
    /// Panics if a row or column is out of range (use
    /// [`Csr::try_from_pairs`] for untrusted inputs).
    pub fn from_pairs(pairs: &[(u32, u32)], num_rows: usize, num_cols: usize) -> Self {
        Self::try_from_pairs(pairs, num_rows, num_cols).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked variant of [`Csr::from_pairs`]: returns an error instead
    /// of panicking on an out-of-range row or column.
    pub fn try_from_pairs(
        pairs: &[(u32, u32)],
        num_rows: usize,
        num_cols: usize,
    ) -> Result<Self, CsrOutOfRange> {
        let mut counts = vec![0usize; num_rows + 1];
        for &(r, c) in pairs {
            if r as usize >= num_rows {
                return Err(CsrOutOfRange {
                    what: "row",
                    id: r,
                    space: num_rows,
                });
            }
            if c as usize >= num_cols {
                return Err(CsrOutOfRange {
                    what: "col",
                    id: c,
                    space: num_cols,
                });
            }
            counts[r as usize + 1] += 1;
        }
        for i in 0..num_rows {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut targets = vec![0u32; pairs.len()];
        let mut cursor = offsets.clone();
        for &(r, c) in pairs {
            let slot = cursor[r as usize];
            targets[slot] = c;
            cursor[r as usize] += 1;
        }
        let mut csr = Self {
            offsets,
            targets,
            num_cols,
        };
        csr.sort_and_dedup_rows();
        Ok(csr)
    }

    /// Sorts each row's targets and removes duplicates, compacting storage.
    fn sort_and_dedup_rows(&mut self) {
        let num_rows = self.num_rows();
        // Sort rows in parallel (disjoint slices via split_at_mut pattern).
        {
            let offsets = &self.offsets;
            let mut rows: Vec<&mut [u32]> = Vec::with_capacity(num_rows);
            let mut rest: &mut [u32] = &mut self.targets;
            let mut consumed = 0usize;
            for r in 0..num_rows {
                let len = offsets[r + 1] - offsets[r];
                debug_assert_eq!(consumed, offsets[r]);
                let (head, tail) = rest.split_at_mut(len);
                rows.push(head);
                rest = tail;
                consumed += len;
            }
            par_for_each_mut(&mut rows, |row| row.sort_unstable());
        }
        // Dedup with a single compaction pass.
        let mut write = 0usize;
        let mut new_offsets = Vec::with_capacity(num_rows + 1);
        new_offsets.push(0usize);
        for r in 0..num_rows {
            let (start, end) = (self.offsets[r], self.offsets[r + 1]);
            let mut prev: Option<u32> = None;
            for i in start..end {
                let t = self.targets[i];
                if prev != Some(t) {
                    self.targets[write] = t;
                    write += 1;
                    prev = Some(t);
                }
            }
            new_offsets.push(write);
        }
        self.targets.truncate(write);
        self.offsets = new_offsets;
    }

    /// An empty CSR with `num_rows` empty rows.
    pub fn empty(num_rows: usize, num_cols: usize) -> Self {
        Self {
            offsets: vec![0; num_rows + 1],
            targets: Vec::new(),
            num_cols,
        }
    }

    /// Number of rows (source IDs).
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Size of the target ID space.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Total number of stored (row, col) entries.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.targets.len()
    }

    /// The sorted neighbor list of `row`.
    #[inline]
    pub fn neighbors(&self, row: u32) -> &[u32] {
        &self.targets[self.offsets[row as usize]..self.offsets[row as usize + 1]]
    }

    /// Length of `row`'s neighbor list (degree / size).
    #[inline]
    pub fn degree(&self, row: u32) -> usize {
        self.offsets[row as usize + 1] - self.offsets[row as usize]
    }

    /// Raw offsets array (length `num_rows() + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw flat targets array.
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// True if `row`'s list contains `col` (binary search).
    #[inline]
    pub fn contains(&self, row: u32, col: u32) -> bool {
        self.neighbors(row).binary_search(&col).is_ok()
    }

    /// Iterates `(row, col)` pairs in row-major order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_rows() as u32)
            .flat_map(move |r| self.neighbors(r).iter().map(move |&c| (r, c)))
    }

    /// Transposes the CSR: entry `(r, c)` becomes `(c, r)`. The result has
    /// `num_cols()` rows and `num_rows()` columns, with sorted rows.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.num_cols + 1];
        for &c in &self.targets {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.num_cols {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut targets = vec![0u32; self.targets.len()];
        let mut cursor = counts;
        // Row-major traversal emits rows in ascending order, so each
        // transposed row is filled in ascending order: already sorted.
        for r in 0..self.num_rows() {
            for i in self.offsets[r]..self.offsets[r + 1] {
                let c = self.targets[i] as usize;
                targets[cursor[c]] = r as u32;
                cursor[c] += 1;
            }
        }
        Csr {
            offsets,
            targets,
            num_cols: self.num_rows(),
        }
    }

    /// Degrees of all rows as a vector.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_rows())
            .map(|r| self.offsets[r + 1] - self.offsets[r])
            .collect()
    }

    /// Applies a row permutation: row `r` of the result is row `perm[r]` of
    /// `self`. Targets are unchanged.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..num_rows()`.
    pub fn permute_rows(&self, perm: &[u32]) -> Csr {
        assert_eq!(perm.len(), self.num_rows(), "permutation length mismatch");
        let mut offsets = Vec::with_capacity(self.offsets.len());
        offsets.push(0usize);
        let mut targets = Vec::with_capacity(self.targets.len());
        for &old in perm {
            targets.extend_from_slice(self.neighbors(old));
            offsets.push(targets.len());
        }
        assert_eq!(
            targets.len(),
            self.targets.len(),
            "perm was not a permutation"
        );
        Csr {
            offsets,
            targets,
            num_cols: self.num_cols,
        }
    }

    /// Renames targets through `mapping` (new ID = `mapping[old ID]`), then
    /// re-sorts rows. Used when the *other* side of the bipartite structure
    /// was permuted.
    pub fn rename_targets(&self, mapping: &[u32], new_num_cols: usize) -> Csr {
        assert_eq!(mapping.len(), self.num_cols);
        let mut targets: Vec<u32> = self.targets.iter().map(|&t| mapping[t as usize]).collect();
        for r in 0..self.num_rows() {
            targets[self.offsets[r]..self.offsets[r + 1]].sort_unstable();
        }
        for &t in &targets {
            assert!((t as usize) < new_num_cols);
        }
        Csr {
            offsets: self.offsets.clone(),
            targets,
            num_cols: new_num_cols,
        }
    }
}

/// Size of the sorted intersection of two sorted slices (merge scan).
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Like [`intersection_size`] but stops early once the count reaches `s`
/// (returns `s`) or once it becomes impossible to reach `s` (returns the
/// count so far, which is `< s`). This is the "short-circuit" heuristic of
/// Algorithm 1.
pub fn intersection_at_least(a: &[u32], b: &[u32], s: usize) -> bool {
    if a.len() < s || b.len() < s {
        return false;
    }
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        // Impossible to reach s with what's left on either side.
        if count + (a.len() - i).min(b.len() - j) < s {
            return false;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                if count >= s {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count >= s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // Paper's example hypergraph (edge -> vertices), vertices a..f = 0..5:
        // e0 = {a,b,c}, e1 = {b,c,d}, e2 = {a,b,c,d,e}, e3 = {e,f}
        Csr::from_lists(
            &[
                vec![0, 1, 2],
                vec![1, 2, 3],
                vec![0, 1, 2, 3, 4],
                vec![4, 5],
            ],
            6,
        )
    }

    #[test]
    fn basic_shape() {
        let c = sample();
        assert_eq!(c.num_rows(), 4);
        assert_eq!(c.num_cols(), 6);
        assert_eq!(c.num_entries(), 13);
        assert_eq!(c.degree(2), 5);
        assert_eq!(c.neighbors(3), &[4, 5]);
    }

    #[test]
    fn from_lists_sorts_and_dedups() {
        let c = Csr::from_lists(&[vec![3, 1, 2, 1, 3]], 4);
        assert_eq!(c.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_lists_checks_range() {
        Csr::from_lists(&[vec![5]], 5);
    }

    #[test]
    fn from_pairs_matches_from_lists() {
        let pairs = vec![(0u32, 2u32), (0, 1), (1, 0), (0, 2), (2, 3)];
        let c = Csr::from_pairs(&pairs, 3, 4);
        let expect = Csr::from_lists(&[vec![1, 2], vec![0], vec![3]], 4);
        assert_eq!(c, expect);
    }

    #[test]
    fn transpose_roundtrip() {
        let c = sample();
        let t = c.transpose();
        assert_eq!(t.num_rows(), 6);
        assert_eq!(t.num_cols(), 4);
        // vertex b (=1) is in edges 0, 1, 2
        assert_eq!(t.neighbors(1), &[0, 1, 2]);
        assert_eq!(t.transpose(), c);
    }

    #[test]
    fn transpose_preserves_entry_count() {
        let c = sample();
        assert_eq!(c.transpose().num_entries(), c.num_entries());
    }

    #[test]
    fn contains_and_iter_pairs() {
        let c = sample();
        assert!(c.contains(0, 2));
        assert!(!c.contains(0, 3));
        let pairs: Vec<(u32, u32)> = c.iter_pairs().collect();
        assert_eq!(pairs.len(), 13);
        assert_eq!(pairs[0], (0, 0));
        assert_eq!(*pairs.last().unwrap(), (3, 5));
    }

    #[test]
    fn permute_rows_reorders() {
        let c = sample();
        let p = c.permute_rows(&[3, 2, 1, 0]);
        assert_eq!(p.neighbors(0), c.neighbors(3));
        assert_eq!(p.neighbors(3), c.neighbors(0));
        assert_eq!(p.num_entries(), c.num_entries());
    }

    #[test]
    #[should_panic]
    fn permute_rows_rejects_non_permutation() {
        // Repeats row 2 and drops row 3: entry count mismatch for this input.
        sample().permute_rows(&[2, 2, 1, 0]);
    }

    #[test]
    fn rename_targets_relabels() {
        let c = Csr::from_lists(&[vec![0, 2]], 3);
        // swap IDs 0 and 2
        let r = c.rename_targets(&[2, 1, 0], 3);
        assert_eq!(r.neighbors(0), &[0, 2]);
    }

    #[test]
    fn empty_csr() {
        let c = Csr::empty(3, 5);
        assert_eq!(c.num_rows(), 3);
        assert_eq!(c.num_entries(), 0);
        assert_eq!(c.neighbors(1), &[] as &[u32]);
    }

    #[test]
    fn intersection_sizes() {
        assert_eq!(intersection_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
        assert_eq!(intersection_size(&[1, 5, 9], &[2, 6, 10]), 0);
        assert_eq!(intersection_size(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn intersection_at_least_short_circuits() {
        assert!(intersection_at_least(&[1, 2, 3], &[2, 3, 4], 2));
        assert!(!intersection_at_least(&[1, 2, 3], &[2, 3, 4], 3));
        // Length pruning: can't possibly reach s.
        assert!(!intersection_at_least(&[1], &[1, 2, 3], 2));
        assert!(intersection_at_least(&[1], &[1], 1));
        assert!(!intersection_at_least(&[], &[], 1));
    }

    #[test]
    fn intersection_at_least_matches_exact() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a: Vec<u32> = {
                let mut v: Vec<u32> = (0..rng.gen_range(0..20))
                    .map(|_| rng.gen_range(0..30))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let b: Vec<u32> = {
                let mut v: Vec<u32> = (0..rng.gen_range(0..20))
                    .map(|_| rng.gen_range(0..30))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let exact = intersection_size(&a, &b);
            for s in 1..=5usize {
                assert_eq!(
                    intersection_at_least(&a, &b, s),
                    exact >= s,
                    "a={a:?} b={b:?} s={s}"
                );
            }
        }
    }
}
