//! Spectral analysis: normalized Laplacian and algebraic connectivity.
//!
//! The paper's Figure 6 plots the *normalized algebraic connectivity* —
//! the second-smallest eigenvalue λ₂ of the normalized Laplacian
//! `L̃ = I − D^{-1/2} A D^{-1/2}` — of s-line graphs for s = 1..16. Larger
//! values mean the (s-line) graph is better connected, which is how the
//! paper reads collaboration strength off the spectrum.
//!
//! λ₂ is computed matrix-free by deflated power iteration on the shifted
//! operator `B = 2I − L̃` (spectrum in `[0, 2]`, top eigenpair known:
//! `μ₁ = 2` with eigenvector `D^{1/2}·1`), so only O(V + E) memory is
//! needed. A dense Jacobi cross-check lives in [`crate::dense`].

use crate::cc::{components_parallel, largest_component};
use crate::dense::SymMatrix;
use crate::graph::Graph;

/// Tolerance/iteration knobs for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct SpectralOptions {
    /// Convergence tolerance on the eigenvalue estimate.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Seed for the deterministic pseudo-random start vector.
    pub seed: u64,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: 5000,
            seed: 0x5eed,
        }
    }
}

/// Applies `y = (I + D^{-1/2} A D^{-1/2}) x`, i.e. `B = 2I − L̃`,
/// for a graph with all degrees ≥ 1.
fn apply_shifted(g: &Graph, inv_sqrt_deg: &[f64], x: &[f64], y: &mut [f64]) {
    for v in 0..g.num_vertices() {
        let mut acc = 0.0;
        for &u in g.neighbors(v as u32) {
            acc += inv_sqrt_deg[u as usize] * x[u as usize];
        }
        y[v] = x[v] + inv_sqrt_deg[v] * acc;
    }
}

/// Deterministic xorshift for reproducible start vectors.
fn xorshift(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
    norm
}

fn orthogonalize_against(v: &mut [f64], unit: &[f64]) {
    let dot: f64 = v.iter().zip(unit).map(|(a, b)| a * b).sum();
    v.iter_mut().zip(unit).for_each(|(a, b)| *a -= dot * b);
}

/// λ₂ of the normalized Laplacian of a **connected** graph with ≥ 2
/// vertices and no isolated vertices.
///
/// Returns 0.0 for graphs with < 2 vertices. If the graph is actually
/// disconnected the result converges to ~0 (the second zero eigenvalue),
/// which is the mathematically correct answer.
pub fn algebraic_connectivity(g: &Graph, opts: SpectralOptions) -> f64 {
    let n = g.num_vertices();
    if n < 2 {
        return 0.0;
    }
    // Degree-0 vertices make D^{-1/2} singular; treat their degree as 1
    // (they contribute an isolated λ = 1... actually λ = 0 component), but
    // callers should pass components. Guard anyway.
    let inv_sqrt_deg: Vec<f64> = (0..n as u32)
        .map(|v| 1.0 / (g.degree(v).max(1) as f64).sqrt())
        .collect();
    // Known top eigenvector of B: D^{1/2}·1, normalized.
    let mut top: Vec<f64> = (0..n as u32)
        .map(|v| (g.degree(v).max(1) as f64).sqrt())
        .collect();
    normalize(&mut top);

    let mut state = opts.seed | 1;
    let mut x: Vec<f64> = (0..n).map(|_| xorshift(&mut state)).collect();
    orthogonalize_against(&mut x, &top);
    if normalize(&mut x) == 0.0 {
        // Degenerate start (can only happen for n == 1-ish cases).
        x = vec![0.0; n];
        x[0] = 1.0;
        orthogonalize_against(&mut x, &top);
        normalize(&mut x);
    }
    let mut y = vec![0.0f64; n];
    let mut mu_prev = f64::NAN;
    for _ in 0..opts.max_iterations {
        apply_shifted(g, &inv_sqrt_deg, &x, &mut y);
        // Rayleigh quotient before renormalization: x is unit.
        let mu: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        orthogonalize_against(&mut y, &top);
        if normalize(&mut y) == 0.0 {
            // y collapsed into span(top): spectrum in the complement is 0.
            return 2.0;
        }
        std::mem::swap(&mut x, &mut y);
        if (mu - mu_prev).abs() < opts.tolerance {
            return (2.0 - mu).max(0.0);
        }
        mu_prev = mu;
    }
    (2.0 - mu_prev).max(0.0)
}

/// The paper's Figure-6 quantity: λ₂ of the normalized Laplacian of the
/// **largest connected component** of `g`. Components of size < 2 give 0.
pub fn normalized_algebraic_connectivity(g: &Graph, opts: SpectralOptions) -> f64 {
    let labels = components_parallel(g);
    let comp = largest_component(&labels);
    if comp.len() < 2 {
        return 0.0;
    }
    let (sub, _) = g.induced(&comp);
    algebraic_connectivity(&sub, opts)
}

/// Dense normalized Laplacian of a graph (isolated vertices produce a
/// zero row/column). For tests and tiny graphs.
pub fn normalized_laplacian_dense(g: &Graph) -> SymMatrix {
    let n = g.num_vertices();
    let mut m = SymMatrix::zeros(n);
    for v in 0..n {
        if g.degree(v as u32) > 0 {
            m.set(v, v, 1.0);
        }
    }
    for (u, v) in g.iter_edges() {
        let w = -1.0 / ((g.degree(u) * g.degree(v)) as f64).sqrt();
        m.set(u as usize, v as usize, w);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|a| ((a + 1)..n as u32).map(move |b| (a, b)))
            .collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn complete_graph_connectivity() {
        // λ₂ of normalized Laplacian of K_n is n/(n-1).
        for n in [3usize, 5, 8] {
            let g = complete_graph(n);
            let lam = algebraic_connectivity(&g, SpectralOptions::default());
            let expect = n as f64 / (n as f64 - 1.0);
            assert!((lam - expect).abs() < 1e-6, "K_{n}: {lam} vs {expect}");
        }
    }

    #[test]
    fn path_graph_connectivity_matches_dense() {
        for n in [2usize, 3, 5, 10, 17] {
            let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            let g = Graph::from_edges(n, &edges);
            let iterative = algebraic_connectivity(&g, SpectralOptions::default());
            let eigs = normalized_laplacian_dense(&g).eigenvalues();
            let dense = eigs[1];
            assert!(
                (iterative - dense).abs() < 1e-5,
                "path n={n}: {iterative} vs dense {dense}"
            );
        }
    }

    #[test]
    fn disconnected_graph_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let lam = algebraic_connectivity(&g, SpectralOptions::default());
        assert!(
            lam.abs() < 1e-6,
            "λ₂ of disconnected graph should be ~0, got {lam}"
        );
    }

    #[test]
    fn largest_component_variant() {
        // Triangle (well connected) + isolated pair: λ computed on triangle.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let lam = normalized_algebraic_connectivity(&g, SpectralOptions::default());
        let k3 = algebraic_connectivity(&complete_graph(3), SpectralOptions::default());
        assert!((lam - k3).abs() < 1e-6);
    }

    #[test]
    fn tiny_graphs() {
        let g = Graph::from_edges(1, &[]);
        assert_eq!(algebraic_connectivity(&g, SpectralOptions::default()), 0.0);
        let g = Graph::from_edges(0, &[]);
        assert_eq!(
            normalized_algebraic_connectivity(&g, SpectralOptions::default()),
            0.0
        );
        // K2: normalized Laplacian eigenvalues {0, 2}.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let lam = algebraic_connectivity(&g, SpectralOptions::default());
        assert!((lam - 2.0).abs() < 1e-6, "K2: {lam}");
    }

    #[test]
    fn random_graphs_match_dense() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        let mut tested = 0;
        while tested < 8 {
            let n = rng.gen_range(4..25usize);
            let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect(); // ensure connected
            for _ in 0..rng.gen_range(0..2 * n) {
                edges.push((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
            }
            let g = Graph::from_edges(n, &edges);
            let iterative = algebraic_connectivity(
                &g,
                SpectralOptions {
                    tolerance: 1e-13,
                    max_iterations: 50_000,
                    ..Default::default()
                },
            );
            let dense = normalized_laplacian_dense(&g).eigenvalues()[1];
            assert!(
                (iterative - dense).abs() < 1e-4,
                "n={n}: iterative {iterative} vs dense {dense}"
            );
            tested += 1;
        }
    }

    #[test]
    fn dense_laplacian_spectrum_bounds() {
        let g = complete_graph(6);
        let eigs = normalized_laplacian_dense(&g).eigenvalues();
        assert!(eigs[0].abs() < 1e-9, "λ₁ = 0");
        assert!(eigs.iter().all(|&l| l > -1e-9 && l < 2.0 + 1e-9));
    }

    #[test]
    fn star_graph_is_bipartite_with_lambda_max_2() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let eigs = normalized_laplacian_dense(&g).eigenvalues();
        assert!((eigs.last().unwrap() - 2.0).abs() < 1e-9);
        // λ₂ of a star's normalized Laplacian is 1.
        let lam = algebraic_connectivity(&g, SpectralOptions::default());
        assert!((lam - 1.0).abs() < 1e-6, "star λ₂: {lam}");
    }
}
