//! Synthetic hypergraph workload generators.
//!
//! The paper evaluates on real datasets (SNAP/KONECT social networks,
//! activeDNS, IMDB, disGeNet, …) that are not redistributable here; this
//! crate generates synthetic stand-ins that preserve the properties the
//! algorithms are sensitive to. See DESIGN.md §3 for the substitution
//! rationale per dataset.
//!
//! * [`community::CommunityModel`] — the planted overlapping-community
//!   bipartite model (skewed sizes, skewed degrees, deep intra-community
//!   overlaps);
//! * [`planted`] — exact deep-overlap structures (cliques/stars of
//!   hyperedges) for experiments that need guaranteed components at a
//!   given `s`;
//! * [`profiles::Profile`] — one named profile per paper dataset;
//! * [`sampling`] — power-law and alias-table sampling primitives.
//!
//! ```
//! use hyperline_gen::Profile;
//!
//! let h = Profile::LesMis.generate(42);
//! assert_eq!(h.num_edges(), 400);
//! ```

#![warn(missing_docs)]

pub mod community;
pub mod planted;
pub mod profiles;
pub mod random;
pub mod sampling;

pub use community::CommunityModel;
pub use planted::{plant_groups, GroupShape, PlantedGroup};
pub use profiles::{dns_chunks, Profile};
pub use random::{ChungLuModel, UniformModel};
