#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, release build, full test suite, and
# the two smoke benchmarks — server (cold vs warm cache latencies +
# server-side p50/p99 from the /metrics histograms + streamed edge-list
# wire bytes, identity vs gzip, both encoder efforts) and kernels (cold
# pipeline stage timings with the counting-vs-tail breakdown plus the
# Stage-5 frontier-engine section). Both are warn-only compared (>20%)
# against their previous BENCH_*.json; the server smoke additionally
# HARD-asserts that the /metrics JSON key set matches the checked-in
# scripts/metrics_schema.txt snapshot — scrapers key on those paths, so
# schema drift must be deliberate (rerun with --update-schema to accept
# a change). Each kernel run is also appended as one line (commit,
# timestamp, full report) to BENCH_history.jsonl, so the per-commit
# trajectory survives the snapshot overwrite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> server smoke benchmark (cold vs warm -> BENCH_server.json)"
cargo run --release -q -p hyperline-bench --bin server_smoke

echo "==> kernel smoke benchmark (counting vs tail + stage5 -> BENCH_kernels.json, history -> BENCH_history.jsonl)"
cargo run --release -q -p hyperline-bench --bin kernel_smoke

echo "All checks passed."
