//! Plain-text table rendering for experiment outputs.
//!
//! Experiment binaries print rows matching the paper's tables; this module
//! keeps that output aligned and readable without pulling in a dependency.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (the common label+numbers shape).
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments. Panics if the count differs from headers.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns;
        self
    }

    /// Appends a row. Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String], aligns: &[Align], widths: &[usize]| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let w = widths[i];
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{:<w$}", cells[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>w$}", cells[i]);
                    }
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers, &self.aligns, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row, &self.aligns, &widths);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with engineering-style thousands grouping: `1234567` →
/// `1,234,567` (applied to the integral part only).
pub fn group_thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Compact human format for large counts: `1.5M`, `43.9M`, `265.2k`.
pub fn human_count(n: u64) -> String {
    let f = n as f64;
    if f >= 1e9 {
        format!("{:.1}B", f / 1e9)
    } else if f >= 1e6 {
        format!("{:.1}M", f / 1e6)
    } else if f >= 1e3 {
        format!("{:.1}k", f / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["stage", "time"]);
        t.row(["preprocess", "0.15s"]);
        t.row(["s-overlap", "12.1s"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
                                    // All lines same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() <= w + 2));
        assert!(lines[2].starts_with("preprocess"));
        assert!(lines[3].trim_end().ends_with("12.1s"));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn custom_alignment() {
        let t = Table::new(["x", "y"]).with_aligns(vec![Align::Right, Align::Left]);
        assert_eq!(t.aligns[0], Align::Right);
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1000), "1,000");
        assert_eq!(group_thousands(1234567), "1,234,567");
        assert_eq!(group_thousands(8_660_000_000), "8,660,000,000");
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(12), "12");
        assert_eq!(human_count(265_200), "265.2k");
        assert_eq!(human_count(43_900_000), "43.9M");
        assert_eq!(human_count(10_300_000_000), "10.3B");
    }

    #[test]
    fn num_rows_tracks() {
        let mut t = Table::new(["a"]);
        assert_eq!(t.num_rows(), 0);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.num_rows(), 2);
    }
}
