//! The server proper: TCP lifecycle, routing and endpoint handlers.
//!
//! `bind` → `spawn` starts the epoll readiness loop
//! ([`crate::event`]): one thread owns every socket, parses request
//! heads incrementally, and hands complete requests to a fixed worker
//! pool through a bounded queue — so open keep-alive connections cost
//! a buffer each, not a thread each. Workers answer through a bounded
//! per-connection hand-off buffer the loop drains as the socket
//! accepts bytes. Query endpoints resolve through a two-tier
//! single-flight LRU cache: the **artifact tier** builds each s-line
//! graph at most once per `(dataset, s, algorithm, weighted)`, and the
//! **metric tier** layered on top computes each Stage-5 result
//! (components, betweenness, spectrum, sweep counts) at most once per
//! `(artifact, metric, params)` — so warm metric queries are O(1)
//! lookups plus rendering instead of parallel kernel runs.
//! `POST /query` answers a JSON array of sub-queries in one round-trip
//! under one compute budget.

use crate::access_log::{AccessLog, AccessRecord, RequestIds};
use crate::cache::{
    AlgoKind, ArtifactCache, CacheKey, CacheOutcome, MetricKey, MetricKind, SingleFlightCache,
};
use crate::event::{spawn_event_loop, RequestJob};
use crate::gzip::GzipWriter;
use crate::http::{self, ChunkedWriter, Params, Request};
use crate::json::{Json, StreamFragment};
use crate::metrics::{Route, ServerMetrics};
use crate::registry::{DatasetRegistry, DatasetSource};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use crate::sys;
use hyperline_hypergraph::Hypergraph;
use hyperline_slinegraph::{
    algo1_slinegraph, algo2_slinegraph, algo2_slinegraph_weighted, build_slinegraphs_over_s,
    naive_slinegraph, spgemm_slinegraph, SLineGraph, Strategy,
};
use hyperline_util::cancel::{self, Deadline, Watchdog};
use hyperline_util::failpoint;
use hyperline_util::telemetry::{self, Span, StageAgg};
use hyperline_util::FxHashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Server configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 means available parallelism.
    pub threads: usize,
    /// Artifact-cache budget in mebibytes.
    pub cache_mb: usize,
    /// Bounded accept-queue depth (overflow answers 503).
    pub queue_depth: usize,
    /// Idle keep-alive / slow-client read timeout.
    pub read_timeout: Duration,
    /// Directory `POST /datasets?path=` may load files from. `None`
    /// (the default) disables path loading entirely — without a sandbox
    /// root, that endpoint would let any client read server files.
    pub data_root: Option<std::path::PathBuf>,
    /// JSONL access-log sink (`--access-log`); `None` disables request
    /// logging.
    pub access_log: Option<std::path::PathBuf>,
    /// Keep one access-log record in this many (0 and 1 both log every
    /// request).
    pub access_log_sample: u64,
    /// Cumulative budget for reading one request head once its first
    /// byte has arrived (slow-loris defense; `read_timeout` alone only
    /// bounds the gap *between* bytes, so a client dribbling one byte
    /// per interval could hold a worker forever).
    pub head_timeout: Duration,
    /// Socket write timeout: a response write stalled longer than this
    /// (dead or pathologically slow reader) aborts the stream and frees
    /// the worker.
    pub write_timeout: Duration,
    /// Wall-clock budget per request, dispatch through response write;
    /// expiry cancels the compute (once every interested request gave
    /// up) and answers 504. `None` disables request deadlines.
    pub request_deadline: Option<Duration>,
    /// Per-route deadline overrides; an entry here wins over
    /// `request_deadline` for that route.
    pub route_deadlines: Vec<(Route, Duration)>,
    /// Default bound for a graceful drain (`POST /admin/drain`,
    /// [`ServerHandle::drain`]): in-flight connections get this long to
    /// finish before being hard-closed.
    pub drain_deadline: Duration,
    /// Negative-cache TTL: a failed compute's error is re-served for
    /// this long before a recompute is allowed, so a deterministically
    /// failing query cannot thundering-herd the kernels. Zero disables.
    pub negative_ttl: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            threads: 0,
            cache_mb: 256,
            queue_depth: 1024,
            read_timeout: Duration::from_secs(10),
            data_root: None,
            access_log: None,
            access_log_sample: 1,
            head_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: None,
            route_deadlines: Vec::new(),
            drain_deadline: Duration::from_secs(5),
            negative_ttl: Duration::from_millis(250),
        }
    }
}

/// A cached artifact: the s-line graph plus (optionally) its weighted
/// edge list.
pub struct Artifact {
    /// The queryable line graph.
    pub slg: SLineGraph,
    /// Normalized `(i, j, overlap)` triples when built weighted.
    pub weighted_edges: Option<Vec<(u32, u32, u32)>>,
}

impl Artifact {
    /// Rough resident size, for the cache's byte budget.
    pub fn approx_bytes(&self) -> usize {
        let slg = &self.slg;
        // Edge list (8 B) + CSR adjacency (2×4 B per direction) + offsets.
        slg.num_edges() * (8 + 16)
            + slg.num_vertices() * 24
            + self.weighted_edges.as_ref().map_or(0, |w| w.len() * 12)
            + 128
    }
}

/// A cached Stage-5 metric result — the metric tier's value type. Full,
/// untruncated results are cached; render-time parameters (`top`,
/// `limit`) apply when the response body is built, so every truncation
/// of one ranking shares one compute.
pub enum MetricResult {
    /// s-connected components, largest first.
    Components(Vec<Vec<u32>>),
    /// `(original hyperedge ID, score)` by descending score.
    Betweenness(Vec<(u32, f64)>),
    /// The spectrum summary.
    Spectrum {
        /// Squeezed vertex count of the line graph.
        num_vertices: usize,
        /// Edge count of the line graph.
        num_edges: usize,
        /// s-diameter.
        diameter: u32,
        /// Normalized algebraic connectivity of the largest component.
        algebraic_connectivity: f64,
    },
    /// `(s, |E(L_s)|)` for `s = 1..=max_s`.
    Sweep(Vec<(u32, usize)>),
}

impl MetricResult {
    /// Rough resident size, for the metric tier's byte budget.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        64 + match self {
            MetricResult::Components(comps) => comps
                .iter()
                .map(|c| size_of::<Vec<u32>>() + c.len() * size_of::<u32>())
                .sum::<usize>(),
            MetricResult::Betweenness(ranking) => ranking.len() * size_of::<(u32, f64)>(),
            MetricResult::Spectrum { .. } => 0,
            MetricResult::Sweep(counts) => counts.len() * size_of::<(u32, usize)>(),
        }
    }
}

/// Streams `/slg` edge rows (`[i,j]` or `[i,j,overlap]`) straight from
/// the cached artifact: the response holds the `Arc`, not a rendered
/// body, so a full edge list serializes with O(1) buffering.
struct EdgeRows {
    artifact: Arc<Artifact>,
    limit: usize,
}

impl StreamFragment for EdgeRows {
    fn write_json(&self, out: &mut dyn Write) -> std::io::Result<()> {
        out.write_all(b"[")?;
        if let Some(weighted) = &self.artifact.weighted_edges {
            for (n, &(i, j, w)) in weighted.iter().take(self.limit).enumerate() {
                if n > 0 {
                    out.write_all(b",")?;
                }
                write!(out, "[{i},{j},{w}]")?;
            }
        } else {
            for (n, &(i, j)) in self.artifact.slg.edges.iter().take(self.limit).enumerate() {
                if n > 0 {
                    out.write_all(b",")?;
                }
                write!(out, "[{i},{j}]")?;
            }
        }
        out.write_all(b"]")
    }
}

/// Streams `/sweep` `[s, count]` rows from the cached metric result.
struct SweepRows {
    result: Arc<MetricResult>,
}

impl StreamFragment for SweepRows {
    fn write_json(&self, out: &mut dyn Write) -> std::io::Result<()> {
        let MetricResult::Sweep(counts) = &*self.result else {
            unreachable!("sweep fragment holds a sweep result")
        };
        out.write_all(b"[")?;
        for (n, &(s, count)) in counts.iter().enumerate() {
            if n > 0 {
                out.write_all(b",")?;
            }
            write!(out, "[{s},{count}]")?;
        }
        out.write_all(b"]")
    }
}

/// Streams `/components` member arrays from the cached metric result.
struct ComponentRows {
    result: Arc<MetricResult>,
    limit: usize,
}

impl StreamFragment for ComponentRows {
    fn write_json(&self, out: &mut dyn Write) -> std::io::Result<()> {
        let MetricResult::Components(components) = &*self.result else {
            unreachable!("component fragment holds a components result")
        };
        out.write_all(b"[")?;
        for (n, comp) in components.iter().take(self.limit).enumerate() {
            if n > 0 {
                out.write_all(b",")?;
            }
            out.write_all(b"[")?;
            for (m, id) in comp.iter().enumerate() {
                if m > 0 {
                    out.write_all(b",")?;
                }
                write!(out, "{id}")?;
            }
            out.write_all(b"]")?;
        }
        out.write_all(b"]")
    }
}

/// Shared state every worker sees.
pub struct ServerState {
    /// Named datasets.
    pub registry: DatasetRegistry,
    /// The artifact tier: s-line graphs keyed by
    /// `(dataset, s, algorithm, weighted)`.
    pub cache: ArtifactCache<Artifact>,
    /// The metric tier: Stage-5 results keyed by
    /// `(artifact key, metric, metric params)`.
    pub metric_cache: SingleFlightCache<MetricKey, MetricResult>,
    /// Request counters.
    pub metrics: ServerMetrics,
    /// Artifact computations currently running (divides the compute
    /// thread budget so concurrent misses don't oversubscribe cores).
    active_computations: std::sync::atomic::AtomicUsize,
    /// Sandbox root for `POST /datasets?path=` (None = disabled).
    data_root: Option<std::path::PathBuf>,
    started: Instant,
    /// Unix seconds at startup (`/metrics` build info).
    started_unix: u64,
    /// Aggregated pipeline stage spans per dataset, collected from cold
    /// computations (`GET /debug/pipeline`, `/datasets/{d}/stats`).
    pipeline_spans: Mutex<FxHashMap<String, FxHashMap<String, StageAgg>>>,
    /// Structured request log, when enabled.
    access_log: Option<AccessLog>,
    /// Request-ID generator for the access log.
    request_ids: RequestIds,
    /// Watchdog thread arming per-request deadlines.
    watchdog: Watchdog,
    /// Set while a drain is in progress: the event loop sheds new
    /// connections and keep-alive responses switch to
    /// `Connection: close` after their in-flight response.
    pub(crate) draining: AtomicBool,
    /// Live connections, for the drain's bounded wait and hard close.
    pub(crate) connections: ConnectionTracker,
    /// Wall-clock budget per request (`None` = no deadline).
    request_deadline: Option<Duration>,
    /// Per-route overrides over `request_deadline`.
    route_deadlines: Vec<(Route, Duration)>,
    /// Bound a `POST /admin/drain` without `?deadline_ms=` uses.
    drain_deadline: Duration,
    /// Cumulative head+body read budget per request (slow-loris
    /// defense), enforced by the event loop's `Request` timer.
    pub(crate) head_timeout: Duration,
    /// Write-stall budget (bounded-stall defense): bounds both a
    /// worker's wait for hand-off buffer space and the event loop's
    /// zero-progress window while flushing.
    pub(crate) write_timeout: Duration,
}

/// Live-connection registry for graceful drain. The event loop
/// registers a `try_clone`d handle of each accepted stream; the drain
/// thread hard-closes stragglers through that clone (`shutdown()` makes
/// the loop's reads and writes on the socket fail promptly, which
/// closes the connection on its next readiness event).
#[derive(Default)]
pub(crate) struct ConnectionTracker {
    streams: Mutex<FxHashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnectionTracker {
    pub(crate) fn register(&self, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, stream);
        id
    }

    /// Removes a finished connection; `false` means the drain already
    /// claimed (hard-closed) it.
    pub(crate) fn deregister(&self, id: u64) -> bool {
        self.streams
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id)
            .is_some()
    }

    fn len(&self) -> usize {
        self.streams.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Hard-closes every still-registered connection, returning how many
    /// were aborted. Claiming the map entries here is what keeps the
    /// drained/aborted counters disjoint: the worker's own deregister
    /// then finds nothing and books no drained close.
    fn close_all(&self) -> usize {
        let streams: Vec<TcpStream> = {
            let mut map = self.streams.lock().unwrap_or_else(|p| p.into_inner());
            map.drain().map(|(_, s)| s).collect()
        };
        let aborted = streams.len();
        for stream in streams {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        aborted
    }
}

impl ServerState {
    /// Drops every cached entry derived from `dataset` — **both tiers**
    /// — and bumps their invalidation generations so in-flight
    /// computations against the replaced data are never cached. Stale
    /// metric results must go even when their artifact survives nowhere;
    /// invalidating only one tier would let the other serve the old
    /// dataset forever.
    pub fn invalidate_dataset(&self, dataset: &str) {
        self.cache.invalidate_dataset(dataset);
        self.metric_cache.invalidate_dataset(dataset);
    }

    /// Folds a collected stage report into `dataset`'s aggregate span
    /// tree. Reports come from cold computations only (cache flights),
    /// so warm traffic never touches this lock.
    fn record_pipeline(&self, dataset: &str, report: &telemetry::StageReport) {
        if report.is_empty() {
            return;
        }
        let mut spans = self.pipeline_spans.lock().unwrap();
        report.merge_into(spans.entry(dataset.to_string()).or_default());
    }

    /// The access log, when enabled (tests flush it).
    pub fn access_log(&self) -> Option<&AccessLog> {
        self.access_log.as_ref()
    }

    /// Arms a watchdog deadline for one request on `route`: the
    /// per-route override wins, then the global default; `None` when
    /// neither is configured (deadlines disabled).
    fn deadline_for(&self, route: Route) -> Option<Deadline> {
        let budget = self
            .route_deadlines
            .iter()
            .find(|(r, _)| *r == route)
            .map(|&(_, d)| d)
            .or(self.request_deadline)?;
        Some(self.watchdog.arm(budget))
    }

    /// Whether a drain is in progress (the acceptor is shedding and
    /// keep-alive connections close after their in-flight response).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Connections currently registered with the drain tracker.
    pub fn live_connections(&self) -> usize {
        self.connections.len()
    }
}

/// A bound-but-not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener and allocates shared state. No thread starts
    /// until [`Server::spawn`], so datasets can be preloaded in between.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let access_log = match &config.access_log {
            Some(path) => Some(AccessLog::to_file(path, config.access_log_sample)?),
            None => None,
        };
        let state = Arc::new(ServerState {
            registry: DatasetRegistry::new(),
            cache: ArtifactCache::new(config.cache_mb.saturating_mul(1024 * 1024)),
            // Metric results are far smaller than the artifacts they
            // derive from; a quarter of the artifact budget is generous.
            metric_cache: SingleFlightCache::new(
                (config.cache_mb / 4).max(1).saturating_mul(1024 * 1024),
            ),
            metrics: ServerMetrics::new(),
            active_computations: std::sync::atomic::AtomicUsize::new(0),
            data_root: config.data_root.clone(),
            started: Instant::now(),
            started_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            pipeline_spans: Mutex::new(FxHashMap::default()),
            access_log,
            request_ids: RequestIds::new(),
            watchdog: Watchdog::new(),
            draining: AtomicBool::new(false),
            connections: ConnectionTracker::default(),
            request_deadline: config.request_deadline,
            route_deadlines: config.route_deadlines.clone(),
            drain_deadline: config.drain_deadline,
            head_timeout: config.head_timeout,
            write_timeout: config.write_timeout,
        });
        // Failed computes back off through the negative cache in both
        // tiers — a deterministically failing query is re-answered from
        // its cached error instead of re-running kernels per request.
        state.cache.set_negative_ttl(config.negative_ttl);
        state.metric_cache.set_negative_ttl(config.negative_ttl);
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// The shared state (registry preloading, test assertions).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The dataset registry.
    pub fn registry(&self) -> &DatasetRegistry {
        &self.state.registry
    }

    /// Resolved worker-thread count.
    pub fn threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.config.threads
        }
    }

    /// Starts the worker pool and the event-loop thread; returns a
    /// handle that can stop them.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let threads = self.threads();
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::clone(&self.state);
        let (loop_thread, waker) = spawn_event_loop(
            self.listener,
            Arc::clone(&state),
            threads,
            self.config.queue_depth,
            self.config.read_timeout,
            Arc::clone(&shutdown),
        );
        ServerHandle {
            addr,
            shutdown,
            waker,
            loop_thread: Some(loop_thread),
            state,
        }
    }

    /// Serves in the foreground until the process exits (the CLI path).
    pub fn run(self) {
        let handle = self.spawn();
        // The event loop never exits unless shut down; park forever.
        if let Some(loop_thread) = handle.loop_thread {
            let _ = loop_thread.join();
        }
    }
}

/// A running server; dropping it leaks the threads, so call
/// [`ServerHandle::shutdown`] for an orderly stop (tests do).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<sys::Waker>,
    loop_thread: Option<std::thread::JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (for assertions and metrics scraping).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Gracefully drains, then stops: stop accepting (new connections
    /// are shed with `503` + `Retry-After`), let in-flight connections
    /// finish — keep-alive loops close after their current response —
    /// wait up to `bound`, hard-close the stragglers, and tear down the
    /// pool. Returns `(drained, aborted)` connection counts.
    // lint: request-root
    pub fn drain(self, bound: Duration) -> (u64, u64) {
        self.state.draining.store(true, Ordering::Relaxed);
        let counts = drain_connections(&self.state, bound);
        self.shutdown();
        counts
    }

    /// Stops the event loop (which closes every connection and drains
    /// the worker pool) and joins it.
    pub fn shutdown(mut self) {
        // ordering: publishes all pre-shutdown writes to the event
        // loop's Acquire load of this flag.
        self.shutdown.store(true, Ordering::Release);
        // Interrupt `epoll_wait` so the flag is seen immediately.
        self.waker.wake();
        if let Some(loop_thread) = self.loop_thread.take() {
            let _ = loop_thread.join();
        }
    }
}

/// A pass-through [`Write`] counting bytes on their way to the socket
/// (the access log's `bytes_out`, post-gzip and framing included).
struct CountingStream<W> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingStream<W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        match failpoint::check("socket.write") {
            Some(failpoint::Fault::Err) => return Err(failpoint::io_error("socket.write")),
            Some(failpoint::Fault::Short) if data.len() > 1 => {
                // Injected short write: deliver half the buffer so the
                // writer stack's retry/abort handling is exercised.
                let written = self.inner.write(&data[..data.len() / 2])?;
                self.bytes += written as u64;
                return Ok(written);
            }
            _ => {}
        }
        let written = self.inner.write(data)?;
        self.bytes += written as u64;
        Ok(written)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Sheds one connection before it reaches the worker pool: `503` with a
/// `Retry-After` hint (drain; queue overflow answers through the
/// event loop's own reject path). Works on the nonblocking sockets
/// `accept4` hands the event loop: the tiny 503 fits the socket buffer
/// and the drain loop below breaks on `WouldBlock`.
pub(crate) fn shed_connection(stream: &mut TcpStream, message: &str) {
    let body = Json::obj().set("error", message).render();
    let length = body.len().to_string();
    let _ = http::write_response_head(
        stream,
        503,
        http::CONTENT_TYPE_JSON,
        false,
        &[("content-length", &length), ("retry-after", "1")],
    );
    let _ = stream.write_all(body.as_bytes());
    // The client almost certainly sent its request head already; closing
    // with those bytes unread makes the kernel answer RST, which can
    // discard the 503 before the client reads it. Drain what is already
    // buffered — non-blockingly and bounded, this runs on the acceptor
    // thread — so the close is a clean FIN and the 503 survives.
    if stream.set_nonblocking(true).is_ok() {
        let mut sink = [0u8; 4096];
        for _ in 0..16 {
            match stream.read(&mut sink) {
                Ok(n) if n > 0 => continue,
                _ => break,
            }
        }
    }
}

/// Per-request writer guard: once the request's deadline expires, every
/// further write fails instead of continuing to stream a body the
/// client has already given up on. Streamed bodies abort mid-chunk —
/// the missing terminal chunk makes the truncation visible to clients.
struct DeadlineWriter<'a, W> {
    inner: &'a mut W,
    deadline: Option<&'a Deadline>,
}

impl<W: Write> Write for DeadlineWriter<'_, W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        if self.deadline.is_some_and(|d| d.expired()) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                cancel::CANCELLED,
            ));
        }
        self.inner.write(data)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Books a failed response write under the right counter: a deadline
/// abort (unless the response was already a 504, which booked at
/// dispatch), a quiet client disconnect, or a stalled socket.
fn classify_write_error(
    state: &ServerState,
    error: &std::io::Error,
    deadline: Option<&Deadline>,
    status: u16,
) {
    use std::io::ErrorKind;
    if status != 504 && deadline.is_some_and(|d| d.expired()) {
        state
            .metrics
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        return;
    }
    match error.kind() {
        ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
            state.metrics.client_aborts.fetch_add(1, Ordering::Relaxed);
        }
        // `TimedOut` is the hand-off buffer's stall verdict;
        // `WouldBlock` kept for parity with the old `SO_SNDTIMEO` path.
        ErrorKind::TimedOut | ErrorKind::WouldBlock => {
            state.metrics.write_stalls.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
}

/// The drain proper: bounded wait for live connections to finish (the
/// event loop sheds new ones and closes keep-alive connections after
/// their in-flight response once `draining` is up), then hard-close the
/// stragglers. Returns `(drained, aborted)`.
// lint: request-root
fn drain_connections(state: &ServerState, bound: Duration) -> (u64, u64) {
    let give_up = Instant::now() + bound;
    while state.connections.len() > 0 && Instant::now() < give_up {
        std::thread::sleep(Duration::from_millis(5));
    }
    let aborted = state.connections.close_all() as u64;
    state
        .metrics
        .aborted_connections
        .fetch_add(aborted, Ordering::Relaxed);
    (
        state.metrics.drained_connections.load(Ordering::Relaxed),
        aborted,
    )
}

/// Serves one parsed request on a worker thread: per-request watchdog
/// deadline, dispatch through the cache tiers, the 504 override,
/// metrics and access-log accounting, and the response written through
/// the job's bounded hand-off buffer back to the event loop. The
/// connection lifecycle (keep-alive, timeouts, drain awareness) lives
/// in [`crate::event`]; this function ends by reporting `keep_alive`
/// and whether the buffered response should be flushed.
// lint: request-root
pub(crate) fn handle_request(state: &Arc<ServerState>, job: RequestJob, queue_wait: Duration) {
    let request = &job.request;
    let keep_alive = request.keep_alive() && !state.draining.load(Ordering::Relaxed);
    let deadline = state.deadline_for(peek_route(request));
    let started = Instant::now();
    let (route, status, body, meta) = dispatch_full(state, request, deadline.as_ref());
    // A request that outlived its deadline answers 504 even when the
    // handler finished: the result (cached for later requests) missed
    // *this* request's budget.
    let (status, body) = match &deadline {
        Some(d) if d.expired() && status < 500 => {
            (504, Json::obj().set("error", cancel::CANCELLED))
        }
        _ => (status, body),
    };
    if status == 504 {
        state
            .metrics
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
    }
    // Latency is recorded before the body is transmitted: it measures
    // server work, not how fast the client drains a streamed multi-MB
    // edge list.
    let handled = started.elapsed();
    state.metrics.record(route, status, handled);
    let mut writer = CountingStream {
        inner: job.writer(),
        bytes: 0,
    };
    let sent = {
        let mut guarded = DeadlineWriter {
            inner: &mut writer,
            // The 504 *is* the deadline's verdict: writing it happens
            // after expiry by definition, so it is exempt — refusing
            // would turn every expiry into a silent close.
            deadline: if status == 504 {
                None
            } else {
                deadline.as_ref()
            },
        };
        respond(state, &mut guarded, request, status, &body, keep_alive)
    };
    if let Some(log) = &state.access_log {
        log.record(&AccessRecord {
            id: state.request_ids.next_id(),
            route: route.name(),
            dataset: meta.dataset,
            s: meta.s,
            status,
            bytes_out: writer.bytes,
            gzip: http::accepts_gzip(request) && body.is_streaming() && request.method != "HEAD",
            cache: meta.cache,
            queue_wait_micros: queue_wait.as_micros() as u64,
            handle_micros: handled.as_micros() as u64,
        });
    }
    match sent {
        // Buffered cleanly: the loop flushes, then keeps or closes.
        Ok(keep) => job.complete(keep, true),
        Err(error) => {
            classify_write_error(state, &error, deadline.as_ref(), status);
            // No flush: delivering a half-written body helps no one,
            // and the loop closing immediately cannot double-book the
            // stall the classification above already counted.
            job.complete(false, false);
        }
    }
}

/// Writes one response: HEAD gets headers only (with the exact
/// `content-length` the GET body would have), small bodies keep the
/// fixed-length fast path, and streamed bodies go out chunked
/// (HTTP/1.1) or close-delimited (HTTP/1.0), gzip-compressed when the
/// request negotiated it. Generic over the writer so tests run the full
/// stack against byte buffers. Returns whether the connection can serve
/// another request.
fn respond<W: Write>(
    state: &ServerState,
    writer: &mut W,
    request: &Request,
    status: u16,
    body: &Json,
    keep_alive: bool,
) -> std::io::Result<bool> {
    if let Json::Text {
        content_type,
        body: text,
    } = body
    {
        // Preformatted non-JSON bodies (Prometheus exposition) carry
        // their own content-type; they are always small, so they take
        // the fixed-length path.
        let length = text.len().to_string();
        http::write_response_head(
            writer,
            status,
            content_type,
            keep_alive,
            &[("content-length", &length)],
        )?;
        if request.method != "HEAD" {
            writer.write_all(text.as_bytes())?;
        }
        writer.flush()?;
        return Ok(keep_alive);
    }
    if request.method == "HEAD" {
        // Headers only — but with the true body length, which for a
        // streamed body is counted without allocating it. HEAD always
        // answers in identity coding (choosing identity per-request is
        // legal regardless of Accept-Encoding): the exact uncompressed
        // length is the useful metadata, and computing a gzip length
        // would cost a full compression pass with nothing to send.
        let length = if body.is_streaming() {
            let mut counter = http::CountingWriter::default();
            body.write_into(&mut counter)?;
            counter.bytes()
        } else {
            body.render().len() as u64
        };
        http::write_head_response(writer, status, length, keep_alive)?;
        return Ok(keep_alive);
    }
    if !body.is_streaming() {
        http::write_response(writer, status, &body.render(), keep_alive)?;
        return Ok(keep_alive);
    }
    let gzip = http::accepts_gzip(request);
    state
        .metrics
        .streamed_responses
        .fetch_add(1, Ordering::Relaxed);
    if gzip {
        state.metrics.gzip_responses.fetch_add(1, Ordering::Relaxed);
    }
    if request.http10 {
        // HTTP/1.0 has no chunked framing: the body is delimited by
        // closing the connection.
        let extra: &[(&str, &str)] = if gzip {
            &[("content-encoding", "gzip")]
        } else {
            &[]
        };
        http::write_response_head(writer, status, http::CONTENT_TYPE_JSON, false, extra)?;
        if gzip {
            // Fast effort: on a streamed response the encode time is
            // first-byte latency, so trade a little ratio for throughput.
            let mut gz = GzipWriter::with_effort(&mut *writer, crate::gzip::Effort::Fast)?;
            body.write_into(&mut gz)?;
            let (_, spent) = gz.finish_timed()?;
            state.metrics.gzip_encode.record_micros(spent);
        } else {
            // Fragments issue many small writes; batch them so a raw
            // identity body is not one syscall per edge row.
            let mut buffered = std::io::BufWriter::with_capacity(http::CHUNK_BYTES, &mut *writer);
            body.write_into(&mut buffered)?;
            buffered.flush()?;
        }
        writer.flush()?;
        return Ok(false);
    }
    let extra: &[(&str, &str)] = if gzip {
        &[
            ("content-encoding", "gzip"),
            ("transfer-encoding", "chunked"),
        ]
    } else {
        &[("transfer-encoding", "chunked")]
    };
    http::write_response_head(writer, status, http::CONTENT_TYPE_JSON, keep_alive, extra)?;
    if gzip {
        // Transfer-Encoding applies over Content-Encoding: the gzip
        // stream is what gets chunk-framed. Fast effort — see above.
        let mut gz =
            GzipWriter::with_effort(ChunkedWriter::new(&mut *writer), crate::gzip::Effort::Fast)?;
        body.write_into(&mut gz)?;
        let (chunked, spent) = gz.finish_timed()?;
        state.metrics.gzip_encode.record_micros(spent);
        chunked.finish()?;
    } else {
        let mut chunked = ChunkedWriter::new(&mut *writer);
        body.write_into(&mut chunked)?;
        chunked.finish()?;
    }
    writer.flush()?;
    Ok(keep_alive)
}

/// What a handled request exposes to the access log beyond its route
/// and status: the dataset and `s` it addressed, and the cache outcome
/// when a cache tier answered it.
#[derive(Debug, Default)]
struct RequestMeta {
    dataset: Option<String>,
    s: Option<u32>,
    cache: Option<&'static str>,
}

/// The wire name of a cache outcome (response bodies, access logs).
fn outcome_name(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Coalesced => "coalesced",
    }
}

/// [`dispatch_full`] without the access-log metadata (tests).
#[cfg(test)]
fn dispatch(state: &Arc<ServerState>, request: &Request) -> (Route, u16, Json) {
    let (route, status, body, _) = dispatch_full(state, request, None);
    (route, status, body)
}

/// The route a request will dispatch to, resolved *before* dispatch so
/// its deadline can be armed first. Kept in lockstep with
/// [`dispatch_full`]'s match; divergence degrades to the global default
/// deadline, never to a wrong handler.
fn peek_route(request: &Request) -> Route {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = match request.method.as_str() {
        "HEAD" => "GET",
        m => m,
    };
    match (method, segments.as_slice()) {
        ("GET", []) => Route::Index,
        ("GET", ["healthz"]) => Route::Health,
        ("GET", ["metrics"]) => Route::Metrics,
        ("GET", ["debug", "pipeline"]) => Route::DebugPipeline,
        ("GET", ["datasets"]) => Route::ListDatasets,
        ("POST", ["datasets"]) => Route::AddDataset,
        ("POST", ["query"]) => Route::Query,
        ("POST", ["admin", "drain"]) => Route::AdminDrain,
        ("GET", ["datasets", _, op]) => dataset_route(op).unwrap_or(Route::NotFound),
        _ => Route::NotFound,
    }
}

/// Routes one request to its handler. Returns `(route, status, body,
/// meta)` — the body as a [`Json`] tree so the response writer can
/// choose the fixed-length or streaming path (and HEAD can count
/// without sending), plus the metadata the access log records.
/// `deadline` is the request's armed watchdog deadline, if any; compute
/// handlers thread it into the cache tiers so expired requests stop
/// waiting (and cancel abandoned flights).
fn dispatch_full(
    state: &Arc<ServerState>,
    request: &Request,
    deadline: Option<&Deadline>,
) -> (Route, u16, Json, RequestMeta) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    // HEAD is GET without the body: route identically, suppress the
    // body at write time (`respond`).
    let method = match request.method.as_str() {
        "HEAD" => "GET",
        m => m,
    };
    let mut meta = RequestMeta::default();
    let outcome = match (method, segments.as_slice()) {
        ("GET", []) => (Route::Index, handle_index()),
        ("GET", ["healthz"]) => (Route::Health, Ok((200, handle_health(state)))),
        ("GET", ["metrics"]) => {
            let result = match request.query_param("format") {
                None | Some("json") => Ok((200, handle_metrics(state))),
                Some("prometheus") => Ok((200, render_prometheus(state))),
                Some(other) => Err((400, format!("unknown metrics format {other:?}"))),
            };
            (Route::Metrics, result)
        }
        ("GET", ["debug", "pipeline"]) => (
            Route::DebugPipeline,
            Ok((200, handle_debug_pipeline(state))),
        ),
        ("GET", ["datasets"]) => (Route::ListDatasets, Ok((200, handle_list(state)))),
        ("POST", ["datasets"]) => (Route::AddDataset, handle_add_dataset(state, request)),
        ("POST", ["query"]) => (Route::Query, handle_query(state, request, deadline)),
        ("POST", ["admin", "drain"]) => (Route::AdminDrain, handle_admin_drain(state, request)),
        ("GET", ["datasets", name, op]) => {
            let (route, result) =
                handle_dataset_op(state, &request.params(), name, op, &mut meta, deadline);
            (route, result)
        }
        // 405 only on paths that exist with another method; everything
        // else (including two-segment /datasets/{d}) is 404.
        (_, ["datasets"])
        | (_, ["datasets", _, _])
        | (_, ["metrics"])
        | (_, ["healthz"])
        | (_, ["debug", "pipeline"])
        | (_, ["admin", "drain"])
        | (_, ["query"]) => (
            Route::NotFound,
            Err((405, format!("method {method} not allowed here"))),
        ),
        _ => (
            Route::NotFound,
            Err((404, format!("no such endpoint {}", request.path))),
        ),
    };
    let (route, result) = outcome;
    match result {
        Ok((status, body)) => (route, status, body, meta),
        Err((status, message)) => (route, status, Json::obj().set("error", message), meta),
    }
}

type HandlerResult = Result<(u16, Json), (u16, String)>;

fn handle_index() -> HandlerResult {
    let endpoints = vec![
        Json::from("GET /healthz"),
        Json::from("GET /metrics  (?format=prometheus for text exposition)"),
        Json::from("GET /debug/pipeline"),
        Json::from("GET /datasets"),
        Json::from("POST /datasets?name=&profile=&seed= | ?name=&path="),
        Json::from("POST /query  (body: JSON array of {dataset, op, ...params})"),
        Json::from("GET /datasets/{d}/stats"),
        Json::from("GET /datasets/{d}/slg?s=&algo=&weighted=&limit="),
        Json::from("GET /datasets/{d}/components?s=&limit="),
        Json::from("GET /datasets/{d}/betweenness?s=&top=&samples=&seed="),
        Json::from("GET /datasets/{d}/spectrum?s="),
        Json::from("GET /datasets/{d}/sweep?max_s="),
    ];
    Ok((
        200,
        Json::obj()
            .set("service", "hyperline-server")
            .set("version", env!("CARGO_PKG_VERSION"))
            .set("endpoints", Json::Arr(endpoints)),
    ))
}

/// `POST /admin/drain?deadline_ms=` — triggers a graceful drain in the
/// background and answers `202` immediately (a synchronous drain from a
/// worker would deadlock waiting on its own connection). Idempotent: a
/// second call while draining reports the state without spawning
/// another drain thread.
// lint: request-root
fn handle_admin_drain(state: &Arc<ServerState>, request: &Request) -> HandlerResult {
    let deadline_ms: u64 = request
        .query_or("deadline_ms", state.drain_deadline.as_millis() as u64)
        .map_err(|e| (400, e))?;
    let bound = Duration::from_millis(deadline_ms);
    let already = state.draining.swap(true, Ordering::Relaxed);
    if !already {
        let background = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("hyperline-drain".to_string())
            .spawn(move || drain_connections(&background, bound));
        if spawned.is_err() {
            // The drain never started; clear the flag so a retry can.
            state.draining.store(false, Ordering::Relaxed);
            return Err((500, "failed to spawn drain thread".to_string()));
        }
    }
    Ok((
        202,
        Json::obj()
            .set("draining", true)
            .set("already_draining", already)
            .set("deadline_ms", deadline_ms),
    ))
}

fn handle_health(state: &ServerState) -> Json {
    Json::obj()
        .set("ok", true)
        .set("datasets", state.registry.len())
        .set("uptime_secs", state.started.elapsed().as_secs())
}

/// Renders a latency histogram's summary for the `/metrics` JSON body:
/// count, exact average/max, and the p50/p90/p99/p999 quantiles.
fn render_histogram(histogram: &hyperline_util::telemetry::Histogram) -> Json {
    let snapshot = histogram.snapshot();
    let count = snapshot.count();
    Json::obj()
        .set("count", count)
        .set("avg_micros", snapshot.sum().checked_div(count).unwrap_or(0))
        .set("max_micros", snapshot.max())
        .set("p50", snapshot.quantile(0.50))
        .set("p90", snapshot.quantile(0.90))
        .set("p99", snapshot.quantile(0.99))
        .set("p999", snapshot.quantile(0.999))
}

/// Renders one tier's statistics for `/metrics`.
fn render_cache_stats(
    stats: crate::cache::CacheStats,
    lock_hold: &hyperline_util::telemetry::Histogram,
) -> Json {
    Json::obj()
        .set("hits", stats.hits)
        .set("misses", stats.misses)
        .set("coalesced", stats.coalesced)
        .set("evictions", stats.evictions)
        .set("negative_hits", stats.negative_hits)
        .set("gave_up", stats.gave_up)
        .set("cancelled", stats.cancelled)
        .set("entries", stats.entries)
        .set("used_bytes", stats.used_bytes)
        .set("budget_bytes", stats.budget_bytes)
        .set("lock_hold", render_histogram(lock_hold))
}

fn handle_metrics(state: &ServerState) -> Json {
    let mut endpoints = Json::obj();
    for route in Route::ALL {
        let c = state.metrics.endpoint(route);
        endpoints = endpoints.set(
            route.name(),
            Json::obj()
                .set("requests", c.requests.load(Ordering::Relaxed))
                .set("errors", c.errors.load(Ordering::Relaxed))
                .set("latency", render_histogram(&c.latency)),
        );
    }
    Json::obj()
        .set(
            "build",
            Json::obj()
                .set("version", env!("CARGO_PKG_VERSION"))
                .set("commit", env!("HYPERLINE_GIT_COMMIT"))
                .set("started_unix", state.started_unix)
                .set("uptime_secs", state.started.elapsed().as_secs()),
        )
        .set(
            "connections",
            Json::obj()
                .set(
                    "accepted",
                    state.metrics.connections_accepted.load(Ordering::Relaxed),
                )
                .set(
                    "rejected",
                    state.metrics.connections_rejected.load(Ordering::Relaxed),
                )
                .set(
                    "bad_requests",
                    state.metrics.bad_requests.load(Ordering::Relaxed),
                ),
        )
        .set(
            "pool",
            Json::obj()
                .set(
                    "queue_depth",
                    state.metrics.queue_depth.load(Ordering::Relaxed),
                )
                .set(
                    "busy_workers",
                    state.metrics.busy_workers.load(Ordering::Relaxed),
                )
                .set("queue_wait", render_histogram(&state.metrics.queue_wait)),
        )
        .set(
            "transport",
            Json::obj()
                .set(
                    "streamed_responses",
                    state.metrics.streamed_responses.load(Ordering::Relaxed),
                )
                .set(
                    "gzip_responses",
                    state.metrics.gzip_responses.load(Ordering::Relaxed),
                )
                .set(
                    "client_aborts",
                    state.metrics.client_aborts.load(Ordering::Relaxed),
                )
                .set(
                    "write_stalls",
                    state.metrics.write_stalls.load(Ordering::Relaxed),
                )
                .set("gzip_encode", render_histogram(&state.metrics.gzip_encode))
                .set(
                    "event_loop",
                    Json::obj()
                        .set(
                            "open_connections",
                            state.metrics.event_loop_connections.load(Ordering::Relaxed),
                        )
                        .set(
                            "wakeups",
                            state.metrics.event_loop_wakeups.load(Ordering::Relaxed),
                        )
                        .set(
                            "eagain_yields",
                            state.metrics.eagain_yields.load(Ordering::Relaxed),
                        ),
                ),
        )
        .set(
            "lifecycle",
            Json::obj()
                .set(
                    "deadline_expired",
                    state.metrics.deadline_expired.load(Ordering::Relaxed),
                )
                .set(
                    "slow_loris_closes",
                    state.metrics.slow_loris_closes.load(Ordering::Relaxed),
                )
                .set("watchdog_expired", state.watchdog.expired_total()),
        )
        .set(
            "drain",
            Json::obj()
                .set("draining", state.draining.load(Ordering::Relaxed))
                .set(
                    "drained_connections",
                    state.metrics.drained_connections.load(Ordering::Relaxed),
                )
                .set(
                    "aborted_connections",
                    state.metrics.aborted_connections.load(Ordering::Relaxed),
                ),
        )
        // Always present (and always zero in release builds, where
        // failpoints compile to no-ops) so the schema is build-stable.
        .set(
            "faults",
            Json::obj().set("injected", failpoint::total_fired()),
        )
        .set(
            "cache",
            Json::obj()
                .set(
                    "artifacts",
                    render_cache_stats(state.cache.stats(), state.cache.lock_hold_histogram()),
                )
                .set(
                    "metrics",
                    render_cache_stats(
                        state.metric_cache.stats(),
                        state.metric_cache.lock_hold_histogram(),
                    ),
                ),
        )
        .set("endpoints", endpoints)
}

/// Renders the whole metrics surface as Prometheus text exposition
/// format 0.0.4 (`GET /metrics?format=prometheus`) — counters, gauges,
/// and full `_bucket`/`_sum`/`_count` histogram series.
fn render_prometheus(state: &ServerState) -> Json {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(8 * 1024);

    let counter = |out: &mut String, name: &str, help: &str, series: &[(String, u64)]| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for (labels, value) in series {
            let _ = writeln!(out, "{name}{labels} {value}");
        }
    };
    let gauge = |out: &mut String, name: &str, help: &str, series: &[(String, i64)]| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (labels, value) in series {
            let _ = writeln!(out, "{name}{labels} {value}");
        }
    };
    /// One exposition histogram family from label → snapshot pairs.
    fn histogram_family(
        out: &mut String,
        name: &str,
        help: &str,
        series: &[(String, hyperline_util::telemetry::HistogramSnapshot)],
    ) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (labels, snapshot) in series {
            // `labels` is either empty or `{key="value"}`; bucket rows
            // splice `le` into the existing label set.
            let inner = labels.trim_start_matches('{').trim_end_matches('}');
            let prefix = if inner.is_empty() {
                String::new()
            } else {
                format!("{inner},")
            };
            for (le, cumulative) in snapshot.cumulative_buckets() {
                let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(
                out,
                "{name}_bucket{{{prefix}le=\"+Inf\"}} {}",
                snapshot.count()
            );
            let _ = writeln!(out, "{name}_sum{labels} {}", snapshot.sum());
            let _ = writeln!(out, "{name}_count{labels} {}", snapshot.count());
        }
    }
    let no_labels = String::new();
    let label = |key: &str, value: &str| format!("{{{key}=\"{value}\"}}");

    let _ = writeln!(
        out,
        "# HELP hyperline_build_info Build metadata (value is always 1)."
    );
    let _ = writeln!(out, "# TYPE hyperline_build_info gauge");
    let _ = writeln!(
        out,
        "hyperline_build_info{{version=\"{}\",commit=\"{}\"}} 1",
        env!("CARGO_PKG_VERSION"),
        env!("HYPERLINE_GIT_COMMIT"),
    );
    gauge(
        &mut out,
        "hyperline_process_start_time_seconds",
        "Unix time the server started.",
        &[(no_labels.clone(), state.started_unix as i64)],
    );
    gauge(
        &mut out,
        "hyperline_uptime_seconds",
        "Seconds since the server started.",
        &[(no_labels.clone(), state.started.elapsed().as_secs() as i64)],
    );

    let m = &state.metrics;
    counter(
        &mut out,
        "hyperline_connections_accepted_total",
        "Connections accepted into the worker queue.",
        &[(
            no_labels.clone(),
            m.connections_accepted.load(Ordering::Relaxed),
        )],
    );
    counter(
        &mut out,
        "hyperline_connections_rejected_total",
        "Connections shed with 503 because the queue was full.",
        &[(
            no_labels.clone(),
            m.connections_rejected.load(Ordering::Relaxed),
        )],
    );
    counter(
        &mut out,
        "hyperline_bad_requests_total",
        "Requests whose HTTP parse failed.",
        &[(no_labels.clone(), m.bad_requests.load(Ordering::Relaxed))],
    );
    counter(
        &mut out,
        "hyperline_streamed_responses_total",
        "Responses streamed instead of buffered.",
        &[(
            no_labels.clone(),
            m.streamed_responses.load(Ordering::Relaxed),
        )],
    );
    counter(
        &mut out,
        "hyperline_gzip_responses_total",
        "Streamed responses compressed with gzip.",
        &[(no_labels.clone(), m.gzip_responses.load(Ordering::Relaxed))],
    );
    counter(
        &mut out,
        "hyperline_client_aborts_total",
        "Mid-stream client disconnects handled as quiet closes.",
        &[(no_labels.clone(), m.client_aborts.load(Ordering::Relaxed))],
    );
    counter(
        &mut out,
        "hyperline_write_stalls_total",
        "Response writes aborted because the socket stalled past the write timeout.",
        &[(no_labels.clone(), m.write_stalls.load(Ordering::Relaxed))],
    );
    counter(
        &mut out,
        "hyperline_slow_loris_closes_total",
        "Request heads abandoned by the cumulative head deadline.",
        &[(
            no_labels.clone(),
            m.slow_loris_closes.load(Ordering::Relaxed),
        )],
    );
    counter(
        &mut out,
        "hyperline_deadline_expired_total",
        "Requests whose deadline expired before their response finished.",
        &[(
            no_labels.clone(),
            m.deadline_expired.load(Ordering::Relaxed),
        )],
    );
    counter(
        &mut out,
        "hyperline_drained_connections_total",
        "Keep-alive connections that closed cleanly during a drain.",
        &[(
            no_labels.clone(),
            m.drained_connections.load(Ordering::Relaxed),
        )],
    );
    counter(
        &mut out,
        "hyperline_aborted_connections_total",
        "Connections hard-closed because they outlived the drain bound.",
        &[(
            no_labels.clone(),
            m.aborted_connections.load(Ordering::Relaxed),
        )],
    );
    counter(
        &mut out,
        "hyperline_faults_injected_total",
        "Failpoint faults injected (always zero in release builds).",
        &[(no_labels.clone(), failpoint::total_fired())],
    );
    gauge(
        &mut out,
        "hyperline_draining",
        "1 while a graceful drain is in progress.",
        &[(
            no_labels.clone(),
            i64::from(state.draining.load(Ordering::Relaxed)),
        )],
    );

    gauge(
        &mut out,
        "hyperline_queue_depth",
        "Connections waiting in the accept queue.",
        &[(no_labels.clone(), m.queue_depth.load(Ordering::Relaxed))],
    );
    gauge(
        &mut out,
        "hyperline_busy_workers",
        "Workers currently serving a connection.",
        &[(no_labels.clone(), m.busy_workers.load(Ordering::Relaxed))],
    );
    gauge(
        &mut out,
        "hyperline_event_loop_open_connections",
        "Connections currently owned by the event loop.",
        &[(
            no_labels.clone(),
            m.event_loop_connections.load(Ordering::Relaxed),
        )],
    );
    counter(
        &mut out,
        "hyperline_event_loop_wakeups_total",
        "epoll_wait returns processed by the event loop.",
        &[(
            no_labels.clone(),
            m.event_loop_wakeups.load(Ordering::Relaxed),
        )],
    );
    counter(
        &mut out,
        "hyperline_event_loop_eagain_total",
        "Socket drains that yielded on EAGAIN and re-armed EPOLLOUT.",
        &[(no_labels.clone(), m.eagain_yields.load(Ordering::Relaxed))],
    );
    histogram_family(
        &mut out,
        "hyperline_queue_wait_micros",
        "Time connections waited in the accept queue, microseconds.",
        &[(no_labels.clone(), m.queue_wait.snapshot())],
    );
    histogram_family(
        &mut out,
        "hyperline_gzip_encode_micros",
        "Time spent inside the gzip encoder per response, microseconds.",
        &[(no_labels.clone(), m.gzip_encode.snapshot())],
    );

    let requests: Vec<(String, u64)> = Route::ALL
        .iter()
        .map(|&r| {
            (
                label("route", r.name()),
                m.endpoint(r).requests.load(Ordering::Relaxed),
            )
        })
        .collect();
    counter(
        &mut out,
        "hyperline_requests_total",
        "Requests served, by route.",
        &requests,
    );
    let errors: Vec<(String, u64)> = Route::ALL
        .iter()
        .map(|&r| {
            (
                label("route", r.name()),
                m.endpoint(r).errors.load(Ordering::Relaxed),
            )
        })
        .collect();
    counter(
        &mut out,
        "hyperline_request_errors_total",
        "Requests answered 4xx/5xx, by route.",
        &errors,
    );
    let latencies: Vec<(String, hyperline_util::telemetry::HistogramSnapshot)> = Route::ALL
        .iter()
        .map(|&r| (label("route", r.name()), m.endpoint(r).latency.snapshot()))
        .collect();
    histogram_family(
        &mut out,
        "hyperline_request_duration_micros",
        "Request handling latency, microseconds, by route.",
        &latencies,
    );

    let tiers = [
        (
            "artifacts",
            state.cache.stats(),
            state.cache.lock_hold_histogram(),
        ),
        (
            "metrics",
            state.metric_cache.stats(),
            state.metric_cache.lock_hold_histogram(),
        ),
    ];
    for (family, pick) in [
        ("hits", 0usize),
        ("misses", 1),
        ("coalesced", 2),
        ("evictions", 3),
        ("negative_hits", 4),
        ("gave_up", 5),
        ("cancelled", 6),
    ] {
        let series: Vec<(String, u64)> = tiers
            .iter()
            .map(|(tier, stats, _)| {
                let value = [
                    stats.hits,
                    stats.misses,
                    stats.coalesced,
                    stats.evictions,
                    stats.negative_hits,
                    stats.gave_up,
                    stats.cancelled,
                ][pick];
                (label("tier", tier), value)
            })
            .collect();
        counter(
            &mut out,
            &format!("hyperline_cache_{family}_total"),
            &format!("Cache {family}, by tier."),
            &series,
        );
    }
    for (family, help, pick) in [
        ("entries", "Live cache entries, by tier.", 0usize),
        ("used_bytes", "Bytes resident in the cache, by tier.", 1),
        ("budget_bytes", "Cache byte budget, by tier.", 2),
    ] {
        let series: Vec<(String, i64)> = tiers
            .iter()
            .map(|(tier, stats, _)| {
                let value = [
                    stats.entries as i64,
                    stats.used_bytes as i64,
                    stats.budget_bytes as i64,
                ][pick];
                (label("tier", tier), value)
            })
            .collect();
        gauge(
            &mut out,
            &format!("hyperline_cache_{family}"),
            help,
            &series,
        );
    }
    let holds: Vec<(String, hyperline_util::telemetry::HistogramSnapshot)> = tiers
        .iter()
        .map(|(tier, _, hold)| (label("tier", tier), hold.snapshot()))
        .collect();
    histogram_family(
        &mut out,
        "hyperline_cache_lock_hold_micros",
        "Time the cache mutex was held per acquisition, microseconds.",
        &holds,
    );

    Json::Text {
        content_type: http::CONTENT_TYPE_PROMETHEUS,
        body: out,
    }
}

fn handle_list(state: &ServerState) -> Json {
    let datasets: Vec<Json> = state
        .registry
        .list()
        .into_iter()
        .map(|(name, d)| {
            let source = match &d.source {
                DatasetSource::File(path) => Json::obj().set("file", path.as_str()),
                DatasetSource::Profile { profile, seed } => Json::obj()
                    .set("profile", profile.as_str())
                    .set("seed", *seed),
                DatasetSource::Inline => Json::obj().set("inline", true),
            };
            Json::obj()
                .set("name", name)
                .set("vertices", d.hypergraph.num_vertices())
                .set("hyperedges", d.hypergraph.num_edges())
                .set("incidences", d.hypergraph.num_incidences())
                .set("source", source)
        })
        .collect();
    Json::obj().set("datasets", Json::Arr(datasets))
}

fn handle_add_dataset(state: &ServerState, request: &Request) -> HandlerResult {
    let name = request.query_param("name");
    let seed: u64 = request.query_or("seed", 42).map_err(|e| (400, e))?;
    let loaded = match (request.query_param("profile"), request.query_param("path")) {
        (Some(profile), None) => state.registry.load_profile(profile, seed, name),
        (None, Some(path)) => {
            let full = resolve_data_path(state, path)?;
            state.registry.load_file(&full, name)
        }
        _ => {
            return Err((
                400,
                "exactly one of ?profile= or ?path= is required".to_string(),
            ))
        }
    };
    let name = loaded.map_err(|e| (400, e))?;
    // A replaced dataset must not serve artifacts *or metrics* of its
    // predecessor; both tiers invalidate together.
    state.invalidate_dataset(&name);
    // The dataset was inserted a moment ago, but a concurrent DELETE may
    // race the re-read; answer 500 rather than panic the worker.
    let Some(d) = state.registry.get(&name) else {
        return Err((500, format!("dataset '{name}' vanished during load")));
    };
    Ok((
        201,
        Json::obj()
            .set("name", name)
            .set("vertices", d.hypergraph.num_vertices())
            .set("hyperedges", d.hypergraph.num_edges()),
    ))
}

/// Resolves a client-supplied `path=` against the configured data root.
/// Paths must be relative, `..`-free, and the feature must be enabled —
/// this is an HTTP-reachable file read, so it never touches anything
/// outside the sandbox (no absolute paths, no traversal, no existence
/// oracle for the rest of the filesystem).
fn resolve_data_path(state: &ServerState, path: &str) -> Result<String, (u16, String)> {
    use std::path::Component;
    let Some(root) = &state.data_root else {
        return Err((
            403,
            "path loading is disabled; start the server with --data-root=DIR".to_string(),
        ));
    };
    let requested = std::path::Path::new(path);
    let traversal = requested
        .components()
        .any(|c| !matches!(c, Component::Normal(_) | Component::CurDir));
    if requested.is_absolute() || traversal {
        return Err((
            403,
            format!("path {path:?} must be relative to the data root, without '..'"),
        ));
    }
    Ok(root.join(requested).to_string_lossy().into_owned())
}

/// Shared parameter parsing for the per-dataset query endpoints.
struct QueryParams {
    s: u32,
    algorithm: AlgoKind,
    weighted: bool,
}

fn parse_query_params(params: &Params<'_>) -> Result<QueryParams, (u16, String)> {
    let s: u32 = params.parse_or("s", 2).map_err(|e| (400, e))?;
    if s == 0 {
        return Err((400, "s must be at least 1".to_string()));
    }
    let algorithm = match params.get("algo") {
        None => AlgoKind::Algo2,
        Some(raw) => {
            AlgoKind::from_name(raw).ok_or_else(|| (400, format!("unknown algorithm {raw:?}")))?
        }
    };
    let weighted = matches!(params.get("weighted"), Some("1" | "true"));
    if weighted && algorithm != AlgoKind::Algo2 {
        return Err((400, "weighted=1 requires algo=algo2".to_string()));
    }
    Ok(QueryParams {
        s,
        algorithm,
        weighted,
    })
}

/// The route of a per-dataset operation name, if it exists.
fn dataset_route(op: &str) -> Option<Route> {
    match op {
        "stats" => Some(Route::Stats),
        "slg" => Some(Route::Slg),
        "components" => Some(Route::Components),
        "betweenness" => Some(Route::Betweenness),
        "spectrum" => Some(Route::Spectrum),
        "sweep" => Some(Route::Sweep),
        _ => None,
    }
}

fn handle_dataset_op(
    state: &ServerState,
    params: &Params<'_>,
    name: &str,
    op: &str,
    meta: &mut RequestMeta,
    deadline: Option<&Deadline>,
) -> (Route, HandlerResult) {
    let Some(route) = dataset_route(op) else {
        return (
            Route::NotFound,
            Err((404, format!("no such dataset operation {op:?}"))),
        );
    };
    meta.dataset = Some(name.to_string());
    let Some(dataset) = state.registry.get(name) else {
        return (route, Err((404, format!("no dataset named {name:?}"))));
    };
    let result = match route {
        Route::Stats => handle_stats(state, name, &dataset.hypergraph),
        Route::Sweep => handle_sweep(state, params, name, meta, deadline),
        _ => handle_cached_op(state, params, route, name, meta, deadline),
    };
    (route, result)
}

/// Maps a cache-tier failure to an HTTP one: a cancellation is the
/// request's own deadline (504); everything else is a compute error.
fn cache_err(message: String) -> (u16, String) {
    if message == cancel::CANCELLED {
        (504, message)
    } else {
        (500, message)
    }
}

/// Runs `f` with the core budget split across the requests currently in
/// a compute-heavy handler: with `C` cores and `N` such requests, each
/// gets `max(1, C / N)` workers. A burst of cache misses or Stage-5
/// metric queries (betweenness runs a parallel kernel per request)
/// degrades to pipelining instead of spawning `N × C` threads.
///
/// Call sites are structured so these sections never nest (a metric
/// flight resolves its artifact *before* entering its own budget
/// section; a batch wraps nothing itself) — nesting would register one
/// request twice and halve its own budget, so keep it that way.
fn with_compute_budget<T>(state: &ServerState, f: impl FnOnce() -> T) -> T {
    struct ActiveGuard<'a>(&'a std::sync::atomic::AtomicUsize);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let active = state.active_computations.fetch_add(1, Ordering::Relaxed) + 1;
    let _guard = ActiveGuard(&state.active_computations);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hyperline_util::parallel::with_threads((cores / active).max(1), f)
}

fn handle_stats(state: &ServerState, name: &str, h: &Hypergraph) -> HandlerResult {
    let pipeline = {
        let spans = state.pipeline_spans.lock().unwrap();
        spans.get(name).map(stage_tree).unwrap_or_else(Json::obj)
    };
    Ok((
        200,
        Json::obj()
            .set("dataset", name)
            .set("vertices", h.num_vertices())
            .set("hyperedges", h.num_edges())
            .set("incidences", h.num_incidences())
            .set("mean_vertex_degree", h.mean_vertex_degree())
            .set("mean_edge_size", h.mean_edge_size())
            .set("max_vertex_degree", h.max_vertex_degree())
            .set("max_edge_size", h.max_edge_size())
            // Aggregated cold-computation stage spans — empty until the
            // first cache miss computes something for this dataset.
            .set("pipeline", pipeline),
    ))
}

/// Renders one dataset's aggregated stage spans: stage path →
/// `{count, total_micros, max_micros}`, paths sorted so nested stages
/// (`counting/worker`) print under their parents.
fn stage_tree(stages: &FxHashMap<String, StageAgg>) -> Json {
    let mut paths: Vec<&String> = stages.keys().collect();
    paths.sort_unstable();
    let mut tree = Json::obj();
    for path in paths {
        let agg = &stages[path];
        tree = tree.set(
            path.as_str(),
            Json::obj()
                .set("count", agg.count)
                .set("total_micros", agg.total_nanos / 1_000)
                .set("max_micros", agg.max_nanos / 1_000),
        );
    }
    tree
}

/// `GET /debug/pipeline` — every dataset's aggregated stage spans.
fn handle_debug_pipeline(state: &ServerState) -> Json {
    let spans = state.pipeline_spans.lock().unwrap();
    let mut names: Vec<&String> = spans.keys().collect();
    names.sort_unstable();
    let mut datasets = Json::obj();
    for name in names {
        datasets = datasets.set(name.as_str(), stage_tree(&spans[name]));
    }
    Json::obj().set("datasets", datasets)
}

/// Resolves `key` through the artifact tier (computing on miss).
fn get_artifact(
    state: &ServerState,
    key: &CacheKey,
    deadline: Option<&Deadline>,
) -> Result<(Arc<Artifact>, CacheOutcome), (u16, String)> {
    state
        .cache
        .get_or_compute_cancellable(key, deadline, || {
            // The hypergraph is re-fetched *inside* the flight: a
            // replacement racing an earlier lookup would otherwise slip
            // past the cache's generation check and pin a stale
            // artifact. Any invalidation after this point bumps the
            // generation the flight observed, which blocks caching.
            let h = state
                .registry
                .get(&key.dataset)
                .ok_or_else(|| format!("dataset {:?} was removed", key.dataset))?
                .hypergraph;
            // Stage spans are collected on cold computations only —
            // the flight owner pays a thread-local context, warm
            // traffic pays nothing.
            let (result, report) =
                telemetry::collect(|| with_compute_budget(state, || compute_artifact(&h, key)));
            state.record_pipeline(&key.dataset, &report);
            result
        })
        .map_err(cache_err)
}

/// `GET /datasets/{d}/sweep?max_s=` — answered from the metric tier,
/// which in turn reuses (and populates) the artifact tier's per-s
/// entries: only the s values with no cached artifact are computed, all
/// of them in **one** Algorithm-3 ensemble pass, and each freshly built
/// `L_s(H)` is inserted into the artifact tier so later `/slg?s=` (and
/// metric) queries for any swept `s` start warm.
fn handle_sweep(
    state: &ServerState,
    params: &Params<'_>,
    name: &str,
    meta: &mut RequestMeta,
    deadline: Option<&Deadline>,
) -> HandlerResult {
    let max_s: u32 = params.parse_or("max_s", 16).map_err(|e| (400, e))?;
    if !(1..=4096).contains(&max_s) {
        return Err((400, "max_s must be in 1..=4096".to_string()));
    }
    let metric_key = MetricKey {
        artifact: sweep_pseudo_key(name),
        metric: MetricKind::Sweep { max_s },
    };
    let (result, outcome) = state
        .metric_cache
        .get_or_compute_cancellable(&metric_key, deadline, || {
            let (result, report) = telemetry::collect(|| compute_sweep(state, name, max_s));
            state.record_pipeline(name, &report);
            result
        })
        .map_err(cache_err)?;
    meta.cache = Some(outcome_name(outcome));
    debug_assert!(matches!(&*result, MetricResult::Sweep(_)));
    Ok((
        200,
        Json::obj()
            .set("dataset", name)
            .set("max_s", max_s)
            .set("counts", Json::Stream(Arc::new(SweepRows { result }))),
    ))
}

/// The artifact key a sweep's per-s probes and inserts use for `s`.
fn sweep_artifact_key(name: &str, s: u32) -> CacheKey {
    CacheKey {
        dataset: name.to_string(),
        s,
        algorithm: AlgoKind::Algo2,
        weighted: false,
    }
}

/// The artifact slot of a whole-sweep metric entry (`s = 0` is not a
/// valid query, so it cannot collide with a real artifact key).
fn sweep_pseudo_key(name: &str) -> CacheKey {
    sweep_artifact_key(name, 0)
}

/// Computes the sweep counts for the metric tier: probe the artifact
/// tier per `s`, ensemble-build only the missing values, and insert the
/// new artifacts behind a generation fence so a dataset replacement
/// racing the sweep can never pin stale per-s entries.
fn compute_sweep(
    state: &ServerState,
    name: &str,
    max_s: u32,
) -> Result<(MetricResult, usize), String> {
    // Generation first, hypergraph second: if a replacement lands in
    // between, the recorded generation is already stale and every insert
    // below is dropped (fresh data is simply recomputed later — the
    // conservative direction).
    let generation = state.cache.generation(name);
    let h = state
        .registry
        .get(name)
        .ok_or_else(|| format!("dataset {name:?} was removed"))?
        .hypergraph;
    let mut counts: Vec<(u32, usize)> = Vec::with_capacity(max_s as usize);
    let mut missing: Vec<u32> = Vec::new();
    for s in 1..=max_s {
        match state.cache.lookup(&sweep_artifact_key(name, s)) {
            Some(artifact) => counts.push((s, artifact.slg.num_edges())),
            None => {
                counts.push((s, usize::MAX)); // patched below
                missing.push(s);
            }
        }
    }
    if !missing.is_empty() {
        let built = with_compute_budget(state, || {
            build_slinegraphs_over_s(&h, &missing, &Strategy::default())
        });
        for (s, slg) in built {
            let count = slg.num_edges();
            counts[(s - 1) as usize] = (s, count);
            let artifact = Artifact {
                slg,
                weighted_edges: None,
            };
            let bytes = artifact.approx_bytes();
            state
                .cache
                .insert_if_current(sweep_artifact_key(name, s), generation, artifact, bytes);
        }
    }
    debug_assert!(counts.iter().all(|&(_, c)| c != usize::MAX));
    let result = MetricResult::Sweep(counts);
    let bytes = result.approx_bytes();
    Ok((result, bytes))
}

/// The per-dataset query endpoints answered from the cache tiers:
/// `/slg` from the artifact tier, the Stage-5 metrics (components,
/// betweenness, spectrum) from the metric tier layered over it.
fn handle_cached_op(
    state: &ServerState,
    params: &Params<'_>,
    route: Route,
    name: &str,
    meta: &mut RequestMeta,
    deadline: Option<&Deadline>,
) -> HandlerResult {
    let query = parse_query_params(params)?;
    meta.s = Some(query.s);
    let key = CacheKey {
        dataset: name.to_string(),
        s: query.s,
        algorithm: query.algorithm,
        weighted: query.weighted,
    };
    let base = Json::obj()
        .set("dataset", name)
        .set("s", query.s)
        .set("algorithm", query.algorithm.name());

    if route == Route::Slg {
        // Validate render-time params before resolving the artifact: a
        // doomed request must 400 without running the construction.
        let limit: usize = params.parse_or("limit", 100_000).map_err(|e| (400, e))?;
        let (artifact, outcome) = get_artifact(state, &key, deadline)?;
        let slg = &artifact.slg;
        // The fragment keys row shape off the artifact's own weights; a
        // mismatch with the request would mean a cache-key bug serving
        // wrong rows, so fail loudly instead of answering 200.
        if query.weighted != artifact.weighted_edges.is_some() {
            return Err((
                500,
                "cached artifact does not match the weighted flag".to_string(),
            ));
        }
        meta.cache = Some(outcome_name(outcome));
        return Ok((
            200,
            base.set("cache", outcome_name(outcome))
                .set("num_vertices", slg.num_vertices())
                .set("num_edges", slg.num_edges())
                .set("truncated", slg.num_edges() > limit)
                // The edge list streams from the cached artifact at write
                // time — the response never materializes a body-sized
                // buffer, which is what keeps a `?limit=`-less full edge
                // list O(1) in memory.
                .set(
                    "edges",
                    Json::Stream(Arc::new(EdgeRows { artifact, limit })),
                ),
        ));
    }

    // Stage-5 metric routes: resolved through the metric tier. The
    // response body deliberately carries no per-request cache-outcome
    // field — repeated identical requests must be **byte-identical**
    // (outcomes are visible in `/metrics` per tier). Render-time
    // parameters (`top`, `limit`) are validated before the compute so a
    // doomed request answers 400 without running a Stage-5 kernel.
    let metric = match route {
        Route::Components => {
            params
                .parse_or::<usize>("limit", 1_000)
                .map_err(|e| (400, e))?;
            MetricKind::Components
        }
        Route::Betweenness => {
            params.parse_or::<usize>("top", 10).map_err(|e| (400, e))?;
            let samples: u32 = params.parse_or("samples", 0).map_err(|e| (400, e))?;
            let seed: u64 = params.parse_or("seed", 42).map_err(|e| (400, e))?;
            // Normalize the key so equivalent requests share one entry:
            // the sampler clamps its source count to the line graph's
            // vertex count n, and n ≤ the dataset's hyperedge count m —
            // so any samples ≥ m computes the same ranking as samples=m
            // (n itself is unknown until the artifact is built, so m is
            // the tightest cheap bound). The seed only affects sampling;
            // pinning it for the exact variant keeps `?seed=7` and
            // `?seed=42` from computing identical rankings twice.
            let num_hyperedges = state
                .registry
                .get(name)
                .map(|d| d.hypergraph.num_edges())
                .unwrap_or(usize::MAX);
            let samples = samples.min(u32::try_from(num_hyperedges).unwrap_or(u32::MAX));
            MetricKind::Betweenness {
                samples,
                seed: if samples == 0 { 0 } else { seed },
            }
        }
        Route::Spectrum => MetricKind::Spectrum,
        _ => unreachable!("handle_cached_op only serves cached routes"),
    };
    let metric_key = MetricKey {
        artifact: key.clone(),
        metric,
    };
    let (result, outcome) = state
        .metric_cache
        .get_or_compute_cancellable(&metric_key, deadline, || {
            // Resolving the artifact *inside* the metric flight re-runs
            // the registry fetch under the artifact tier's generation
            // fence; the metric tier's own fence (bumped by the same
            // invalidation) then blocks caching a result computed from a
            // replaced dataset. The deadline attaches to the nested
            // artifact flight too — both interests release at expiry.
            let (artifact, _) =
                get_artifact(state, &key, deadline).map_err(|(_, message)| message)?;
            let (result, report) = telemetry::collect(|| {
                let _stage5 = Span::enter("stage5");
                with_compute_budget(state, || compute_metric(&artifact.slg, metric))
            });
            state.record_pipeline(name, &report);
            let bytes = result.approx_bytes();
            Ok((result, bytes))
        })
        .map_err(cache_err)?;
    meta.cache = Some(outcome_name(outcome));
    render_metric(base, params, &result)
}

/// Runs one Stage-5 kernel (the expensive, cache-once part).
fn compute_metric(slg: &SLineGraph, metric: MetricKind) -> MetricResult {
    match metric {
        MetricKind::Components => MetricResult::Components(slg.connected_components()),
        MetricKind::Betweenness { samples, seed } => MetricResult::Betweenness(if samples == 0 {
            slg.betweenness()
        } else {
            slg.betweenness_sampled(samples as usize, seed)
        }),
        MetricKind::Spectrum => MetricResult::Spectrum {
            num_vertices: slg.num_vertices(),
            num_edges: slg.num_edges(),
            diameter: slg.s_diameter(),
            algebraic_connectivity: slg.algebraic_connectivity(),
        },
        MetricKind::Sweep { .. } => unreachable!("sweep computes via compute_sweep"),
    }
}

/// Renders a cached metric result with this request's render-time
/// parameters (`limit`, `top`). Takes the `Arc` so potentially large
/// results (component lists) stream from the cached value instead of
/// being rendered into the response tree.
fn render_metric(base: Json, params: &Params<'_>, result: &Arc<MetricResult>) -> HandlerResult {
    match &**result {
        MetricResult::Components(components) => {
            let limit: usize = params.parse_or("limit", 1_000).map_err(|e| (400, e))?;
            let total = components.len();
            Ok((
                200,
                base.set("count", total)
                    .set("truncated", total > limit)
                    .set(
                        "components",
                        Json::Stream(Arc::new(ComponentRows {
                            result: Arc::clone(result),
                            limit,
                        })),
                    ),
            ))
        }
        MetricResult::Betweenness(ranking) => {
            let top: usize = params.parse_or("top", 10).map_err(|e| (400, e))?;
            let rows: Vec<Json> = ranking
                .iter()
                .take(top)
                .map(|&(edge, score)| Json::obj().set("edge", edge).set("score", score))
                .collect();
            Ok((200, base.set("top", top).set("ranking", Json::Arr(rows))))
        }
        MetricResult::Spectrum {
            num_vertices,
            num_edges,
            diameter,
            algebraic_connectivity,
        } => Ok((
            200,
            base.set("num_vertices", *num_vertices)
                .set("num_edges", *num_edges)
                .set("diameter", *diameter)
                .set("algebraic_connectivity", *algebraic_connectivity),
        )),
        MetricResult::Sweep(_) => unreachable!("sweep renders in handle_sweep"),
    }
}

/// Maximum number of sub-queries one `POST /query` batch may carry.
const MAX_BATCH_QUERIES: usize = 64;

/// `POST /query` — a JSON array of sub-queries answered in one
/// round-trip. Each sub-query is an object with `dataset` and `op`
/// (any per-dataset operation: `stats`, `slg`, `components`,
/// `betweenness`, `spectrum`, `sweep`) plus that operation's usual
/// query parameters as scalar fields. Items run sequentially, so the
/// batch never holds more than one compute-budget slot — a 64-item
/// batch competes for cores like one request, not 64 — and failures are
/// reported per item, so one bad sub-query does not void the rest.
fn handle_query(
    state: &ServerState,
    request: &Request,
    deadline: Option<&Deadline>,
) -> HandlerResult {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| (400, "request body is not UTF-8".to_string()))?;
    if text.trim().is_empty() {
        return Err((
            400,
            "request body must be a JSON array of sub-queries".to_string(),
        ));
    }
    let parsed = Json::parse(text).map_err(|e| (400, format!("invalid JSON body: {e}")))?;
    let items = parsed.as_array().ok_or_else(|| {
        (
            400,
            "request body must be a JSON array of sub-queries".to_string(),
        )
    })?;
    if items.is_empty() {
        return Err((400, "batch needs at least one sub-query".to_string()));
    }
    if items.len() > MAX_BATCH_QUERIES {
        return Err((
            400,
            format!("batch exceeds {MAX_BATCH_QUERIES} sub-queries"),
        ));
    }
    // Items run sequentially, so the batch occupies at most one
    // compute-budget slot at a time — each sub-query's own kernels
    // register exactly like the equivalent GET would. No outer budget
    // wrapper: it would pin a slot even while the batch is merely
    // waiting on another request's flight or rendering cache hits,
    // shrinking every concurrent request's budget for no compute.
    let results: Vec<Json> = items
        .iter()
        .map(|item| match answer_sub_query(state, item, deadline) {
            Ok((_, body)) => body,
            Err((status, message)) => {
                // Tag failures with whatever identifies the item, so
                // mixed success/failure batches stay correlatable.
                let mut failure = Json::obj().set("status", status).set("error", message);
                if let Some(dataset) = item.get("dataset").and_then(Json::as_str) {
                    failure = failure.set("dataset", dataset);
                }
                if let Some(op) = item.get("op").and_then(Json::as_str) {
                    failure = failure.set("op", op);
                }
                failure
            }
        })
        .collect();
    Ok((
        200,
        Json::obj()
            .set("count", results.len())
            .set("results", Json::Arr(results)),
    ))
}

/// Answers one sub-query of a batch by converting its scalar fields to
/// the common parameter form and reusing the per-dataset handlers — a
/// batch item produces the same body as the equivalent GET, plus an
/// `op` tag so callers can correlate items.
fn answer_sub_query(
    state: &ServerState,
    item: &Json,
    deadline: Option<&Deadline>,
) -> HandlerResult {
    let Some(fields) = item.entries() else {
        return Err((400, "sub-query must be a JSON object".to_string()));
    };
    let dataset = item.get("dataset").and_then(Json::as_str).ok_or_else(|| {
        (
            400,
            "sub-query needs a string \"dataset\" field".to_string(),
        )
    })?;
    let op = item
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| (400, "sub-query needs a string \"op\" field".to_string()))?;
    let mut pairs: Vec<(String, String)> = Vec::with_capacity(fields.len());
    for (key, value) in fields {
        if key == "dataset" || key == "op" {
            continue;
        }
        let rendered = match value {
            Json::Str(s) => s.clone(),
            Json::Int(i) => i.to_string(),
            Json::Float(x) => format!("{x}"),
            Json::Bool(b) => b.to_string(),
            Json::Null => continue, // explicit null = absent
            _ => return Err((400, format!("sub-query field {key:?} must be a scalar"))),
        };
        pairs.push((key.clone(), rendered));
    }
    // Batch items share the batch's access-log line; per-item metadata
    // is discarded.
    let mut meta = RequestMeta::default();
    let (_route, result) =
        handle_dataset_op(state, &Params(&pairs), dataset, op, &mut meta, deadline);
    // Tag the body with the op so batch callers can correlate items.
    result.map(|(status, body)| (status, body.set("op", op)))
}

/// Builds the artifact for `key` (runs outside the cache lock; the
/// single-flight layer guarantees one concurrent builder per key).
fn compute_artifact(h: &Hypergraph, key: &CacheKey) -> Result<(Artifact, usize), String> {
    let strategy = Strategy::default();
    let (edges, weighted_edges) = if key.weighted {
        let (mut triples, _stats) = algo2_slinegraph_weighted(h, key.s, &strategy);
        for t in triples.iter_mut() {
            if t.0 > t.1 {
                *t = (t.1, t.0, t.2);
            }
        }
        triples.sort_unstable();
        let edges = triples.iter().map(|&(i, j, _)| (i, j)).collect();
        (edges, Some(triples))
    } else {
        let edges = match key.algorithm {
            AlgoKind::Algo2 => algo2_slinegraph(h, key.s, &strategy).edges,
            AlgoKind::Algo1 => algo1_slinegraph(h, key.s, &strategy).edges,
            AlgoKind::Naive => naive_slinegraph(h, key.s, &strategy).edges,
            AlgoKind::Spgemm => spgemm_slinegraph(h, key.s, true).edges,
        };
        (edges, None)
    };
    let slg = SLineGraph::new_squeezed(key.s, h.num_edges(), edges);
    let artifact = Artifact {
        slg,
        weighted_edges,
    };
    let bytes = artifact.approx_bytes();
    Ok((artifact, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> Server {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_mb: 16,
            queue_depth: 16,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        })
        .unwrap();
        server
            .registry()
            .insert("paper", Hypergraph::paper_example(), DatasetSource::Inline);
        server
    }

    fn request(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), http::parse_query(q).unwrap()),
            None => (path.to_string(), Vec::new()),
        };
        Request {
            method: "GET".to_string(),
            path,
            query,
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
        }
    }

    /// Dispatches and renders the body — most tests assert on the
    /// rendered text regardless of whether the tree streams.
    fn dispatch_text(state: &Arc<ServerState>, request: &Request) -> (Route, u16, String) {
        let (route, status, body) = dispatch(state, request);
        (route, status, body.render())
    }

    #[test]
    fn dispatch_routes_and_statuses() {
        let server = test_server();
        let state = server.state();
        let (route, status, _) = dispatch_text(state, &request("/"));
        assert_eq!((route, status), (Route::Index, 200));
        let (route, status, _) = dispatch_text(state, &request("/healthz"));
        assert_eq!((route, status), (Route::Health, 200));
        let (route, status, _) = dispatch_text(state, &request("/nope"));
        assert_eq!((route, status), (Route::NotFound, 404));
        // Two-segment dataset paths are unknown routes (404), not 405.
        let (route, status, _) = dispatch_text(state, &request("/datasets/paper"));
        assert_eq!((route, status), (Route::NotFound, 404));
        // Wrong method on a real route is 405.
        let mut req = request("/datasets/paper/slg");
        req.method = "DELETE".to_string();
        let (_, status, _) = dispatch_text(state, &req);
        assert_eq!(status, 405);
        let (route, status, _) = dispatch_text(state, &request("/datasets/missing/slg"));
        assert_eq!((route, status), (Route::Slg, 404));
        let (_, status, body) = dispatch_text(state, &request("/datasets/paper/slg?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"cache\":\"miss\""), "{body}");
        let (_, status, body) = dispatch_text(state, &request("/datasets/paper/slg?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"cache\":\"hit\""), "{body}");
    }

    #[test]
    fn slg_body_contains_paper_triangle() {
        let server = test_server();
        let (_, status, body) = dispatch_text(server.state(), &request("/datasets/paper/slg?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"edges\":[[0,1],[0,2],[1,2]]"), "{body}");
        assert!(body.contains("\"num_edges\":3"));
    }

    #[test]
    fn weighted_slg_reports_overlaps() {
        let server = test_server();
        let (_, status, body) = dispatch_text(
            server.state(),
            &request("/datasets/paper/slg?s=2&weighted=1"),
        );
        assert_eq!(status, 200);
        // inc(0,1)=2, inc(0,2)=3, inc(1,2)=3 on the paper example.
        assert!(
            body.contains("\"edges\":[[0,1,2],[0,2,3],[1,2,3]]"),
            "{body}"
        );
    }

    #[test]
    fn bad_parameters_answer_400() {
        let server = test_server();
        let state = server.state();
        for path in [
            "/datasets/paper/slg?s=0",
            "/datasets/paper/slg?s=banana",
            "/datasets/paper/slg?algo=quantum",
            "/datasets/paper/slg?weighted=1&algo=naive",
            "/datasets/paper/sweep?max_s=0",
        ] {
            let (_, status, _) = dispatch_text(state, &request(path));
            assert_eq!(status, 400, "{path}");
        }
    }

    #[test]
    fn components_betweenness_spectrum_sweep() {
        let server = test_server();
        let state = server.state();
        let (_, status, body) = dispatch_text(state, &request("/datasets/paper/components?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"count\":1"));
        assert!(body.contains("[0,1,2]"));
        let (_, status, body) =
            dispatch_text(state, &request("/datasets/paper/betweenness?s=2&top=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"ranking\""));
        let (_, status, body) = dispatch_text(state, &request("/datasets/paper/spectrum?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"algebraic_connectivity\""));
        let (_, status, body) = dispatch_text(state, &request("/datasets/paper/sweep?max_s=4"));
        assert_eq!(status, 200);
        assert!(
            body.contains("\"counts\":[[1,4],[2,3],[3,2],[4,0]]"),
            "{body}"
        );
    }

    #[test]
    fn path_loading_is_sandboxed() {
        // Disabled without a data root.
        let server = test_server();
        let mut req = request("/datasets?path=somefile.hgr");
        req.method = "POST".to_string();
        let (_, status, body) = dispatch_text(server.state(), &req);
        assert_eq!(status, 403, "{body}");
        assert!(body.contains("data-root"), "{body}");

        // With a data root: relative paths inside it load; absolute and
        // traversing paths are rejected without touching the filesystem.
        let dir = std::env::temp_dir().join("hyperline-server-data-root");
        std::fs::create_dir_all(&dir).unwrap();
        hyperline_hypergraph::io::save_edge_list(
            &Hypergraph::paper_example(),
            dir.join("inside.hgr"),
        )
        .unwrap();
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            data_root: Some(dir.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let state = server.state();
        let mut req = request("/datasets?path=inside.hgr");
        req.method = "POST".to_string();
        let (_, status, body) = dispatch_text(state, &req);
        assert_eq!(status, 201, "{body}");
        assert!(state.registry.get("inside").is_some());
        for bad in [
            "/datasets?path=/etc/passwd",
            "/datasets?path=../outside.hgr",
            "/datasets?path=ok/../../outside.hgr",
        ] {
            let mut req = request(bad);
            req.method = "POST".to_string();
            let (_, status, _) = dispatch_text(state, &req);
            assert_eq!(status, 403, "{bad}");
        }
        std::fs::remove_file(dir.join("inside.hgr")).ok();
    }

    #[test]
    fn post_datasets_loads_profiles() {
        let server = test_server();
        let state = server.state();
        let mut req = request("/datasets?profile=lesMis&seed=7");
        req.method = "POST".to_string();
        let (route, status, body) = dispatch_text(state, &req);
        assert_eq!((route, status), (Route::AddDataset, 201));
        assert!(body.contains("\"name\":\"lesMis\""));
        assert!(state.registry.get("lesMis").is_some());
        // Missing source → 400.
        let mut req = request("/datasets?name=x");
        req.method = "POST".to_string();
        let (_, status, _) = dispatch_text(state, &req);
        assert_eq!(status, 400);
    }

    #[test]
    fn empty_query_values_fall_back_to_defaults() {
        let server = test_server();
        let state = server.state();
        // `?s=` previously failed u32 parsing with a confusing 400; it
        // must behave exactly like an absent parameter.
        let (_, status, body) = dispatch_text(state, &request("/datasets/paper/slg?s="));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"s\":2"), "{body}");
        let (_, status, _) =
            dispatch_text(state, &request("/datasets/paper/slg?s=&algo=&weighted="));
        assert_eq!(status, 200);
        let (_, status, body) = dispatch_text(state, &request("/datasets/paper/sweep?max_s="));
        assert_eq!(status, 200, "{body}");
    }

    #[test]
    fn metric_tier_serves_stage5_results_byte_identically() {
        let server = test_server();
        let state = server.state();
        for path in [
            "/datasets/paper/betweenness?s=2&top=3",
            "/datasets/paper/components?s=2",
            "/datasets/paper/spectrum?s=2",
        ] {
            let (_, status, first) = dispatch_text(state, &request(path));
            assert_eq!(status, 200, "{path}");
            let (_, status, second) = dispatch_text(state, &request(path));
            assert_eq!(status, 200, "{path}");
            assert_eq!(first, second, "{path}: repeated response diverged");
        }
        let stats = state.metric_cache.stats();
        assert_eq!((stats.misses, stats.hits), (3, 3));
        // A different render-time `top` shares the cached ranking: hits
        // grow, misses do not.
        let (_, status, body) =
            dispatch_text(state, &request("/datasets/paper/betweenness?s=2&top=1"));
        assert_eq!(status, 200);
        assert!(body.contains("\"top\":1"), "{body}");
        let stats = state.metric_cache.stats();
        assert_eq!((stats.misses, stats.hits), (3, 4));
        // Different compute-time params (sampled betweenness) are a
        // distinct metric entry.
        let (_, status, _) =
            dispatch_text(state, &request("/datasets/paper/betweenness?s=2&samples=2"));
        assert_eq!(status, 200);
        assert_eq!(state.metric_cache.stats().misses, 4);
        // But an exact request never reads the seed, so `?seed=` does
        // not mint a duplicate exact entry...
        let (_, status, _) =
            dispatch_text(state, &request("/datasets/paper/betweenness?s=2&seed=7"));
        assert_eq!(status, 200);
        assert_eq!(state.metric_cache.stats().misses, 4);
        // ...while for sampled requests the seed is part of the key.
        let (_, status, _) = dispatch_text(
            state,
            &request("/datasets/paper/betweenness?s=2&samples=2&seed=7"),
        );
        assert_eq!(status, 200);
        assert_eq!(state.metric_cache.stats().misses, 5);
        // Oversized sample counts normalize to the hyperedge count
        // (m = 4 on the paper example), so equivalent oversampled
        // requests share one entry instead of re-running the kernel.
        let (_, status, _) = dispatch_text(
            state,
            &request("/datasets/paper/betweenness?s=2&samples=100"),
        );
        assert_eq!(status, 200);
        assert_eq!(state.metric_cache.stats().misses, 6);
        let (_, status, _) = dispatch_text(
            state,
            &request("/datasets/paper/betweenness?s=2&samples=4000"),
        );
        assert_eq!(status, 200);
        assert_eq!(
            state.metric_cache.stats().misses,
            6,
            "duplicate entry minted"
        );
    }

    #[test]
    fn bad_render_params_answer_400_without_computing() {
        let server = test_server();
        let state = server.state();
        for path in [
            "/datasets/paper/betweenness?s=2&top=abc",
            "/datasets/paper/components?s=2&limit=abc",
            "/datasets/paper/slg?s=2&limit=abc",
        ] {
            let (_, status, _) = dispatch_text(state, &request(path));
            assert_eq!(status, 400, "{path}");
        }
        // The doomed requests must not have run (or cached) a kernel.
        let stats = state.metric_cache.stats();
        assert_eq!((stats.misses, stats.entries), (0, 0));
        assert_eq!(state.cache.stats().misses, 0, "no artifact was built");
    }

    #[test]
    fn sweep_populates_and_reuses_the_artifact_tier() {
        let server = test_server();
        let state = server.state();
        // Prime s=2 through /slg so the sweep has something to reuse.
        let (_, _, body) = dispatch_text(state, &request("/datasets/paper/slg?s=2"));
        assert!(body.contains("\"cache\":\"miss\""));
        let artifact_misses_before = state.cache.stats().misses;

        let (_, status, cold) = dispatch_text(state, &request("/datasets/paper/sweep?max_s=4"));
        assert_eq!(status, 200);
        assert!(
            cold.contains("\"counts\":[[1,4],[2,3],[3,2],[4,0]]"),
            "{cold}"
        );
        // The sweep inserted the three missing artifacts (s = 1, 3, 4)
        // and reused the primed s=2 one.
        assert_eq!(state.cache.stats().entries, 4);
        assert_eq!(state.cache.stats().misses, artifact_misses_before + 3);

        // Every swept s now serves /slg warm...
        for s in 1..=4 {
            let (_, status, body) =
                dispatch_text(state, &request(&format!("/datasets/paper/slg?s={s}")));
            assert_eq!(status, 200);
            assert!(body.contains("\"cache\":\"hit\""), "s={s}: {body}");
        }
        // ...and the swept artifacts are identical to /slg-built ones.
        let (_, _, body) = dispatch_text(state, &request("/datasets/paper/slg?s=3"));
        assert!(body.contains("\"edges\":[[0,2],[1,2]]"), "{body}");

        // A repeated sweep is a metric-tier hit with a byte-identical body.
        let (_, status, warm) = dispatch_text(state, &request("/datasets/paper/sweep?max_s=4"));
        assert_eq!(status, 200);
        assert_eq!(cold, warm, "sweep bodies diverged");
        assert!(state.metric_cache.stats().hits >= 1);
        // A longer sweep reuses all four cached artifacts.
        let (_, _, body) = dispatch_text(state, &request("/datasets/paper/sweep?max_s=6"));
        assert!(body.contains("[4,0],[5,0],[6,0]"), "{body}");
    }

    #[test]
    fn replacing_a_dataset_invalidates_both_tiers() {
        let server = test_server();
        let state = server.state();
        let (_, _, triangle_bc) = dispatch_text(state, &request("/datasets/paper/betweenness?s=2"));
        let (_, _, triangle_sweep) =
            dispatch_text(state, &request("/datasets/paper/sweep?max_s=2"));
        assert!(triangle_sweep.contains("\"counts\":[[1,4],[2,3]]"));

        // Replace `paper` with a generated lesMis profile under the same
        // name: every per-s result changes shape.
        let mut req = request("/datasets?profile=lesMis&seed=1&name=paper");
        req.method = "POST".to_string();
        let (_, status, _) = dispatch_text(state, &req);
        assert_eq!(status, 201);

        let (_, status, new_bc) = dispatch_text(state, &request("/datasets/paper/betweenness?s=2"));
        assert_eq!(status, 200);
        assert_ne!(triangle_bc, new_bc, "stale betweenness served");
        let (_, status, new_sweep) =
            dispatch_text(state, &request("/datasets/paper/sweep?max_s=2"));
        assert_eq!(status, 200);
        assert_ne!(triangle_sweep, new_sweep, "stale sweep served");
    }

    #[test]
    fn sweep_racing_replacement_never_pins_stale_artifacts() {
        use hyperline_hypergraph::Hypergraph;
        // The replacement hypergraph (two copies of {0, 1}) has sweep
        // counts [[1,1],[2,1]] vs the paper example's [[1,4],[2,3]].
        let replacement = || Hypergraph::from_edge_lists(&[vec![0, 1], vec![0, 1]], 2);
        for _ in 0..20 {
            let server = test_server();
            let state = server.state();
            std::thread::scope(|scope| {
                let sweeper =
                    scope.spawn(|| dispatch_text(state, &request("/datasets/paper/sweep?max_s=2")));
                // Replace mid-flight (whichever side wins the race, the
                // invariant below must hold).
                state
                    .registry
                    .insert("paper", replacement(), DatasetSource::Inline);
                state.invalidate_dataset("paper");
                let (_, status, _) = sweeper.join().unwrap();
                assert_eq!(status, 200);
            });
            // After the replacement, served artifacts and sweep counts
            // must reflect the new dataset — a stale pinned per-s entry
            // would surface here.
            let (_, _, sweep) = dispatch_text(state, &request("/datasets/paper/sweep?max_s=2"));
            assert!(sweep.contains("\"counts\":[[1,1],[2,1]]"), "{sweep}");
            let (_, _, slg) = dispatch_text(state, &request("/datasets/paper/slg?s=2"));
            assert!(slg.contains("\"edges\":[[0,1]]"), "{slg}");
        }
    }

    #[test]
    fn batch_query_answers_subqueries_with_per_item_errors() {
        let server = test_server();
        let state = server.state();
        let mut req = request("/query");
        req.method = "POST".to_string();
        req.body = br#"[
            {"dataset":"paper","op":"stats"},
            {"dataset":"paper","op":"slg","s":2,"limit":2},
            {"dataset":"paper","op":"betweenness","s":2,"top":1},
            {"dataset":"ghost","op":"stats"},
            {"dataset":"paper","op":"sweep","max_s":2},
            {"dataset":"paper","op":"slg","s":0}
        ]"#
        .to_vec();
        let (route, status, body) = dispatch_text(state, &req);
        assert_eq!((route, status), (Route::Query, 200), "{body}");
        assert!(body.contains("\"count\":6"), "{body}");
        assert!(body.contains("\"hyperedges\":4"), "{body}");
        assert!(body.contains("\"truncated\":true"), "{body}");
        assert!(body.contains("\"ranking\""), "{body}");
        assert!(body.contains(r#"no dataset named \"ghost\""#), "{body}");
        // Failed items carry their identifying tags for correlation.
        assert!(
            body.contains("\"dataset\":\"ghost\",\"op\":\"stats\""),
            "{body}"
        );
        assert!(body.contains("\"counts\":[[1,4],[2,3]]"), "{body}");
        assert!(body.contains("s must be at least 1"), "{body}");
        // Batch items populate the same tiers as GETs: this betweenness
        // request is now warm.
        assert!(state.metric_cache.stats().misses >= 1);
        let (_, status, single) =
            dispatch_text(state, &request("/datasets/paper/betweenness?s=2&top=1"));
        assert_eq!(status, 200);
        assert!(single.contains("\"ranking\""));
        assert!(state.metric_cache.stats().hits >= 1);
    }

    #[test]
    fn batch_query_rejects_malformed_bodies() {
        let server = test_server();
        let state = server.state();
        let bodies: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"not json".to_vec(),
            b"{\"dataset\":\"paper\"}".to_vec(), // object, not array
            b"[]".to_vec(),
            b"[1,2]".to_vec(),                // items must be objects
            b"[{\"op\":\"stats\"}]".to_vec(), // missing dataset (per-item)
            format!(
                "[{}]",
                vec!["{\"dataset\":\"paper\",\"op\":\"stats\"}"; 65].join(",")
            )
            .into_bytes(),
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let mut req = request("/query");
            req.method = "POST".to_string();
            req.body = body;
            let (_, status, response) = dispatch_text(state, &req);
            if i == 4 || i == 5 {
                // Item-level failures: the batch succeeds, the item errors.
                assert_eq!(status, 200, "case {i}: {response}");
                assert!(response.contains("\"error\""), "case {i}: {response}");
            } else {
                assert_eq!(status, 400, "case {i}: {response}");
            }
        }
        // Wrong method on /query is 405.
        let (_, status, _) = dispatch_text(state, &request("/query"));
        assert_eq!(status, 405);
    }

    #[test]
    fn metrics_report_both_tiers() {
        let server = test_server();
        let state = server.state();
        let (_, _, _) = dispatch_text(state, &request("/datasets/paper/betweenness?s=2"));
        let (_, _, _) = dispatch_text(state, &request("/datasets/paper/betweenness?s=2"));
        let (_, status, body) = dispatch_text(state, &request("/metrics"));
        assert_eq!(status, 200);
        assert!(
            body.contains("\"cache\":{\"artifacts\":{\"hits\":0,\"misses\":1"),
            "{body}"
        );
        assert!(
            body.contains("\"metrics\":{\"hits\":1,\"misses\":1"),
            "{body}"
        );
        assert!(body.contains("\"query\":{\"requests\":0"), "{body}");
    }

    #[test]
    fn metrics_json_reports_histograms_and_build_info() {
        let server = test_server();
        let state = server.state();
        state
            .metrics
            .record(Route::Slg, 200, Duration::from_micros(250));
        let (_, status, body) = dispatch_text(state, &request("/metrics"));
        assert_eq!(status, 200);
        let parsed = Json::parse(&body).expect("metrics body parses");
        let build = parsed.get("build").expect("build section");
        assert_eq!(
            build.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(build
            .get("commit")
            .unwrap()
            .as_str()
            .is_some_and(|c| !c.is_empty()));
        assert!(build.get("started_unix").unwrap().as_int().unwrap() > 0);
        // Per-route latency histograms carry quantiles alongside the
        // exact average/max.
        let slg = parsed
            .get("endpoints")
            .and_then(|e| e.get("slg"))
            .expect("slg endpoint");
        let latency = slg.get("latency").expect("latency histogram");
        assert_eq!(latency.get("count").unwrap().as_int(), Some(1));
        for field in ["avg_micros", "max_micros", "p50", "p90", "p99", "p999"] {
            assert!(latency.get(field).is_some(), "missing {field}");
        }
        // The recorded 250µs sample lands inside the log-bucket spread.
        let p50 = latency.get("p50").unwrap().as_int().unwrap();
        assert!((250..300).contains(&p50), "p50 = {p50}");
        // Pool, transport and cache sections expose their histograms.
        assert!(parsed
            .get("pool")
            .and_then(|p| p.get("queue_wait"))
            .is_some());
        assert!(parsed
            .get("transport")
            .and_then(|t| t.get("gzip_encode"))
            .is_some());
        assert!(parsed
            .get("cache")
            .and_then(|c| c.get("artifacts"))
            .and_then(|a| a.get("lock_hold"))
            .is_some());
    }

    /// Validates Prometheus text exposition 0.0.4: every line is a
    /// comment (`# HELP` / `# TYPE`) or `name[{labels}] value`, label
    /// blocks are well-formed, and every sample belongs to a family
    /// declared by a preceding `# TYPE`.
    fn assert_valid_exposition(text: &str) {
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().expect("family name");
                let kind = parts.next().expect("family kind");
                assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
                typed.push(name.to_string());
                continue;
            }
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP "), "{line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<f64>().unwrap_or_else(|_| panic!("{line}"));
            let name = match series.split_once('{') {
                Some((name, labels)) => {
                    assert!(labels.ends_with('}'), "{line}");
                    for pair in labels.trim_end_matches('}').split(',') {
                        let (key, val) = pair.split_once('=').expect("label pair");
                        assert!(!key.is_empty(), "{line}");
                        assert!(
                            val.starts_with('"') && val.ends_with('"') && val.len() >= 2,
                            "{line}"
                        );
                    }
                    name
                }
                None => series,
            };
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{line}"
            );
            let family = typed.iter().any(|t| {
                name == t
                    || name == format!("{t}_bucket")
                    || name == format!("{t}_sum")
                    || name == format!("{t}_count")
            });
            assert!(family, "sample {name} has no # TYPE declaration");
        }
        assert!(!typed.is_empty(), "no families declared");
    }

    #[test]
    fn metrics_format_prometheus_is_valid_exposition() {
        let server = test_server();
        let state = server.state();
        // Traffic first, so histograms have buckets to expose. The
        // route counter records in the connection loop, which unit
        // tests bypass — record the sample directly.
        let (_, _, _) = dispatch_text(state, &request("/datasets/paper/slg?s=2"));
        state
            .metrics
            .record(Route::Slg, 200, Duration::from_micros(300));
        let req = request("/metrics?format=prometheus");
        let (route, status, body) = dispatch(state, &req);
        assert_eq!((route, status), (Route::Metrics, 200));
        let Json::Text {
            content_type,
            body: text,
        } = &body
        else {
            panic!("prometheus body must be preformatted text");
        };
        assert_eq!(*content_type, http::CONTENT_TYPE_PROMETHEUS);
        assert_valid_exposition(text);
        for family in [
            "hyperline_build_info{",
            "hyperline_requests_total{route=\"slg\"} 1",
            "hyperline_request_duration_micros_bucket{route=\"slg\",le=\"",
            "hyperline_request_duration_micros_sum{route=\"slg\"}",
            "hyperline_request_duration_micros_count{route=\"slg\"} 1",
            "hyperline_cache_misses_total{tier=\"artifacts\"} 1",
            "hyperline_cache_lock_hold_micros_count{tier=\"metrics\"}",
            "hyperline_queue_depth ",
            "hyperline_busy_workers ",
            "hyperline_queue_wait_micros_count ",
        ] {
            assert!(text.contains(family), "missing {family:?} in:\n{text}");
        }
        // The response writer serves the text verbatim with its own
        // content-type, for GET and HEAD alike.
        let mut wire = Vec::new();
        assert!(respond(state, &mut wire, &req, status, &body, true).unwrap());
        let (head, raw_body) = split_response(&wire);
        assert!(
            head.contains("content-type: text/plain; version=0.0.4"),
            "{head}"
        );
        assert_eq!(raw_body, text.as_bytes());
        let mut head_req = request("/metrics?format=prometheus");
        head_req.method = "HEAD".to_string();
        let (_, status, head_body) = dispatch(state, &head_req);
        let mut wire = Vec::new();
        assert!(respond(state, &mut wire, &head_req, status, &head_body, true).unwrap());
        let (head, raw_body) = split_response(&wire);
        assert!(raw_body.is_empty(), "HEAD must not send the exposition");
        assert!(head.contains("content-length:"), "{head}");
    }

    #[test]
    fn metrics_unknown_format_is_400() {
        let server = test_server();
        let (_, status, body) = dispatch_text(server.state(), &request("/metrics?format=yaml"));
        assert_eq!(status, 400, "{body}");
        // The JSON default still answers with and without ?format=json.
        let (_, status, _) = dispatch_text(server.state(), &request("/metrics?format=json"));
        assert_eq!(status, 200);
    }

    #[test]
    fn debug_pipeline_exposes_stage_tree_after_cold_query() {
        let server = test_server();
        let state = server.state();
        // Nothing collected yet: the tree is empty.
        let (route, status, body) = dispatch_text(state, &request("/debug/pipeline"));
        assert_eq!((route, status), (Route::DebugPipeline, 200));
        assert_eq!(body, "{\"datasets\":{}}");
        // One cold metric query drives the full pipeline: artifact
        // construction (counting → merge → postprocess → csr) plus the
        // Stage-5 kernel.
        let (_, status, _) = dispatch_text(state, &request("/datasets/paper/spectrum?s=2"));
        assert_eq!(status, 200);
        let (_, status, body) = dispatch_text(state, &request("/debug/pipeline"));
        assert_eq!(status, 200);
        let parsed = Json::parse(&body).unwrap();
        let stages = parsed
            .get("datasets")
            .and_then(|d| d.get("paper"))
            .expect("paper has collected stages");
        for stage in ["counting", "merge", "postprocess", "csr", "stage5"] {
            let agg = stages
                .get(stage)
                .unwrap_or_else(|| panic!("missing stage {stage}: {body}"));
            assert!(agg.get("count").unwrap().as_int().unwrap() >= 1, "{stage}");
            assert!(agg.get("total_micros").is_some() && agg.get("max_micros").is_some());
        }
        // Stage-5 kernels nest under the stage5 span.
        assert!(body.contains("\"stage5/"), "{body}");
        // Warm repeats collect nothing new: counts are stable.
        let before = body.clone();
        let (_, _, _) = dispatch_text(state, &request("/datasets/paper/spectrum?s=2"));
        let (_, _, after) = dispatch_text(state, &request("/debug/pipeline"));
        assert_eq!(before, after, "warm traffic must not collect spans");
        // /stats carries the same tree under "pipeline".
        let (_, _, stats) = dispatch_text(state, &request("/datasets/paper/stats"));
        assert!(stats.contains("\"pipeline\":{\"counting\""), "{stats}");
        // Wrong method on the debug route is 405, like the other fixed
        // routes.
        let mut req = request("/debug/pipeline");
        req.method = "POST".to_string();
        let (_, status, _) = dispatch_text(state, &req);
        assert_eq!(status, 405);
    }

    #[test]
    fn distinct_algorithms_are_distinct_cache_entries() {
        let server = test_server();
        let state = server.state();
        let (_, _, body) = dispatch_text(state, &request("/datasets/paper/slg?s=2&algo=algo1"));
        assert!(body.contains("\"cache\":\"miss\""));
        let (_, _, body) = dispatch_text(state, &request("/datasets/paper/slg?s=2&algo=spgemm"));
        assert!(body.contains("\"cache\":\"miss\""));
        let (_, _, body) = dispatch_text(state, &request("/datasets/paper/slg?s=2&algo=algo1"));
        assert!(body.contains("\"cache\":\"hit\""));
        assert_eq!(state.cache.stats().entries, 2);
    }

    /// Splits a raw response into `(head, body bytes)`.
    fn split_response(wire: &[u8]) -> (String, Vec<u8>) {
        let boundary = wire
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head/body boundary");
        (
            String::from_utf8(wire[..boundary].to_vec()).unwrap(),
            wire[boundary + 4..].to_vec(),
        )
    }

    /// Reassembles a chunked body (shared strict helper, unwrapped).
    fn dechunk(body: &[u8]) -> Vec<u8> {
        http::dechunk(body).expect("well-formed chunked body")
    }

    #[test]
    fn streamed_responses_chunk_and_gzip_byte_identically() {
        let server = test_server();
        let state = server.state();
        let req = request("/datasets/paper/slg?s=2");
        let (_, status, body) = dispatch(state, &req);
        assert_eq!(status, 200);
        assert!(body.is_streaming(), "/slg bodies stream");
        let buffered = body.render();

        // Identity: chunked framing, no content-length, de-chunks to
        // exactly the buffered rendering.
        let mut wire = Vec::new();
        assert!(respond(state, &mut wire, &req, status, &body, true).unwrap());
        let (head, raw_body) = split_response(&wire);
        assert!(head.contains("transfer-encoding: chunked"), "{head}");
        assert!(!head.contains("content-length"), "{head}");
        assert!(head.contains("connection: keep-alive"), "{head}");
        assert_eq!(dechunk(&raw_body), buffered.as_bytes());

        // Gzip negotiated: content-encoding header, and the de-chunked,
        // decompressed body round-trips byte-identical.
        let mut gz_req = req.clone();
        gz_req
            .headers
            .push(("accept-encoding".to_string(), "gzip".to_string()));
        let mut wire = Vec::new();
        assert!(respond(state, &mut wire, &gz_req, status, &body, true).unwrap());
        let (head, raw_body) = split_response(&wire);
        assert!(head.contains("content-encoding: gzip"), "{head}");
        assert!(head.contains("transfer-encoding: chunked"), "{head}");
        let decoded = crate::gzip::decode(&dechunk(&raw_body)).expect("valid gzip body");
        assert_eq!(decoded, buffered.as_bytes());

        // `Accept-Encoding: gzip;q=0` refuses compression.
        let mut refuse = req.clone();
        refuse
            .headers
            .push(("accept-encoding".to_string(), "gzip;q=0".to_string()));
        let mut wire = Vec::new();
        respond(state, &mut wire, &refuse, status, &body, true).unwrap();
        let (head, _) = split_response(&wire);
        assert!(!head.contains("content-encoding"), "{head}");

        let transported = state.metrics.streamed_responses.load(Ordering::Relaxed);
        let gzipped = state.metrics.gzip_responses.load(Ordering::Relaxed);
        assert_eq!((transported, gzipped), (3, 1));
    }

    #[test]
    fn head_responses_carry_exact_length_and_no_body() {
        let server = test_server();
        let state = server.state();
        for path in [
            "/healthz",
            "/datasets/paper/slg?s=2",
            "/datasets/paper/sweep?max_s=3",
        ] {
            // Prime the caches, then compare warm GET vs HEAD (the
            // /slg cache-outcome tag flips miss→hit on the first pair).
            let get = request(path);
            let (_, status, _) = dispatch(state, &get);
            assert_eq!(status, 200, "{path}");
            let (_, _, warm_body) = dispatch(state, &get);
            let expected_len = warm_body.render().len() as u64;

            let mut head_req = request(path);
            head_req.method = "HEAD".to_string();
            let (_, head_status, head_body) = dispatch(state, &head_req);
            assert_eq!(head_status, 200, "HEAD routes like GET: {path}");
            let mut wire = Vec::new();
            assert!(
                respond(state, &mut wire, &head_req, head_status, &head_body, true).unwrap(),
                "HEAD keeps the connection alive"
            );
            let (head, raw_body) = split_response(&wire);
            assert!(raw_body.is_empty(), "{path}: HEAD must not send a body");
            assert!(
                head.contains(&format!("content-length: {expected_len}")),
                "{path}: expected length {expected_len} in {head}"
            );
            assert!(!head.contains("transfer-encoding"), "{head}");
        }
        // HEAD on a POST-only route is 405, like any other wrong method.
        let mut head_req = request("/query");
        head_req.method = "HEAD".to_string();
        let (_, status, _) = dispatch(state, &head_req);
        assert_eq!(status, 405);
    }

    #[test]
    fn http10_streams_close_delimited() {
        let server = test_server();
        let state = server.state();
        let mut req = request("/datasets/paper/slg?s=2");
        req.http10 = true;
        let (_, status, body) = dispatch(state, &req);
        let buffered = body.render();
        let mut wire = Vec::new();
        assert!(
            !respond(state, &mut wire, &req, status, &body, false).unwrap(),
            "HTTP/1.0 streamed responses close the connection"
        );
        let (head, raw_body) = split_response(&wire);
        assert!(!head.contains("transfer-encoding"), "{head}");
        assert!(head.contains("connection: close"), "{head}");
        assert_eq!(raw_body, buffered.as_bytes(), "body delimited by close");
    }

    #[test]
    fn batch_responses_stream_when_items_stream() {
        let server = test_server();
        let state = server.state();
        let mut req = request("/query");
        req.method = "POST".to_string();
        req.body = br#"[{"dataset":"paper","op":"slg","s":2},
                        {"dataset":"paper","op":"sweep","max_s":2}]"#
            .to_vec();
        let (_, status, body) = dispatch(state, &req);
        assert_eq!(status, 200);
        assert!(body.is_streaming(), "batch inherits streamed items");
        let buffered = body.render();
        let mut wire = Vec::new();
        respond(state, &mut wire, &req, status, &body, true).unwrap();
        let (_, raw_body) = split_response(&wire);
        assert_eq!(dechunk(&raw_body), buffered.as_bytes());
    }
}
