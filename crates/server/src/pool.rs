//! A fixed-size worker pool fed by a bounded job queue.
//!
//! The event loop pushes fully-parsed requests; `threads` workers pop
//! and serve them. When the queue is full the push fails immediately so
//! the loop can shed load with a `503` instead of building an unbounded
//! backlog — the same admission-control shape as IIPImage's FCGI worker
//! model.

use crate::sync::{thread, Arc, Condvar, Mutex};
use std::collections::VecDeque;

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPMC queue with a hard capacity.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue accepting at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking. `Err` returns the item when the queue is
    /// full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed and
    /// drained (then `None`).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Closes the queue: pending items still drain, then `pop` returns
    /// `None` to every worker.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A pool of worker threads consuming jobs from a [`BoundedQueue`].
pub struct WorkerPool<T: Send + 'static> {
    queue: Arc<BoundedQueue<T>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Starts `threads` workers, each running `work(job)` per popped job.
    pub fn start(
        threads: usize,
        queue_capacity: usize,
        work: impl Fn(T) + Send + Sync + 'static,
    ) -> Self {
        let queue = Arc::new(BoundedQueue::new(queue_capacity));
        let work = Arc::new(work);
        let handles = (0..threads.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let work = Arc::clone(&work);
                thread::Builder::new()
                    .name(format!("hyperline-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            // A panicking job must not shrink the fixed
                            // pool: swallow the unwind and keep serving.
                            let work = &work;
                            let _ =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                                    work(job)
                                }));
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self { queue, handles }
    }

    /// The shared job queue (for the acceptor side).
    pub fn queue(&self) -> &Arc<BoundedQueue<T>> {
        &self.queue
    }

    /// Closes the queue and joins every worker.
    pub fn shutdown(self) {
        self.queue.close();
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_respects_capacity() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue rejects");
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_drains_then_ends() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(2), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(1), "pending items drain");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pool_processes_all_jobs_across_workers() {
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let pool = WorkerPool::start(4, 64, move |x: usize| {
            done2.fetch_add(x, Ordering::Relaxed);
        });
        for i in 1..=50 {
            // Retry on transient fullness: workers drain continuously.
            let mut item = i;
            while let Err(back) = pool.queue().try_push(item) {
                item = back;
                std::thread::yield_now();
            }
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), (1..=50).sum::<usize>());
    }

    #[test]
    fn worker_survives_panicking_job() {
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let pool = WorkerPool::start(1, 8, move |x: usize| {
            if x == 0 {
                panic!("poison job");
            }
            done2.fetch_add(x, Ordering::Relaxed);
        });
        pool.queue().try_push(0).unwrap(); // panics inside the worker
        pool.queue().try_push(5).unwrap(); // must still be processed
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
