//! `hyperline serve` — a zero-dependency concurrent query server with an
//! s-line-graph cache.
//!
//! The paper computes s-line graphs `L_s(H)` precisely so that downstream
//! s-metric queries (components, betweenness, s-distance, spectra) become
//! cheap graph operations. This crate turns that observation into a
//! long-lived service: load hypergraphs once, build each requested
//! `L_s(H)` at most once, and answer many cheap queries from the cached
//! artifact — the architecture of high-performance tile servers
//! (IIPImage) applied to hypergraph analytics.
//!
//! Everything is `std`-only: `TcpListener` + scoped threads, a
//! hand-rolled HTTP/1.1 parser, and a write-only JSON builder.
//!
//! ## Architecture
//!
//! * [`registry`] — named, immutable, `Arc`-shared datasets, loaded from
//!   edge-list files or generator profiles at startup or via
//!   `POST /datasets`;
//! * [`cache`] — the **two cache tiers** on one single-flight LRU
//!   engine: the artifact tier holds computed [`SLineGraph`]s keyed by
//!   `(dataset, s, algorithm, weighted)`; the metric tier layered over
//!   it holds Stage-5 results (components, betweenness rankings,
//!   spectra, sweep counts) keyed by `(artifact, metric, params)`, so
//!   warm metric queries skip the parallel kernels entirely. Both tiers
//!   are LRU-evicted under byte budgets, deduplicate concurrent misses,
//!   and invalidate together (generation-fenced) when a dataset is
//!   replaced;
//! * [`server`] / [`event`] — an **evented core**: a single epoll
//!   readiness loop owns every socket (nonblocking accept, resumable
//!   head parsing, EAGAIN-aware response flushing) and hands complete
//!   requests to a fixed worker pool over a bounded queue; workers speak
//!   HTTP/1.1 keep-alive (HEAD, `Expect: 100-continue` and desync-safe
//!   error handling included) into a bounded hand-off buffer the loop
//!   drains under `EPOLLOUT`. `GET /datasets/{d}/sweep` reuses and
//!   populates per-s artifacts, and `POST /query` answers a JSON batch
//!   of sub-queries in one round-trip under one compute budget. Large
//!   bodies (edge lists, sweeps, components) **stream** from the cached
//!   `Arc` artifacts through a chunked (and, when negotiated, gzip)
//!   writer stack with O(1) buffering;
//! * [`http`] / [`json`] — the wire-format helpers: percent-decoding
//!   request parser, chunked-transfer writer, `Accept-Encoding`
//!   negotiation; JSON builder + strict parser + streaming serializer
//!   ([`json::StreamFragment`]);
//! * [`gzip`] — a std-only streaming gzip encoder (LZ77 + per-block
//!   dynamic/fixed/stored DEFLATE selection) and a strict decoder for
//!   tests and benchmarks;
//! * [`metrics`] — per-endpoint request counters and latency
//!   *histograms* (p50/p90/p99/p999), per-tier cache hit/miss and
//!   transport (streamed/gzipped) reporting at `GET /metrics` — as JSON
//!   or Prometheus text exposition (`?format=prometheus`); pipeline
//!   stage spans aggregate per dataset at `GET /debug/pipeline`;
//! * [`access_log`] — structured JSONL request logs (request ID, route,
//!   cache outcome, queue wait, bytes out) on a non-blocking writer
//!   thread, enabled with `--access-log`.
//!
//! ## Quick start
//!
//! ```
//! use hyperline_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! server
//!     .registry()
//!     .load_profile("lesMis", 42, None)
//!     .unwrap();
//! let handle = server.spawn();
//! // GET http://{handle.addr()}/datasets/lesMis/slg?s=2 ...
//! handle.shutdown();
//! ```
//!
//! [`SLineGraph`]: hyperline_slinegraph::SLineGraph

#![warn(missing_docs)]

pub use hyperline_util::sync;

pub mod access_log;
pub mod cache;
pub mod event;
pub mod gzip;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod server;
pub(crate) mod sys;

pub use access_log::{AccessLog, AccessRecord, RequestIds};
pub use cache::{
    AlgoKind, ArtifactCache, CacheKey, CacheOutcome, CacheStats, MetricKey, MetricKind,
    SingleFlightCache, TierKey,
};
pub use metrics::{Route, ServerMetrics};
pub use registry::{Dataset, DatasetRegistry, DatasetSource};
pub use server::{Artifact, MetricResult, Server, ServerConfig, ServerHandle, ServerState};
