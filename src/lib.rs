//! # hyperline
//!
//! Parallel computation and analysis of **high-order (s-)line graphs of
//! non-uniform hypergraphs** — a from-scratch Rust reproduction of
//! Liu et al., *"High-order Line Graphs of Non-uniform Hypergraphs:
//! Algorithms, Applications, and Experimental Analysis"* (IPDPS 2022,
//! arXiv:2201.11326).
//!
//! Two hyperedges of a hypergraph `H = (V, E)` are *s-incident* when they
//! share at least `s` vertices. The s-line graph `L_s(H)` connects
//! s-incident hyperedge pairs; it is a drastically smaller stand-in for
//! the clique expansion that still carries the high-order connectivity
//! structure of `H` (s-walks, s-components, s-centralities, spectra).
//!
//! ## Quick start
//!
//! ```
//! use hyperline::prelude::*;
//!
//! // The paper's running example: 6 vertices a..f, 4 hyperedges.
//! let h = Hypergraph::paper_example();
//!
//! // Construct the 2-line graph with the paper's hashmap algorithm.
//! let result = algo2_slinegraph(&h, 2, &Strategy::default());
//! assert_eq!(result.edges, vec![(0, 1), (0, 2), (1, 2)]);
//!
//! // Or run the full five-stage pipeline and query s-metrics.
//! let run = run_pipeline(&h, &PipelineConfig::new(2));
//! assert_eq!(run.line_graph.connected_components(), vec![vec![0, 1, 2]]);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`hypergraph`] | `hyperline-hypergraph` | CSR hypergraph, I/O, preprocessing, toplexes |
//! | [`slinegraph`] | `hyperline-slinegraph` | the s-line-graph algorithms + framework |
//! | [`graph`] | `hyperline-graph` | s-metric kernels (CC, betweenness, PageRank, spectral) |
//! | [`sparse`] | `hyperline-sparse` | SpGEMM baseline |
//! | [`gen`] | `hyperline-gen` | synthetic dataset profiles |
//! | [`server`] | `hyperline-server` | concurrent HTTP query server with an s-line-graph cache |
//! | [`util`] | `hyperline-util` | hashing, bitsets, timers, stats, scoped-thread parallelism |

#![warn(missing_docs)]

pub use hyperline_gen as gen;
pub use hyperline_graph as graph;
pub use hyperline_hypergraph as hypergraph;
pub use hyperline_server as server;
pub use hyperline_slinegraph as slinegraph;
pub use hyperline_sparse as sparse;
pub use hyperline_util as util;

/// The most common imports in one place.
pub mod prelude {
    pub use hyperline_gen::{CommunityModel, Profile};
    pub use hyperline_graph::{Graph, WeightedGraph};
    pub use hyperline_hypergraph::{Hypergraph, RelabelOrder};
    pub use hyperline_slinegraph::{
        algo1_slinegraph, algo2_slinegraph, algo2_slinegraph_weighted, clique_expansion,
        ensemble_slinegraphs, naive_slinegraph, run_pipeline, sclique_graph, spgemm_slinegraph,
        Algo1Heuristics, Algorithm, CounterKind, Partition, PipelineConfig, SLineGraph, Strategy,
        TriangleSide,
    };
}
