//! Compute-kernel smoke benchmark: the compute-side perf trajectory.
//!
//! `server_smoke` records wire/cache numbers; this binary records what
//! the paper is actually about — cold per-stage timings of the s-line
//! graph pipeline (Stage 3 s-overlap, the post-processing tail, Stage 4
//! CSR construction, Stage 5 components) with a **counting-vs-tail**
//! breakdown, per dataset profile and worker count, written to
//! `BENCH_kernels.json`. "Tail" is everything after the parallel
//! counting pass: merging per-worker emissions, ID restoration +
//! normalize + final sort (the `postprocess` stage), and the squeezed
//! CSR build. The same run records the serial (1-worker) baseline, so
//! the tail speedup at ≥4 workers is a self-contained number, and the
//! line-graph edge lists are asserted byte-identical across all
//! measured worker counts.
//!
//! The `stage5` section does the same for the Stage-5 frontier engine:
//! cold per-worker-count medians of connected components, s-diameter
//! and harmonic closeness on the constructed s-line graph, the pre-PR
//! kernels re-measured in the same run at their original parallelism
//! (queue-based BFS components and the O(V·E) diameter sweep were
//! serial; the old closeness was already source-parallel and runs at
//! the comparison worker count), and the combined `stage5_speedup` at
//! the ≥4-worker point. Outputs are asserted byte-identical across all
//! worker counts (closeness compared bit-for-bit).
//!
//! Before overwriting an existing `BENCH_kernels.json` the binary
//! prints a warn-only comparison: any stage whose cold median regressed
//! by more than 20% versus the previous file gets a `WARN` line (never
//! a failure — machines differ; the trajectory is for eyeballs). Each
//! run is also **appended** to `BENCH_history.jsonl` (one line per run:
//! commit, unix timestamp, the full report), so the trajectory survives
//! the snapshot overwrite as a per-commit series.
//!
//! `cargo run -p hyperline-bench --release --bin kernel_smoke`
//! Options: `--profiles=genomics --s=2 --seed=42 --reps=5
//! --out=BENCH_kernels.json --history=BENCH_history.jsonl` (empty
//! `--history=` skips the append).

use hyperline_bench::{arg, print_header, with_pool};
use hyperline_gen::Profile;
use hyperline_graph::{bfs, cc};
use hyperline_server::json::Json;
use hyperline_slinegraph::{run_pipeline, PipelineConfig, SLineGraph};
use hyperline_util::FxHashMap;
use std::time::Instant;

/// The pre-PR serial tail, re-implemented verbatim and measured in the
/// same run so the tail speedup is self-contained: (1) one single-core
/// `sort_unstable` over the concatenated worker emissions, (2) serial
/// ID-restore + normalize + re-sort, (3) hashmap ID squeezing (sorted
/// endpoint dedup + per-endpoint map probes) and the old CSR build
/// (clean/sort/dedup + counting scatter + per-row sorts).
struct SerialBaseline {
    merge_ms: f64,
    postprocess_ms: f64,
    csr_ms: f64,
}

impl SerialBaseline {
    fn tail_ms(&self) -> f64 {
        self.merge_ms + self.postprocess_ms + self.csr_ms
    }
}

/// Deterministic xorshift for the emission-order reconstruction.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn measure_serial_baseline(
    edges: &[(u32, u32)],
    num_hyperedges: usize,
    reps: usize,
) -> SerialBaseline {
    // Reconstruct emission order: ascending sources (workers walk their
    // partitions in order) with arbitrary order within each source's
    // drained group (hashmap drain order) — a deterministic in-group
    // Fisher–Yates stands in for the arbitrariness.
    let mut emission: Vec<(u32, u32)> = edges.to_vec();
    let mut rng = 0x2545_F491_4F6C_DD1Du64;
    let mut lo = 0;
    while lo < emission.len() {
        let mut hi = lo + 1;
        while hi < emission.len() && emission[hi].0 == emission[lo].0 {
            hi += 1;
        }
        for k in (lo + 1..hi).rev() {
            let j = lo + (xorshift(&mut rng) as usize) % (k - lo + 1);
            emission.swap(k, j);
        }
        lo = hi;
    }
    let mut merge = Vec::with_capacity(reps);
    let mut postprocess = Vec::with_capacity(reps);
    let mut csr = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        // (1) Old merge: single-core sort of the concatenation.
        let mut work = emission.clone();
        let t = Instant::now();
        work.sort_unstable();
        merge.push(t.elapsed().as_secs_f64() * 1e3);
        // (2) Old postprocess: serial restore (identity relabeling) +
        // normalize + full re-sort.
        let identity: Vec<u32> = (0..num_hyperedges as u32).collect();
        let t = Instant::now();
        for (a, b) in work.iter_mut() {
            *a = identity[*a as usize];
            *b = identity[*b as usize];
        }
        for pair in work.iter_mut() {
            if pair.0 > pair.1 {
                *pair = (pair.1, pair.0);
            }
        }
        work.sort_unstable();
        postprocess.push(t.elapsed().as_secs_f64() * 1e3);
        // (3) Old squeeze + CSR build.
        let t = Instant::now();
        let mut ids: Vec<u32> = work.iter().flat_map(|&(a, b)| [a, b]).collect();
        ids.sort_unstable();
        ids.dedup();
        let forward: FxHashMap<u32, u32> = ids
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        let squeezed: Vec<(u32, u32)> = work
            .iter()
            .map(|&(a, b)| (forward[&a], forward[&b]))
            .collect();
        let nv = ids.len();
        let mut counts = vec![0usize; nv + 1];
        let mut clean: Vec<(u32, u32)> = Vec::with_capacity(squeezed.len());
        for &(a, b) in &squeezed {
            if a != b {
                clean.push(if a < b { (a, b) } else { (b, a) });
            }
        }
        clean.sort_unstable();
        clean.dedup();
        for &(a, b) in &clean {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        for i in 0..nv {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut targets = vec![0u32; clean.len() * 2];
        let mut cursor = counts;
        for &(a, b) in &clean {
            targets[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        for v in 0..nv {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        std::hint::black_box(&targets);
        csr.push(t.elapsed().as_secs_f64() * 1e3);
    }
    SerialBaseline {
        merge_ms: median(merge),
        postprocess_ms: median(postprocess),
        csr_ms: median(csr),
    }
}

/// Median of a sample (ms).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// One worker count's cold Stage-5 kernel medians (ms).
#[derive(Clone, Copy)]
struct Stage5Medians {
    components_ms: f64,
    diameter_ms: f64,
    closeness_ms: f64,
}

impl Stage5Medians {
    /// Combined Stage-5 time.
    fn stage5_ms(&self) -> f64 {
        self.components_ms + self.diameter_ms + self.closeness_ms
    }

    fn fields() -> [&'static str; 4] {
        ["components_ms", "diameter_ms", "closeness_ms", "stage5_ms"]
    }

    fn get(&self, field: &str) -> f64 {
        match field {
            "components_ms" => self.components_ms,
            "diameter_ms" => self.diameter_ms,
            "closeness_ms" => self.closeness_ms,
            "stage5_ms" => self.stage5_ms(),
            _ => unreachable!(),
        }
    }
}

/// Everything the Stage-5 kernels produced, with closeness scores as
/// raw bits so the cross-worker-count identity check is bit-exact.
#[derive(PartialEq, Eq)]
struct Stage5Outputs {
    components: Vec<Vec<u32>>,
    diameter: u32,
    closeness_bits: Vec<(u32, u64)>,
}

/// Runs the Stage-5 frontier-engine kernels `reps` times cold under the
/// ambient worker count.
fn measure_stage5(slg: &SLineGraph, reps: usize) -> (Stage5Medians, Stage5Outputs) {
    let mut components = Vec::with_capacity(reps);
    let mut diameter = Vec::with_capacity(reps);
    let mut closeness = Vec::with_capacity(reps);
    let mut outputs = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let comps = slg.connected_components();
        components.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let diam = slg.s_diameter();
        diameter.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let close = slg.closeness();
        closeness.push(t.elapsed().as_secs_f64() * 1e3);
        outputs = Some(Stage5Outputs {
            components: comps,
            diameter: diam,
            closeness_bits: close.into_iter().map(|(e, s)| (e, s.to_bits())).collect(),
        });
    }
    (
        Stage5Medians {
            components_ms: median(components),
            diameter_ms: median(diameter),
            closeness_ms: median(closeness),
        },
        outputs.expect("at least one rep ran"),
    )
}

/// The pre-PR Stage-5 kernels, re-implemented verbatim at **their
/// original parallelism** and measured in the same run: queue-based BFS
/// components ([`cc::components_bfs`] — the old `connected_components`
/// call) and the O(V·E) eccentricity sweep ([`bfs::diameter`]) were
/// genuinely serial; the old closeness was already source-parallel
/// (`par_map_range` with a fresh distance allocation per source), so it
/// runs under the *ambient* worker count — callers pin that to the same
/// count as the parallel point, keeping `stage5_speedup` an honest
/// user-visible number on multi-core machines rather than a
/// single-thread strawman.
fn measure_stage5_baseline(slg: &SLineGraph, reps: usize) -> Stage5Medians {
    let g = slg.graph();
    let n = g.num_vertices();
    let mut components = Vec::with_capacity(reps);
    let mut diameter = Vec::with_capacity(reps);
    let mut closeness = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let labels = cc::components_bfs(g);
        let comps: Vec<Vec<u32>> = cc::components_as_sets(&labels)
            .into_iter()
            .map(|c| c.into_iter().map(|v| slg.original_id(v)).collect())
            .collect();
        std::hint::black_box(&comps);
        components.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        std::hint::black_box(bfs::diameter(g));
        diameter.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let scores: Vec<f64> = hyperline_util::parallel::par_map_range(n, |v| {
            let dist = bfs::bfs_distances(g, v as u32);
            let sum: f64 = dist
                .iter()
                .enumerate()
                .filter(|&(u, &d)| u != v && d != bfs::UNREACHABLE && d > 0)
                .map(|(_, &d)| 1.0 / d as f64)
                .sum();
            if n <= 1 {
                0.0
            } else {
                sum / (n - 1) as f64
            }
        });
        let mut out: Vec<(u32, f64)> = scores
            .into_iter()
            .enumerate()
            .map(|(v, score)| (slg.original_id(v as u32), score))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        std::hint::black_box(&out);
        closeness.push(t.elapsed().as_secs_f64() * 1e3);
    }
    Stage5Medians {
        components_ms: median(components),
        diameter_ms: median(diameter),
        closeness_ms: median(closeness),
    }
}

/// One worker count's cold medians, all in milliseconds.
#[derive(Clone, Copy)]
struct StageMedians {
    counting_ms: f64,
    merge_ms: f64,
    postprocess_ms: f64,
    csr_ms: f64,
    components_ms: f64,
    total_ms: f64,
}

impl StageMedians {
    /// The post-counting tail: merge + restore/sort + CSR build.
    fn tail_ms(&self) -> f64 {
        self.merge_ms + self.postprocess_ms + self.csr_ms
    }

    fn fields() -> [&'static str; 6] {
        [
            "counting_ms",
            "merge_ms",
            "postprocess_ms",
            "csr_ms",
            "components_ms",
            "total_ms",
        ]
    }

    fn get(&self, field: &str) -> f64 {
        match field {
            "counting_ms" => self.counting_ms,
            "merge_ms" => self.merge_ms,
            "postprocess_ms" => self.postprocess_ms,
            "csr_ms" => self.csr_ms,
            "components_ms" => self.components_ms,
            "total_ms" => self.total_ms,
            _ => unreachable!(),
        }
    }
}

/// Runs the pipeline `reps` times cold and returns stage medians plus
/// the (stable) edge list for the cross-worker-count identity check.
fn measure(
    h: &hyperline_hypergraph::Hypergraph,
    s: u32,
    reps: usize,
) -> (StageMedians, Vec<(u32, u32)>) {
    let config = PipelineConfig::new(s);
    let stage_ms = |run: &hyperline_slinegraph::PipelineRun, stage: &str| {
        run.times.get(stage).map_or(0.0, |d| d.as_secs_f64() * 1e3)
    };
    let mut counting = Vec::with_capacity(reps);
    let mut merge = Vec::with_capacity(reps);
    let mut postprocess = Vec::with_capacity(reps);
    let mut csr = Vec::with_capacity(reps);
    let mut components = Vec::with_capacity(reps);
    let mut total = Vec::with_capacity(reps);
    let mut edges = Vec::new();
    for _ in 0..reps.max(1) {
        let run = run_pipeline(h, &config);
        let merge_ms = run.stats.merge_seconds * 1e3;
        counting.push(stage_ms(&run, "s-overlap") - merge_ms);
        merge.push(merge_ms);
        postprocess.push(stage_ms(&run, "postprocess"));
        csr.push(stage_ms(&run, "squeeze"));
        components.push(stage_ms(&run, "s-connected-components"));
        total.push(run.times.total().as_secs_f64() * 1e3);
        edges = run.line_graph.edges;
    }
    (
        StageMedians {
            counting_ms: median(counting),
            merge_ms: median(merge),
            postprocess_ms: median(postprocess),
            csr_ms: median(csr),
            components_ms: median(components),
            total_ms: median(total),
        },
        edges,
    )
}

/// Numeric field lookup in a parsed JSON object.
fn num(obj: &Json, key: &str) -> Option<f64> {
    match obj.get(key)? {
        Json::Int(i) => Some(*i as f64),
        Json::Float(x) => Some(*x),
        _ => None,
    }
}

/// The previous run's medians for `(profile, workers)`, if the old
/// report has them.
fn previous_medians(previous: Option<&Json>, profile: &str, workers: usize) -> Option<Json> {
    let profiles = previous?.get("profiles")?.as_array()?;
    let entry = profiles
        .iter()
        .find(|p| p.get("profile").and_then(Json::as_str) == Some(profile))?;
    entry
        .get("runs")?
        .as_array()?
        .iter()
        .find(|r| num(r, "workers") == Some(workers as f64))
        .cloned()
}

/// Like [`previous_medians`] for the `stage5` section.
fn previous_stage5_medians(previous: Option<&Json>, profile: &str, workers: usize) -> Option<Json> {
    let profiles = previous?.get("profiles")?.as_array()?;
    let entry = profiles
        .iter()
        .find(|p| p.get("profile").and_then(Json::as_str) == Some(profile))?;
    entry
        .get("stage5")?
        .get("runs")?
        .as_array()?
        .iter()
        .find(|r| num(r, "workers") == Some(workers as f64))
        .cloned()
}

fn main() {
    print_header("kernel smoke: cold stage timings, counting vs post-processing tail");
    let profiles_arg: String = arg("profiles", "genomics".to_string());
    let s: u32 = arg("s", 2);
    let seed: u64 = arg("seed", 42);
    let reps: usize = arg("reps", 5);
    let out: String = arg("out", "BENCH_kernels.json".to_string());

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The new-code serial point, the ≥4-worker point of the acceptance
    // numbers (measured even on narrower machines — the threads then
    // time-share, which is the honest number for this host), and the
    // whole machine.
    let mut worker_counts = vec![1usize, 4, cores];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    let previous = std::fs::read_to_string(&out)
        .ok()
        .and_then(|t| Json::parse(&t).ok());

    let mut profile_reports: Vec<Json> = Vec::new();
    let mut warnings = 0usize;
    for name in profiles_arg.split(',').filter(|p| !p.is_empty()) {
        let profile = Profile::from_name(name).expect("unknown profile");
        let h = profile.generate(seed);
        println!(
            "\n{}: {} vertices, {} hyperedges, s = {s}",
            profile.name(),
            h.num_vertices(),
            h.num_edges()
        );
        println!(
            "{:>8} {:>12} {:>10} {:>12} {:>10} {:>12} {:>10}",
            "workers", "counting", "merge", "postprocess", "csr", "components", "tail"
        );
        let mut rows: Vec<(usize, StageMedians)> = Vec::new();
        let mut reference: Option<Vec<(u32, u32)>> = None;
        for &w in &worker_counts {
            let (meds, edges) = with_pool(w, || measure(&h, s, reps));
            match &reference {
                None => reference = Some(edges),
                Some(r) => assert_eq!(
                    &edges, r,
                    "line-graph edges diverged between worker counts (w={w})"
                ),
            }
            println!(
                "{:>8} {:>10.2}ms {:>8.2}ms {:>10.2}ms {:>8.2}ms {:>10.2}ms {:>8.2}ms",
                w,
                meds.counting_ms,
                meds.merge_ms,
                meds.postprocess_ms,
                meds.csr_ms,
                meds.components_ms,
                meds.tail_ms()
            );
            // Warn-only trajectory check against the previous report.
            if let Some(prev) = previous_medians(previous.as_ref(), profile.name(), w) {
                for field in StageMedians::fields() {
                    if let Some(old) = num(&prev, field) {
                        let new = meds.get(field);
                        // Sub-half-millisecond stages are timer noise;
                        // warning on them would make the trajectory cry
                        // wolf.
                        if old > 0.5 && new > old * 1.2 {
                            warnings += 1;
                            println!(
                                "  WARN {} w={w} {field}: {old:.2}ms -> {new:.2}ms (+{:.0}%)",
                                profile.name(),
                                (new / old - 1.0) * 100.0
                            );
                        }
                    }
                }
            }
            rows.push((w, meds));
        }
        // The ≥4-worker point (or the widest available on small machines).
        let (par_workers, par_meds) = rows
            .iter()
            .rev()
            .find(|(w, _)| *w >= 4)
            .unwrap_or(rows.last().unwrap());
        let reference_edges = reference.as_ref().expect("at least one worker count ran");
        let baseline = measure_serial_baseline(reference_edges, h.num_edges(), reps);
        let tail_speedup = baseline.tail_ms() / par_meds.tail_ms();
        let edges_out = reference_edges.len();
        println!(
            "{:>8} {:>12} {:>8.2}ms {:>10.2}ms {:>8.2}ms {:>12} {:>8.2}ms   (pre-PR serial tail)",
            "baseline",
            "-",
            baseline.merge_ms,
            baseline.postprocess_ms,
            baseline.csr_ms,
            "-",
            baseline.tail_ms()
        );
        println!(
            "tail: {:.2}ms serial baseline -> {:.2}ms at {} workers = {:.2}x speedup  \
             ({} line-graph edges, byte-identical across worker counts)",
            baseline.tail_ms(),
            par_meds.tail_ms(),
            par_workers,
            tail_speedup,
            edges_out,
        );
        // Stage 5: frontier-engine kernels on the constructed s-line
        // graph — cold medians per worker count, byte-identity asserted,
        // plus the pre-PR serial kernels measured in the same run.
        let slg = SLineGraph::new_squeezed(s, h.num_edges(), reference_edges.clone());
        println!(
            "\nstage 5 ({} vertices, {} edges):",
            slg.num_vertices(),
            slg.num_edges()
        );
        println!(
            "{:>8} {:>12} {:>10} {:>11} {:>10}",
            "workers", "components", "diameter", "closeness", "stage5"
        );
        let mut s5_rows: Vec<(usize, Stage5Medians)> = Vec::new();
        let mut s5_reference: Option<Stage5Outputs> = None;
        for &w in &worker_counts {
            let (meds, outputs) = with_pool(w, || measure_stage5(&slg, reps));
            match &s5_reference {
                None => s5_reference = Some(outputs),
                Some(r) => assert!(
                    &outputs == r,
                    "stage-5 outputs diverged between worker counts (w={w})"
                ),
            }
            println!(
                "{:>8} {:>10.2}ms {:>8.2}ms {:>9.2}ms {:>8.2}ms",
                w,
                meds.components_ms,
                meds.diameter_ms,
                meds.closeness_ms,
                meds.stage5_ms()
            );
            if let Some(prev) = previous_stage5_medians(previous.as_ref(), profile.name(), w) {
                for field in Stage5Medians::fields() {
                    if let Some(old) = num(&prev, field) {
                        let new = meds.get(field);
                        if old > 0.5 && new > old * 1.2 {
                            warnings += 1;
                            println!(
                                "  WARN {} w={w} stage5.{field}: {old:.2}ms -> {new:.2}ms (+{:.0}%)",
                                profile.name(),
                                (new / old - 1.0) * 100.0
                            );
                        }
                    }
                }
            }
            s5_rows.push((w, meds));
        }
        let (s5_workers, s5_meds) = s5_rows
            .iter()
            .rev()
            .find(|(w, _)| *w >= 4)
            .unwrap_or(s5_rows.last().unwrap());
        // Components/diameter were serial pre-PR; closeness was already
        // source-parallel, so the baseline runs it under the same worker
        // count as the parallel point (an honest comparison, not a
        // single-thread strawman).
        let s5_baseline = with_pool(*s5_workers, || measure_stage5_baseline(&slg, reps));
        let stage5_speedup = s5_baseline.stage5_ms() / s5_meds.stage5_ms();
        println!(
            "{:>8} {:>10.2}ms {:>8.2}ms {:>9.2}ms {:>8.2}ms   (pre-PR kernels: serial CC/diameter, source-parallel closeness)",
            "baseline",
            s5_baseline.components_ms,
            s5_baseline.diameter_ms,
            s5_baseline.closeness_ms,
            s5_baseline.stage5_ms()
        );
        println!(
            "stage5: {:.2}ms pre-PR kernels -> {:.2}ms at {} workers = {:.2}x speedup  \
             (outputs byte-identical across worker counts)",
            s5_baseline.stage5_ms(),
            s5_meds.stage5_ms(),
            s5_workers,
            stage5_speedup,
        );
        let stage5_runs_json: Vec<Json> = s5_rows
            .iter()
            .map(|(w, m)| {
                Json::obj()
                    .set("workers", *w)
                    .set("components_ms", m.components_ms)
                    .set("diameter_ms", m.diameter_ms)
                    .set("closeness_ms", m.closeness_ms)
                    .set("stage5_ms", m.stage5_ms())
            })
            .collect();
        let stage5_json = Json::obj()
            .set("runs", Json::Arr(stage5_runs_json))
            .set(
                "baseline",
                Json::obj()
                    .set("components_ms", s5_baseline.components_ms)
                    .set("diameter_ms", s5_baseline.diameter_ms)
                    .set("closeness_ms", s5_baseline.closeness_ms)
                    .set("closeness_workers", *s5_workers)
                    .set("stage5_ms", s5_baseline.stage5_ms()),
            )
            .set("stage5_baseline_ms", s5_baseline.stage5_ms())
            .set("stage5_parallel_ms", s5_meds.stage5_ms())
            .set("stage5_parallel_workers", *s5_workers)
            .set("stage5_speedup", stage5_speedup)
            .set("identical_across_workers", true);
        let runs_json: Vec<Json> = rows
            .iter()
            .map(|(w, m)| {
                Json::obj()
                    .set("workers", *w)
                    .set("counting_ms", m.counting_ms)
                    .set("merge_ms", m.merge_ms)
                    .set("postprocess_ms", m.postprocess_ms)
                    .set("csr_ms", m.csr_ms)
                    .set("components_ms", m.components_ms)
                    .set("tail_ms", m.tail_ms())
                    .set("total_ms", m.total_ms)
            })
            .collect();
        profile_reports.push(
            Json::obj()
                .set("profile", profile.name())
                .set("s", s)
                .set("line_graph_edges", edges_out)
                .set("runs", Json::Arr(runs_json))
                .set(
                    "serial_baseline",
                    Json::obj()
                        .set("merge_ms", baseline.merge_ms)
                        .set("postprocess_ms", baseline.postprocess_ms)
                        .set("csr_ms", baseline.csr_ms)
                        .set("tail_ms", baseline.tail_ms()),
                )
                .set("tail_serial_baseline_ms", baseline.tail_ms())
                .set("tail_parallel_ms", par_meds.tail_ms())
                .set("tail_parallel_workers", *par_workers)
                .set("tail_speedup", tail_speedup)
                .set("identical_across_workers", true)
                .set("stage5", stage5_json),
        );
    }

    let report = Json::obj()
        .set("seed", seed)
        .set("reps", reps)
        .set("cores", cores)
        .set(
            "worker_counts",
            Json::Arr(
                worker_counts
                    .iter()
                    .map(|&w| Json::Int(w as i128))
                    .collect(),
            ),
        )
        .set("profiles", Json::Arr(profile_reports));
    std::fs::write(&out, report.render()).expect("write report");
    let history: String = arg("history", "BENCH_history.jsonl".to_string());
    let appended = if history.is_empty() {
        String::new()
    } else {
        append_history(&history, &report);
        format!(", appended to {history}")
    };
    println!(
        "\nwrote {out}{appended}{}",
        if warnings > 0 {
            format!(" ({warnings} warn-only regressions vs previous run)")
        } else {
            String::new()
        }
    );
}

/// Appends one `{commit, timestamp_unix, report}` line to the JSONL
/// history file, so the per-commit series survives the snapshot
/// overwrite of `BENCH_kernels.json`.
fn append_history(path: &str, report: &Json) {
    use std::io::Write;
    let mut commit = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    // A run from an uncommitted tree is attributed to its parent commit;
    // mark it so the series stays honest. The BENCH_* outputs are
    // excluded from the check — this binary (and server_smoke before it
    // in check.sh) just rewrote them, which would otherwise tag every
    // entry dirty.
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain", "-uno", "--", ":(exclude)BENCH_*"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    if dirty {
        commit.push_str("-dirty");
    }
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = Json::obj()
        .set("commit", commit)
        .set("timestamp_unix", timestamp)
        .set("report", report.clone())
        .render();
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = result {
        eprintln!("warning: could not append history to {path}: {e}");
    }
}
