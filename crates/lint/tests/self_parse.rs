//! Workspace self-parse golden test: every `.rs` file in the workspace
//! must lex (with a byte-identical round trip through the token spans)
//! and parse with zero errors. This is the drift alarm — new syntax
//! anywhere in the repo that the analyzer cannot handle fails loudly
//! here instead of silently shrinking HL007/HL008/HL009 coverage.

use std::fs;
use std::path::{Path, PathBuf};

use hyperline_lint::{lexer, parser};

/// Walks `dir` for `.rs` files, skipping build output, dot-dirs and the
/// intentionally-broken fixture corpus.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        if p.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

#[test]
fn whole_workspace_lexes_round_trips_and_parses() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    files.sort();
    assert!(
        files.len() >= 100,
        "workspace walk looks broken: only {} .rs files found",
        files.len()
    );
    let mut failures = Vec::new();
    let mut fn_total = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(path).expect("readable source");
        let lexed = lexer::lex(&text);
        if !lexed.errors.is_empty() {
            failures.push(format!("{rel}: lex errors {:?}", lexed.errors));
            continue;
        }
        if !lexer::round_trip(&text, &lexed.tokens) {
            failures.push(format!("{rel}: token stream does not round-trip"));
            continue;
        }
        let ast = parser::parse_file(&rel, &text);
        if !ast.errors.is_empty() {
            failures.push(format!(
                "{rel}: parse errors {:?}",
                &ast.errors[..ast.errors.len().min(3)]
            ));
        }
        fn_total += ast.fns.len();
    }
    assert!(
        failures.is_empty(),
        "self-parse failures in {}/{} files:\n{}",
        failures.len(),
        files.len(),
        failures.join("\n")
    );
    assert!(
        fn_total > 500,
        "suspiciously few functions parsed: {fn_total}"
    );
}
