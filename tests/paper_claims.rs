//! Regression tests for the paper's headline qualitative claims, checked
//! on the synthetic profiles (DESIGN.md §7 lists the expected shapes).

use hyperline::graph::pagerank::{pagerank, rank_order, PageRankOptions};
use hyperline::prelude::*;
use hyperline::slinegraph::SLineGraph;

/// §VI-G: Friendster's s = 1024 line graph has exactly 20 connected
/// components (the planted deep-core communities).
#[test]
fn friendster_20_components_at_s1024() {
    let h = Profile::Friendster.generate(42);
    let r = algo2_slinegraph(&h, 1024, &Strategy::default());
    let slg = SLineGraph::new_squeezed(1024, h.num_edges(), r.edges);
    assert_eq!(slg.connected_components().len(), 20);
}

/// Table I: Algorithm 2 performs zero set intersections while Algorithm 1
/// performs millions on a social-network profile, and both agree.
#[test]
fn zero_set_intersections_headline() {
    let h = Profile::EmailEuAll.generate(42);
    let st = Strategy::default();
    let r2 = algo2_slinegraph(&h, 4, &st);
    let r1 = algo1_slinegraph(&h, 4, &st);
    assert_eq!(r2.stats.total().set_intersections, 0);
    assert!(r1.stats.total().set_intersections > 0);
    assert_eq!(r1.edges, r2.edges);
}

/// Figure 4: s-clique graph density decays rapidly (monotone, and at
/// least 10x down within the first decade of s) on the four application
/// profiles.
#[test]
fn sclique_density_decays() {
    for profile in [
        Profile::DisGeNet,
        Profile::CondMat,
        Profile::CompBoard,
        Profile::LesMis,
    ] {
        let h = profile.generate(42);
        let counts = sclique_graph(&h, 1, &Strategy::default()).edges.len();
        let at10 = sclique_graph(&h, 10, &Strategy::default()).edges.len();
        assert!(
            counts > 0,
            "{}: clique expansion must be non-empty",
            profile.name()
        );
        assert!(
            at10 * 10 <= counts,
            "{}: expected >=10x sparsification by s=10 ({} -> {})",
            profile.name(),
            counts,
            at10
        );
    }
}

/// Table II: the top-5 PageRank diseases of the clique expansion remain
/// the top-5 (as a set) in the s = 10 s-clique graph, and mostly survive
/// at s = 100.
#[test]
fn pagerank_ranking_stable_across_s() {
    let h = Profile::DisGeNet.generate(3);
    let top = |s: u32, k: usize| -> std::collections::HashSet<u32> {
        let r = sclique_graph(&h, s, &Strategy::default());
        let g = Graph::from_edges(h.num_vertices(), &r.edges);
        let pr = pagerank(&g, PageRankOptions::default());
        rank_order(&pr)
            .into_iter()
            .take(k)
            .map(|(v, _, _)| v)
            .collect()
    };
    let base = top(1, 5);
    let s10 = top(10, 5);
    assert!(
        base.intersection(&s10).count() >= 4,
        "top-5 must be ~stable at s=10"
    );
    let s100_top10 = top(100, 10);
    assert!(
        base.intersection(&s100_top10).count() >= 4,
        "top-5 of s=1 must stay near the top at s=100"
    );
}

/// §V-A: the six planted genes are the only hyperedges s-connected at
/// s = 100 in the genomics profile, and they top s = 5 betweenness.
#[test]
fn genomics_important_genes_isolated() {
    let seed = 7;
    let h = Profile::Genomics.generate(seed);
    let planted = Profile::Genomics.planted_edge_range(seed).unwrap();
    let run = run_pipeline(&h, &PipelineConfig::new(100));
    let comps = run.components.unwrap();
    let members: std::collections::HashSet<u32> = comps.iter().flatten().copied().collect();
    assert_eq!(members.len(), 6);
    assert!(members.iter().all(|e| planted.contains(e)));

    let run5 = run_pipeline(&h, &PipelineConfig::new(5));
    let bc = run5.line_graph.betweenness();
    let top10: std::collections::HashSet<u32> = bc.iter().take(10).map(|&(e, _)| e).collect();
    let planted_in_top10 = planted.clone().filter(|e| top10.contains(e)).count();
    assert!(
        planted_in_top10 >= 5,
        "only {planted_in_top10}/6 planted genes in top 10"
    );
}

/// Degree pruning (§III-E): skipping |e| < s sources never changes the
/// result but reduces outer-loop work on skewed data.
#[test]
fn degree_pruning_sound_and_effective() {
    let h = Profile::ActiveDns.generate(42);
    let s = 8;
    let pruned = algo2_slinegraph(&h, s, &Strategy::default());
    let unpruned = algo2_slinegraph(&h, s, &Strategy::default().with_pruning(false));
    assert_eq!(pruned.edges, unpruned.edges);
    assert!(
        pruned.stats.total().edges_processed < unpruned.stats.total().edges_processed / 2,
        "DNS edges are tiny: most sources should be pruned at s=8"
    );
}

/// Figure 10's phenomenon: blocked distribution without relabeling is
/// measurably less balanced than cyclic on a skewed profile.
#[test]
fn cyclic_balances_better_than_blocked() {
    let h = Profile::LiveJournal.generate(42);
    let workers = 16;
    let run = |partition| {
        let st = Strategy::default()
            .with_partition(partition)
            .with_workers(workers);
        algo2_slinegraph(&h, 8, &st).stats.visit_summary().cv()
    };
    let blocked_cv = run(Partition::Blocked);
    let cyclic_cv = run(Partition::Cyclic);
    assert!(
        cyclic_cv < blocked_cv,
        "cyclic CV {cyclic_cv:.3} should beat blocked CV {blocked_cv:.3}"
    );
}

/// Table V's phenomenon: the s = 8 line graph is orders of magnitude
/// smaller than the 1-line graph on a social profile.
#[test]
fn s8_much_smaller_than_s1() {
    let h = Profile::Friendster.generate(42);
    let st = Strategy::default();
    let s1 = algo2_slinegraph(&h, 1, &st).edges.len();
    let s8 = algo2_slinegraph(&h, 8, &st).edges.len();
    assert!(s8 * 10 < s1, "s=8 ({s8}) must be <10% of s=1 ({s1})");
}
