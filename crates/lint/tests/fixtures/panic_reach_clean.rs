// Fixture: same call shape as panic_reach_bad.rs but the leaf returns
// a default instead of unwrapping — and a genuinely panicking helper
// exists but is NOT reachable from the root. Zero HL007 findings.
use crate::sync::Mutex;

pub struct State {
    pub value: Option<u32>,
}

// lint: request-root
fn handle_request(s: &State) -> u32 {
    stage_one(s)
}

fn stage_one(s: &State) -> u32 {
    stage_two(s)
}

fn stage_two(s: &State) -> u32 {
    s.value.unwrap_or(0)
}

fn startup_only(s: &State) -> u32 {
    s.value.expect("config must be present before serving")
}
