//! Figure 4: number of edges in the s-clique graph vs s (log-log decay).
//!
//! Computes the s-clique graphs (s-line graphs of the dual) of the
//! disGeNet, condMat, compBoard and lesMis profiles with one ensemble
//! pass each, and prints the edge count per s. The paper's observation:
//! density drops off roughly exponentially in s across domains.
//!
//! `cargo run -p hyperline-bench --release --bin fig4_density`
//! Options: `--seed=42 --max-s=128`

use hyperline_bench::{arg, print_header};
use hyperline_gen::Profile;
use hyperline_slinegraph::{sclique_edge_counts, Strategy};
use hyperline_util::table::Table;

fn main() {
    print_header("Figure 4: #edges in the s-clique graph vs s");
    let seed: u64 = arg("seed", 42);
    let max_s: u32 = arg("max-s", 128);
    // Log-spaced s values, like the paper's log-log axes.
    let mut s_values: Vec<u32> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    s_values.retain(|&s| s <= max_s);

    let profiles = [
        Profile::DisGeNet,
        Profile::CondMat,
        Profile::CompBoard,
        Profile::LesMis,
    ];
    let mut table = Table::new(
        std::iter::once("s".to_string()).chain(profiles.iter().map(|p| p.name().to_string())),
    );

    let counts: Vec<Vec<(u32, usize)>> = profiles
        .iter()
        .map(|p| {
            let h = p.generate(seed);
            sclique_edge_counts(&h, &s_values, &Strategy::default())
        })
        .collect();

    for (si, &s) in s_values.iter().enumerate() {
        let mut cells = vec![s.to_string()];
        for c in &counts {
            cells.push(c[si].1.to_string());
        }
        table.row(cells);
    }
    table.print();

    // Decay-rate summary: the paper's point is rapid (near-exponential)
    // sparsification; report the s at which each dataset loses 99% of its
    // clique-expansion edges.
    println!();
    for (p, c) in profiles.iter().zip(&counts) {
        let base = c[0].1.max(1);
        let s99 = c
            .iter()
            .find(|&&(_, n)| n * 100 <= base)
            .map(|&(s, _)| s.to_string())
            .unwrap_or_else(|| format!("> {}", s_values.last().unwrap()));
        println!(
            "{:<22} 99% of clique-expansion edges gone by s = {}",
            p.name(),
            s99
        );
    }
}
