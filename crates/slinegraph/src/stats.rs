//! Per-worker work counters.
//!
//! The paper instruments the number of hyperedges visited in the
//! innermost loop per thread (Figure 10) and the total number of set
//! intersections (Table I). Every algorithm here fills a [`WorkerStats`]
//! per worker, so that data is a by-product of any run.

use hyperline_util::stats::Summary;

/// Work performed by one worker during the s-overlap stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Source hyperedges processed (outer-loop iterations after pruning).
    pub edges_processed: u64,
    /// Hyperedges visited in the innermost loop — the Figure 10 metric.
    pub wedge_visits: u64,
    /// Explicit set intersections performed (0 for Algorithm 2/3 —
    /// the headline claim of Table I).
    pub set_intersections: u64,
    /// s-line-graph edges emitted by this worker.
    pub edges_emitted: u64,
}

impl WorkerStats {
    /// Adds another worker's counters into this one.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.edges_processed += other.edges_processed;
        self.wedge_visits += other.wedge_visits;
        self.set_intersections += other.set_intersections;
        self.edges_emitted += other.edges_emitted;
    }
}

/// Aggregated per-worker statistics for one algorithm run.
#[derive(Debug, Clone, Default)]
pub struct AlgoStats {
    /// One entry per worker, indexed by worker ID.
    pub per_worker: Vec<WorkerStats>,
    /// Wall seconds spent merging per-worker emissions into the final
    /// sorted edge list — the slice of Stage 3 that is post-processing
    /// tail rather than counting (the `kernel_smoke` bench subtracts it
    /// from the stage time for the counting-vs-tail breakdown).
    pub merge_seconds: f64,
}

impl AlgoStats {
    /// Builds from per-worker stats.
    pub fn new(per_worker: Vec<WorkerStats>) -> Self {
        Self {
            per_worker,
            merge_seconds: 0.0,
        }
    }

    /// Builder: records the wall time of the output-merge step.
    pub fn with_merge_seconds(mut self, seconds: f64) -> Self {
        self.merge_seconds = seconds;
        self
    }

    /// Totals across all workers.
    pub fn total(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.per_worker {
            t.merge(w);
        }
        t
    }

    /// Summary of per-worker innermost-loop visits (Figure 10's y-axis);
    /// its `imbalance()` is max/mean load.
    pub fn visit_summary(&self) -> Summary {
        Summary::of(self.per_worker.iter().map(|w| w.wedge_visits as f64))
    }

    /// Per-worker innermost-loop visit counts.
    pub fn visits_per_worker(&self) -> Vec<u64> {
        self.per_worker.iter().map(|w| w.wedge_visits).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_total() {
        let a = WorkerStats {
            edges_processed: 1,
            wedge_visits: 10,
            set_intersections: 2,
            edges_emitted: 3,
        };
        let b = WorkerStats {
            edges_processed: 4,
            wedge_visits: 30,
            set_intersections: 0,
            edges_emitted: 1,
        };
        let stats = AlgoStats::new(vec![a, b]);
        let t = stats.total();
        assert_eq!(t.edges_processed, 5);
        assert_eq!(t.wedge_visits, 40);
        assert_eq!(t.set_intersections, 2);
        assert_eq!(t.edges_emitted, 4);
    }

    #[test]
    fn visit_summary_imbalance() {
        let stats = AlgoStats::new(vec![
            WorkerStats {
                wedge_visits: 10,
                ..Default::default()
            },
            WorkerStats {
                wedge_visits: 30,
                ..Default::default()
            },
        ]);
        let s = stats.visit_summary();
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.imbalance(), 1.5);
        assert_eq!(stats.visits_per_worker(), vec![10, 30]);
    }

    #[test]
    fn empty_stats() {
        let stats = AlgoStats::default();
        assert_eq!(stats.total(), WorkerStats::default());
        assert_eq!(stats.visit_summary().count, 0);
    }
}
