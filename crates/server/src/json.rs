//! A minimal JSON value builder, serializer and parser.
//!
//! The wire protocol *emits* JSON everywhere and *reads* it in exactly
//! one place: the body of `POST /query`, a batch of sub-queries. [`Json`]
//! covers the value shapes the endpoints build, with `From` impls keeping
//! handler code terse; [`Json::parse`] is a strict recursive-descent
//! RFC 8259 parser sized for request bodies (depth-limited, no trailing
//! garbage).

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any integer (emitted without a decimal point).
    Int(i128),
    /// A float; non-finite values serialize as `null` per RFC 8259.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object to extend with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds/chains a field on an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("set() on non-object {other:?}"),
        }
        self
    }

    /// Parses JSON text into a [`Json`] value. Strict: rejects trailing
    /// characters, unterminated values, invalid escapes and nesting
    /// deeper than 64 levels (the batch endpoint only needs an array of
    /// flat objects). Error messages are client-facing.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!(
                "trailing characters after JSON value at byte {}",
                parser.pos
            ));
        }
        Ok(value)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in insertion order, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The first value of object field `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.entries()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth [`Json::parse`] accepts (guards the recursion
/// against adversarial `[[[[…]]]]` bodies).
const MAX_PARSE_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consumes `literal` or errors.
    fn expect(&mut self, literal: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(format!("expected {literal:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err("JSON nested deeper than 64 levels".to_string());
        }
        match self.peek() {
            Some(b'n') => self.expect("null").map(|()| Json::Null),
            Some(b't') => self.expect("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.expect("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte {:?} at {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of JSON".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(":")?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-UTF-8 bytes in JSON string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the paired \uXXXX.
                                self.expect("\\u")
                                    .map_err(|_| "unpaired surrogate".to_string())?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| "invalid \\u escape".to_string())?);
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => return Err("unescaped control byte in string".to_string()),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // Require four hex *digits*: from_str_radix alone would also
        // accept sign-prefixed forms like "\u+123".
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        // FromStr alone is laxer than the RFC 8259 grammar (it accepts
        // "01" and "1."), so validate the token shape first.
        if !valid_number_token(text.as_bytes()) {
            return Err(format!("invalid number {text:?}"));
        }
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("invalid number {text:?}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("invalid number {text:?}"))
        }
    }
}

/// Whether `token` matches RFC 8259's number grammar:
/// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
fn valid_number_token(token: &[u8]) -> bool {
    let mut i = 0;
    if token.get(i) == Some(&b'-') {
        i += 1;
    }
    match token.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(token.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return false,
    }
    if token.get(i) == Some(&b'.') {
        i += 1;
        if !matches!(token.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(token.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    if matches!(token.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(token.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !matches!(token.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(token.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    i == token.len()
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(i: $t) -> Json {
                Json::Int(i as i128)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u32).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::from("héllo").render(), "\"héllo\"");
    }

    #[test]
    fn nested_structure() {
        let v = Json::obj()
            .set("name", "x")
            .set(
                "counts",
                Json::Arr(vec![Json::from(1u32), Json::from(2u32)]),
            )
            .set("nested", Json::obj().set("ok", true));
        assert_eq!(
            v.render(),
            r#"{"name":"x","counts":[1,2],"nested":{"ok":true}}"#
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_array_panics() {
        let _ = Json::Arr(vec![]).set("k", 1u32);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("-0.5e-1").unwrap(), Json::Float(-0.05));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::from("hi"));
        assert_eq!(Json::parse(" 1 ").unwrap(), Json::Int(1));
    }

    #[test]
    fn parse_structures_and_accessors() {
        let v = Json::parse(r#"[{"dataset":"d","op":"slg","s":2,"weighted":true}, 5]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("dataset").and_then(Json::as_str), Some("d"));
        assert_eq!(items[0].get("s").and_then(Json::as_int), Some(2));
        assert_eq!(items[0].get("weighted").and_then(Json::as_bool), Some(true));
        assert_eq!(items[0].get("missing"), None);
        assert_eq!(items[1].as_int(), Some(5));
        assert_eq!(items[1].as_str(), None);
        assert_eq!(items[0].entries().unwrap().len(), 4);
    }

    #[test]
    fn parse_render_roundtrip() {
        for text in [
            r#"{"a":[1,2.5,null,true],"b":{"c":"x\ny"},"d":[]}"#,
            r#"[{"k":"héllo"},-3]"#,
            "{}",
            "[]",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Json::from("a\"b\\c\ndAé")
        );
        // Surrogate pair escape for 𝄞 (U+1D11E), and the literal form.
        assert_eq!(
            Json::parse(r#""\ud834\udd1e""#).unwrap(),
            Json::from("\u{1D11E}")
        );
        assert_eq!(Json::parse("\"𝄞\"").unwrap(), Json::from("\u{1D11E}"));
        assert!(Json::parse(r#""\ud834""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\x""#).is_err(), "unknown escape");
        assert!(Json::parse(r#""\u+123""#).is_err(), "sign-prefixed hex");
        assert!(Json::parse(r#""\u12""#).is_err(), "truncated hex");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "   ",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "{a:1}",
            "1 2",
            "nul",
            "\"unterminated",
            "01a",
            "--3",
            // RFC 8259 number grammar: no leading zeros, no bare dots
            // or exponents, no interior signs.
            "01",
            "-01",
            "1.",
            "1.e3",
            "1e",
            "1e+",
            "2-3",
            "1+2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} accepted");
        }
        // Depth bomb is rejected, not a stack overflow.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok_depth = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok_depth).is_ok());
    }
}
