//! The server proper: TCP lifecycle, routing and endpoint handlers.
//!
//! `bind` → `spawn` starts an acceptor thread feeding a fixed worker
//! pool through a bounded queue; each worker speaks HTTP/1.1 keep-alive
//! on its connection. Query endpoints resolve their artifact through the
//! single-flight LRU cache, so the expensive s-line-graph construction
//! runs at most once per `(dataset, s, algorithm, weighted)`.

use crate::cache::{AlgoKind, ArtifactCache, CacheKey, CacheOutcome};
use crate::http::{self, ParseError, Request};
use crate::json::Json;
use crate::metrics::{Route, ServerMetrics};
use crate::pool::WorkerPool;
use crate::registry::{DatasetRegistry, DatasetSource};
use hyperline_hypergraph::Hypergraph;
use hyperline_slinegraph::{
    algo1_slinegraph, algo2_slinegraph, algo2_slinegraph_weighted, edge_counts_over_s,
    naive_slinegraph, spgemm_slinegraph, SLineGraph, Strategy,
};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 means available parallelism.
    pub threads: usize,
    /// Artifact-cache budget in mebibytes.
    pub cache_mb: usize,
    /// Bounded accept-queue depth (overflow answers 503).
    pub queue_depth: usize,
    /// Idle keep-alive / slow-client read timeout.
    pub read_timeout: Duration,
    /// Directory `POST /datasets?path=` may load files from. `None`
    /// (the default) disables path loading entirely — without a sandbox
    /// root, that endpoint would let any client read server files.
    pub data_root: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            threads: 0,
            cache_mb: 256,
            queue_depth: 1024,
            read_timeout: Duration::from_secs(10),
            data_root: None,
        }
    }
}

/// A cached artifact: the s-line graph plus (optionally) its weighted
/// edge list.
pub struct Artifact {
    /// The queryable line graph.
    pub slg: SLineGraph,
    /// Normalized `(i, j, overlap)` triples when built weighted.
    pub weighted_edges: Option<Vec<(u32, u32, u32)>>,
}

impl Artifact {
    /// Rough resident size, for the cache's byte budget.
    pub fn approx_bytes(&self) -> usize {
        let slg = &self.slg;
        // Edge list (8 B) + CSR adjacency (2×4 B per direction) + offsets.
        slg.num_edges() * (8 + 16)
            + slg.num_vertices() * 24
            + self.weighted_edges.as_ref().map_or(0, |w| w.len() * 12)
            + 128
    }
}

/// Shared state every worker sees.
pub struct ServerState {
    /// Named datasets.
    pub registry: DatasetRegistry,
    /// The artifact cache.
    pub cache: ArtifactCache<Artifact>,
    /// Request counters.
    pub metrics: ServerMetrics,
    /// Artifact computations currently running (divides the compute
    /// thread budget so concurrent misses don't oversubscribe cores).
    active_computations: std::sync::atomic::AtomicUsize,
    /// Sandbox root for `POST /datasets?path=` (None = disabled).
    data_root: Option<std::path::PathBuf>,
    started: Instant,
}

/// A bound-but-not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener and allocates shared state. No thread starts
    /// until [`Server::spawn`], so datasets can be preloaded in between.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(ServerState {
            registry: DatasetRegistry::new(),
            cache: ArtifactCache::new(config.cache_mb.saturating_mul(1024 * 1024)),
            metrics: ServerMetrics::new(),
            active_computations: std::sync::atomic::AtomicUsize::new(0),
            data_root: config.data_root.clone(),
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// The shared state (registry preloading, test assertions).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The dataset registry.
    pub fn registry(&self) -> &DatasetRegistry {
        &self.state.registry
    }

    /// Resolved worker-thread count.
    pub fn threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.config.threads
        }
    }

    /// Starts the worker pool and acceptor thread; returns a handle that
    /// can stop them.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let threads = self.threads();
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::clone(&self.state);
        let read_timeout = self.config.read_timeout;

        let pool_state = Arc::clone(&state);
        let pool = WorkerPool::start(threads, self.config.queue_depth, move |stream| {
            handle_connection(&pool_state, stream, read_timeout);
        });

        let acceptor_shutdown = Arc::clone(&shutdown);
        let acceptor_state = Arc::clone(&state);
        let listener = self.listener;
        let acceptor = std::thread::Builder::new()
            .name("hyperline-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if acceptor_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    match pool.queue().try_push(stream) {
                        Ok(()) => {
                            acceptor_state
                                .metrics
                                .connections_accepted
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Err(mut stream) => {
                            // Shed load: immediate 503, never queue.
                            acceptor_state
                                .metrics
                                .connections_rejected
                                .fetch_add(1, Ordering::Relaxed);
                            let body = Json::obj()
                                .set("error", "server overloaded, retry later")
                                .render();
                            let _ = http::write_response(&mut stream, 503, &body, false);
                        }
                    }
                }
                pool.shutdown();
            })
            .expect("failed to spawn acceptor thread");

        ServerHandle {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            state,
        }
    }

    /// Serves in the foreground until the process exits (the CLI path).
    pub fn run(self) {
        let handle = self.spawn();
        // The acceptor thread never exits unless shut down; park forever.
        if let Some(acceptor) = handle.acceptor {
            let _ = acceptor.join();
        }
    }
}

/// A running server; dropping it leaks the threads, so call
/// [`ServerHandle::shutdown`] for an orderly stop (tests do).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (for assertions and metrics scraping).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting, drains the worker pool and joins the acceptor.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Serves one connection: keep-alive request loop with a read timeout.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader) {
            Ok(request) => {
                let keep_alive = request.keep_alive();
                let started = Instant::now();
                let (route, status, body) = dispatch(state, &request);
                state.metrics.record(route, status, started.elapsed());
                if http::write_response(&mut writer, status, &body, keep_alive).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Io(_)) => {
                // Idle keep-alive timeout or peer reset: close quietly.
                return;
            }
            Err(ParseError::Malformed(message)) => {
                state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let body = Json::obj().set("error", message).render();
                let _ = http::write_response(&mut writer, 400, &body, false);
                return;
            }
        }
    }
}

/// Routes one request to its handler. Returns `(route, status, body)`.
fn dispatch(state: &ServerState, request: &Request) -> (Route, u16, String) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    let outcome = match (method, segments.as_slice()) {
        ("GET", []) => (Route::Index, handle_index()),
        ("GET", ["healthz"]) => (Route::Health, Ok((200, handle_health(state)))),
        ("GET", ["metrics"]) => (Route::Metrics, Ok((200, handle_metrics(state)))),
        ("GET", ["datasets"]) => (Route::ListDatasets, Ok((200, handle_list(state)))),
        ("POST", ["datasets"]) => (Route::AddDataset, handle_add_dataset(state, request)),
        ("GET", ["datasets", name, op]) => {
            let (route, result) = handle_dataset_op(state, request, name, op);
            (route, result)
        }
        // 405 only on paths that exist with another method; everything
        // else (including two-segment /datasets/{d}) is 404.
        (_, ["datasets"]) | (_, ["datasets", _, _]) | (_, ["metrics"]) | (_, ["healthz"]) => (
            Route::NotFound,
            Err((405, format!("method {method} not allowed here"))),
        ),
        _ => (
            Route::NotFound,
            Err((404, format!("no such endpoint {}", request.path))),
        ),
    };
    let (route, result) = outcome;
    match result {
        Ok((status, body)) => (route, status, body.render()),
        Err((status, message)) => (route, status, Json::obj().set("error", message).render()),
    }
}

type HandlerResult = Result<(u16, Json), (u16, String)>;

fn handle_index() -> HandlerResult {
    let endpoints = vec![
        Json::from("GET /healthz"),
        Json::from("GET /metrics"),
        Json::from("GET /datasets"),
        Json::from("POST /datasets?name=&profile=&seed= | ?name=&path="),
        Json::from("GET /datasets/{d}/stats"),
        Json::from("GET /datasets/{d}/slg?s=&algo=&weighted=&limit="),
        Json::from("GET /datasets/{d}/components?s=&limit="),
        Json::from("GET /datasets/{d}/betweenness?s=&top="),
        Json::from("GET /datasets/{d}/spectrum?s="),
        Json::from("GET /datasets/{d}/sweep?max_s="),
    ];
    Ok((
        200,
        Json::obj()
            .set("service", "hyperline-server")
            .set("version", env!("CARGO_PKG_VERSION"))
            .set("endpoints", Json::Arr(endpoints)),
    ))
}

fn handle_health(state: &ServerState) -> Json {
    Json::obj()
        .set("ok", true)
        .set("datasets", state.registry.len())
        .set("uptime_secs", state.started.elapsed().as_secs())
}

fn handle_metrics(state: &ServerState) -> Json {
    let cache = state.cache.stats();
    let mut endpoints = Json::obj();
    for route in Route::ALL {
        let c = state.metrics.endpoint(route);
        let requests = c.requests.load(Ordering::Relaxed);
        let total = c.micros_total.load(Ordering::Relaxed);
        endpoints = endpoints.set(
            route.name(),
            Json::obj()
                .set("requests", requests)
                .set("errors", c.errors.load(Ordering::Relaxed))
                .set(
                    "latency_micros_avg",
                    total.checked_div(requests).unwrap_or(0),
                )
                .set("latency_micros_max", c.micros_max.load(Ordering::Relaxed)),
        );
    }
    Json::obj()
        .set("uptime_secs", state.started.elapsed().as_secs())
        .set(
            "connections",
            Json::obj()
                .set(
                    "accepted",
                    state.metrics.connections_accepted.load(Ordering::Relaxed),
                )
                .set(
                    "rejected",
                    state.metrics.connections_rejected.load(Ordering::Relaxed),
                )
                .set(
                    "bad_requests",
                    state.metrics.bad_requests.load(Ordering::Relaxed),
                ),
        )
        .set(
            "cache",
            Json::obj()
                .set("hits", cache.hits)
                .set("misses", cache.misses)
                .set("coalesced", cache.coalesced)
                .set("evictions", cache.evictions)
                .set("entries", cache.entries)
                .set("used_bytes", cache.used_bytes)
                .set("budget_bytes", cache.budget_bytes),
        )
        .set("endpoints", endpoints)
}

fn handle_list(state: &ServerState) -> Json {
    let datasets: Vec<Json> = state
        .registry
        .list()
        .into_iter()
        .map(|(name, d)| {
            let source = match &d.source {
                DatasetSource::File(path) => Json::obj().set("file", path.as_str()),
                DatasetSource::Profile { profile, seed } => Json::obj()
                    .set("profile", profile.as_str())
                    .set("seed", *seed),
                DatasetSource::Inline => Json::obj().set("inline", true),
            };
            Json::obj()
                .set("name", name)
                .set("vertices", d.hypergraph.num_vertices())
                .set("hyperedges", d.hypergraph.num_edges())
                .set("incidences", d.hypergraph.num_incidences())
                .set("source", source)
        })
        .collect();
    Json::obj().set("datasets", Json::Arr(datasets))
}

fn handle_add_dataset(state: &ServerState, request: &Request) -> HandlerResult {
    let name = request.query_param("name");
    let seed: u64 = request.query_or("seed", 42).map_err(|e| (400, e))?;
    let loaded = match (request.query_param("profile"), request.query_param("path")) {
        (Some(profile), None) => state.registry.load_profile(profile, seed, name),
        (None, Some(path)) => {
            let full = resolve_data_path(state, path)?;
            state.registry.load_file(&full, name)
        }
        _ => {
            return Err((
                400,
                "exactly one of ?profile= or ?path= is required".to_string(),
            ))
        }
    };
    let name = loaded.map_err(|e| (400, e))?;
    // A replaced dataset must not serve artifacts of its predecessor.
    state.cache.invalidate_dataset(&name);
    let d = state.registry.get(&name).expect("just inserted");
    Ok((
        201,
        Json::obj()
            .set("name", name)
            .set("vertices", d.hypergraph.num_vertices())
            .set("hyperedges", d.hypergraph.num_edges()),
    ))
}

/// Resolves a client-supplied `path=` against the configured data root.
/// Paths must be relative, `..`-free, and the feature must be enabled —
/// this is an HTTP-reachable file read, so it never touches anything
/// outside the sandbox (no absolute paths, no traversal, no existence
/// oracle for the rest of the filesystem).
fn resolve_data_path(state: &ServerState, path: &str) -> Result<String, (u16, String)> {
    use std::path::Component;
    let Some(root) = &state.data_root else {
        return Err((
            403,
            "path loading is disabled; start the server with --data-root=DIR".to_string(),
        ));
    };
    let requested = std::path::Path::new(path);
    let traversal = requested
        .components()
        .any(|c| !matches!(c, Component::Normal(_) | Component::CurDir));
    if requested.is_absolute() || traversal {
        return Err((
            403,
            format!("path {path:?} must be relative to the data root, without '..'"),
        ));
    }
    Ok(root.join(requested).to_string_lossy().into_owned())
}

/// Shared parameter parsing for the per-dataset query endpoints.
struct QueryParams {
    s: u32,
    algorithm: AlgoKind,
    weighted: bool,
}

fn parse_query_params(request: &Request) -> Result<QueryParams, (u16, String)> {
    let s: u32 = request.query_or("s", 2).map_err(|e| (400, e))?;
    if s == 0 {
        return Err((400, "s must be at least 1".to_string()));
    }
    let algorithm = match request.query_param("algo") {
        None => AlgoKind::Algo2,
        Some(raw) => {
            AlgoKind::from_name(raw).ok_or_else(|| (400, format!("unknown algorithm {raw:?}")))?
        }
    };
    let weighted = matches!(request.query_param("weighted"), Some("1" | "true"));
    if weighted && algorithm != AlgoKind::Algo2 {
        return Err((400, "weighted=1 requires algo=algo2".to_string()));
    }
    Ok(QueryParams {
        s,
        algorithm,
        weighted,
    })
}

fn handle_dataset_op(
    state: &ServerState,
    request: &Request,
    name: &str,
    op: &str,
) -> (Route, HandlerResult) {
    let route = match op {
        "stats" => Route::Stats,
        "slg" => Route::Slg,
        "components" => Route::Components,
        "betweenness" => Route::Betweenness,
        "spectrum" => Route::Spectrum,
        "sweep" => Route::Sweep,
        _ => {
            return (
                Route::NotFound,
                Err((404, format!("no such dataset operation {op:?}"))),
            )
        }
    };
    let Some(dataset) = state.registry.get(name) else {
        return (route, Err((404, format!("no dataset named {name:?}"))));
    };
    let h = dataset.hypergraph;
    let result = match route {
        Route::Stats => handle_stats(name, &h),
        // Sweep runs an ensemble pass per request: budget it. The cached
        // ops budget their own compute/metric sections (wrapping the
        // whole call would count single-flight waiters as active).
        Route::Sweep => with_compute_budget(state, || handle_sweep(request, name, &h)),
        _ => handle_cached_op(state, request, route, name),
    };
    (route, result)
}

/// Runs `f` with the core budget split across the requests currently in
/// a compute-heavy handler: with `C` cores and `N` such requests, each
/// gets `max(1, C / N)` workers. A burst of cache misses or Stage-5
/// metric queries (betweenness runs a parallel kernel per request)
/// degrades to pipelining instead of spawning `N × C` threads.
fn with_compute_budget<T>(state: &ServerState, f: impl FnOnce() -> T) -> T {
    struct ActiveGuard<'a>(&'a std::sync::atomic::AtomicUsize);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let active = state.active_computations.fetch_add(1, Ordering::Relaxed) + 1;
    let _guard = ActiveGuard(&state.active_computations);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hyperline_util::parallel::with_threads((cores / active).max(1), f)
}

fn handle_stats(name: &str, h: &Hypergraph) -> HandlerResult {
    Ok((
        200,
        Json::obj()
            .set("dataset", name)
            .set("vertices", h.num_vertices())
            .set("hyperedges", h.num_edges())
            .set("incidences", h.num_incidences())
            .set("mean_vertex_degree", h.mean_vertex_degree())
            .set("mean_edge_size", h.mean_edge_size())
            .set("max_vertex_degree", h.max_vertex_degree())
            .set("max_edge_size", h.max_edge_size()),
    ))
}

fn handle_sweep(request: &Request, name: &str, h: &Hypergraph) -> HandlerResult {
    let max_s: u32 = request.query_or("max_s", 16).map_err(|e| (400, e))?;
    if !(1..=4096).contains(&max_s) {
        return Err((400, "max_s must be in 1..=4096".to_string()));
    }
    let s_values: Vec<u32> = (1..=max_s).collect();
    let counts = edge_counts_over_s(h, &s_values, &Strategy::default());
    let rows: Vec<Json> = counts
        .into_iter()
        .map(|(s, count)| Json::Arr(vec![Json::from(s), Json::from(count)]))
        .collect();
    Ok((
        200,
        Json::obj()
            .set("dataset", name)
            .set("max_s", max_s)
            .set("counts", Json::Arr(rows)),
    ))
}

/// The endpoints answered from the artifact cache.
fn handle_cached_op(
    state: &ServerState,
    request: &Request,
    route: Route,
    name: &str,
) -> HandlerResult {
    let params = parse_query_params(request)?;
    let key = CacheKey {
        dataset: name.to_string(),
        s: params.s,
        algorithm: params.algorithm,
        weighted: params.weighted,
    };
    let (artifact, outcome) = state
        .cache
        .get_or_compute(&key, || {
            // The hypergraph is re-fetched *inside* the flight: a
            // replacement racing an earlier lookup would otherwise slip
            // past the cache's generation check and pin a stale
            // artifact. Any invalidation after this point bumps the
            // generation the flight observed, which blocks caching.
            let h = state
                .registry
                .get(name)
                .ok_or_else(|| format!("dataset {name:?} was removed"))?
                .hypergraph;
            with_compute_budget(state, || compute_artifact(&h, &key))
        })
        .map_err(|e| (500, e))?;
    let slg = &artifact.slg;
    let base = Json::obj()
        .set("dataset", name)
        .set("s", params.s)
        .set("algorithm", params.algorithm.name())
        .set(
            "cache",
            match outcome {
                CacheOutcome::Hit => "hit",
                CacheOutcome::Miss => "miss",
                CacheOutcome::Coalesced => "coalesced",
            },
        );
    // The Stage-5 kernels below (components, betweenness, spectrum) run
    // parallel work per request; budget them like artifact construction.
    with_compute_budget(state, || match route {
        Route::Slg => {
            let limit: usize = request.query_or("limit", 100_000).map_err(|e| (400, e))?;
            let edges: Vec<Json> = if params.weighted {
                artifact
                    .weighted_edges
                    .as_ref()
                    .expect("weighted artifact carries weights")
                    .iter()
                    .take(limit)
                    .map(|&(i, j, w)| Json::Arr(vec![Json::from(i), Json::from(j), Json::from(w)]))
                    .collect()
            } else {
                slg.edges
                    .iter()
                    .take(limit)
                    .map(|&(i, j)| Json::Arr(vec![Json::from(i), Json::from(j)]))
                    .collect()
            };
            Ok((
                200,
                base.set("num_vertices", slg.num_vertices())
                    .set("num_edges", slg.num_edges())
                    .set("truncated", slg.num_edges() > limit)
                    .set("edges", Json::Arr(edges)),
            ))
        }
        Route::Components => {
            let limit: usize = request.query_or("limit", 1_000).map_err(|e| (400, e))?;
            let components = slg.connected_components();
            let total = components.len();
            let rows: Vec<Json> = components
                .into_iter()
                .take(limit)
                .map(|comp| Json::Arr(comp.into_iter().map(Json::from).collect()))
                .collect();
            Ok((
                200,
                base.set("count", total)
                    .set("truncated", total > limit)
                    .set("components", Json::Arr(rows)),
            ))
        }
        Route::Betweenness => {
            let top: usize = request.query_or("top", 10).map_err(|e| (400, e))?;
            let ranking: Vec<Json> = slg
                .betweenness()
                .into_iter()
                .take(top)
                .map(|(edge, score)| Json::obj().set("edge", edge).set("score", score))
                .collect();
            Ok((200, base.set("top", top).set("ranking", Json::Arr(ranking))))
        }
        Route::Spectrum => Ok((
            200,
            base.set("num_vertices", slg.num_vertices())
                .set("num_edges", slg.num_edges())
                .set("diameter", slg.s_diameter())
                .set("algebraic_connectivity", slg.algebraic_connectivity()),
        )),
        _ => unreachable!("handle_cached_op only serves cached routes"),
    })
}

/// Builds the artifact for `key` (runs outside the cache lock; the
/// single-flight layer guarantees one concurrent builder per key).
fn compute_artifact(h: &Hypergraph, key: &CacheKey) -> Result<(Artifact, usize), String> {
    let strategy = Strategy::default();
    let (edges, weighted_edges) = if key.weighted {
        let (mut triples, _stats) = algo2_slinegraph_weighted(h, key.s, &strategy);
        for t in triples.iter_mut() {
            if t.0 > t.1 {
                *t = (t.1, t.0, t.2);
            }
        }
        triples.sort_unstable();
        let edges = triples.iter().map(|&(i, j, _)| (i, j)).collect();
        (edges, Some(triples))
    } else {
        let edges = match key.algorithm {
            AlgoKind::Algo2 => algo2_slinegraph(h, key.s, &strategy).edges,
            AlgoKind::Algo1 => algo1_slinegraph(h, key.s, &strategy).edges,
            AlgoKind::Naive => naive_slinegraph(h, key.s, &strategy).edges,
            AlgoKind::Spgemm => spgemm_slinegraph(h, key.s, true).edges,
        };
        (edges, None)
    };
    let slg = SLineGraph::new_squeezed(key.s, h.num_edges(), edges);
    let artifact = Artifact {
        slg,
        weighted_edges,
    };
    let bytes = artifact.approx_bytes();
    Ok((artifact, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> Server {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_mb: 16,
            queue_depth: 16,
            read_timeout: Duration::from_secs(2),
            data_root: None,
        })
        .unwrap();
        server
            .registry()
            .insert("paper", Hypergraph::paper_example(), DatasetSource::Inline);
        server
    }

    fn request(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), http::parse_query(q)),
            None => (path.to_string(), Vec::new()),
        };
        Request {
            method: "GET".to_string(),
            path,
            query,
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
        }
    }

    #[test]
    fn dispatch_routes_and_statuses() {
        let server = test_server();
        let state = server.state();
        let (route, status, _) = dispatch(state, &request("/"));
        assert_eq!((route, status), (Route::Index, 200));
        let (route, status, _) = dispatch(state, &request("/healthz"));
        assert_eq!((route, status), (Route::Health, 200));
        let (route, status, _) = dispatch(state, &request("/nope"));
        assert_eq!((route, status), (Route::NotFound, 404));
        // Two-segment dataset paths are unknown routes (404), not 405.
        let (route, status, _) = dispatch(state, &request("/datasets/paper"));
        assert_eq!((route, status), (Route::NotFound, 404));
        // Wrong method on a real route is 405.
        let mut req = request("/datasets/paper/slg");
        req.method = "DELETE".to_string();
        let (_, status, _) = dispatch(state, &req);
        assert_eq!(status, 405);
        let (route, status, _) = dispatch(state, &request("/datasets/missing/slg"));
        assert_eq!((route, status), (Route::Slg, 404));
        let (_, status, body) = dispatch(state, &request("/datasets/paper/slg?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"cache\":\"miss\""), "{body}");
        let (_, status, body) = dispatch(state, &request("/datasets/paper/slg?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"cache\":\"hit\""), "{body}");
    }

    #[test]
    fn slg_body_contains_paper_triangle() {
        let server = test_server();
        let (_, status, body) = dispatch(server.state(), &request("/datasets/paper/slg?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"edges\":[[0,1],[0,2],[1,2]]"), "{body}");
        assert!(body.contains("\"num_edges\":3"));
    }

    #[test]
    fn weighted_slg_reports_overlaps() {
        let server = test_server();
        let (_, status, body) = dispatch(
            server.state(),
            &request("/datasets/paper/slg?s=2&weighted=1"),
        );
        assert_eq!(status, 200);
        // inc(0,1)=2, inc(0,2)=3, inc(1,2)=3 on the paper example.
        assert!(
            body.contains("\"edges\":[[0,1,2],[0,2,3],[1,2,3]]"),
            "{body}"
        );
    }

    #[test]
    fn bad_parameters_answer_400() {
        let server = test_server();
        let state = server.state();
        for path in [
            "/datasets/paper/slg?s=0",
            "/datasets/paper/slg?s=banana",
            "/datasets/paper/slg?algo=quantum",
            "/datasets/paper/slg?weighted=1&algo=naive",
            "/datasets/paper/sweep?max_s=0",
        ] {
            let (_, status, _) = dispatch(state, &request(path));
            assert_eq!(status, 400, "{path}");
        }
    }

    #[test]
    fn components_betweenness_spectrum_sweep() {
        let server = test_server();
        let state = server.state();
        let (_, status, body) = dispatch(state, &request("/datasets/paper/components?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"count\":1"));
        assert!(body.contains("[0,1,2]"));
        let (_, status, body) = dispatch(state, &request("/datasets/paper/betweenness?s=2&top=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"ranking\""));
        let (_, status, body) = dispatch(state, &request("/datasets/paper/spectrum?s=2"));
        assert_eq!(status, 200);
        assert!(body.contains("\"algebraic_connectivity\""));
        let (_, status, body) = dispatch(state, &request("/datasets/paper/sweep?max_s=4"));
        assert_eq!(status, 200);
        assert!(
            body.contains("\"counts\":[[1,4],[2,3],[3,2],[4,0]]"),
            "{body}"
        );
    }

    #[test]
    fn path_loading_is_sandboxed() {
        // Disabled without a data root.
        let server = test_server();
        let mut req = request("/datasets?path=somefile.hgr");
        req.method = "POST".to_string();
        let (_, status, body) = dispatch(server.state(), &req);
        assert_eq!(status, 403, "{body}");
        assert!(body.contains("data-root"), "{body}");

        // With a data root: relative paths inside it load; absolute and
        // traversing paths are rejected without touching the filesystem.
        let dir = std::env::temp_dir().join("hyperline-server-data-root");
        std::fs::create_dir_all(&dir).unwrap();
        hyperline_hypergraph::io::save_edge_list(
            &Hypergraph::paper_example(),
            dir.join("inside.hgr"),
        )
        .unwrap();
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            data_root: Some(dir.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let state = server.state();
        let mut req = request("/datasets?path=inside.hgr");
        req.method = "POST".to_string();
        let (_, status, body) = dispatch(state, &req);
        assert_eq!(status, 201, "{body}");
        assert!(state.registry.get("inside").is_some());
        for bad in [
            "/datasets?path=/etc/passwd",
            "/datasets?path=../outside.hgr",
            "/datasets?path=ok/../../outside.hgr",
        ] {
            let mut req = request(bad);
            req.method = "POST".to_string();
            let (_, status, _) = dispatch(state, &req);
            assert_eq!(status, 403, "{bad}");
        }
        std::fs::remove_file(dir.join("inside.hgr")).ok();
    }

    #[test]
    fn post_datasets_loads_profiles() {
        let server = test_server();
        let state = server.state();
        let mut req = request("/datasets?profile=lesMis&seed=7");
        req.method = "POST".to_string();
        let (route, status, body) = dispatch(state, &req);
        assert_eq!((route, status), (Route::AddDataset, 201));
        assert!(body.contains("\"name\":\"lesMis\""));
        assert!(state.registry.get("lesMis").is_some());
        // Missing source → 400.
        let mut req = request("/datasets?name=x");
        req.method = "POST".to_string();
        let (_, status, _) = dispatch(state, &req);
        assert_eq!(status, 400);
    }

    #[test]
    fn distinct_algorithms_are_distinct_cache_entries() {
        let server = test_server();
        let state = server.state();
        let (_, _, body) = dispatch(state, &request("/datasets/paper/slg?s=2&algo=algo1"));
        assert!(body.contains("\"cache\":\"miss\""));
        let (_, _, body) = dispatch(state, &request("/datasets/paper/slg?s=2&algo=spgemm"));
        assert!(body.contains("\"cache\":\"miss\""));
        let (_, _, body) = dispatch(state, &request("/datasets/paper/slg?s=2&algo=algo1"));
        assert!(body.contains("\"cache\":\"hit\""));
        assert_eq!(state.cache.stats().entries, 2);
    }
}
