//! Gustavson-style sparse general matrix-matrix multiplication (SpGEMM).
//!
//! This is the paper's baseline comparator (§III-G, §VI-G): computing the
//! hyperedge overlap matrix as `L = Hᵀ·H` with a general SpGEMM, then
//! filtering `L[i,j] ≥ s`. It is intentionally faithful to what makes the
//! approach slow for this problem:
//!
//! 1. it **materializes the full product** before filtering,
//! 2. the plain variant computes **both triangles** of the symmetric
//!    product, and
//! 3. it cannot apply degree-based pruning or in-place filtration.
//!
//! Rows of the output are computed in parallel with a two-phase Gustavson
//! scheme (symbolic nnz count, then numeric fill into pre-sized storage),
//! using one dense sparse-accumulator (SPA) per worker.

use crate::matrix::CsrMatrix;
use hyperline_util::parallel::{par_map_range, par_map_range_init};

/// Restriction applied while computing the product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Compute every entry of the product ("SpGEMM+Filter").
    Full,
    /// Compute only entries with `col > row` ("SpGEMM+Filter+Upper") —
    /// exploits the symmetry of `HᵀH` to halve work and memory; the
    /// diagonal (edge sizes) is also skipped since the s-line graph has no
    /// self loops.
    Upper,
}

/// A dense sparse accumulator: values plus a touched-column list so reset
/// is O(touched), not O(ncols).
struct Spa {
    vals: Vec<u32>,
    touched: Vec<u32>,
}

impl Spa {
    fn new(ncols: usize) -> Self {
        Self {
            vals: vec![0; ncols],
            touched: Vec::new(),
        }
    }

    #[inline]
    fn add(&mut self, col: u32, v: u32) {
        let slot = &mut self.vals[col as usize];
        if *slot == 0 {
            self.touched.push(col);
        }
        *slot += v;
    }

    /// Drains the accumulated row into `(cols, vals)`, sorted by column,
    /// resetting the accumulator.
    fn drain_into(&mut self, cols: &mut Vec<u32>, vals: &mut Vec<u32>) {
        self.touched.sort_unstable();
        for &c in &self.touched {
            cols.push(c);
            vals.push(self.vals[c as usize]);
            self.vals[c as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Computes `C = A·B` with Gustavson's row-wise algorithm, rows of `C`
/// in parallel.
///
/// With `triangle == Upper`, only entries `(i, j)` with `j > i` are kept
/// (meaningful when the true product is known symmetric, as for `HᵀH`).
///
/// # Panics
/// Panics if `a.ncols() != b.nrows()`.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix, triangle: Triangle) -> CsrMatrix {
    assert_eq!(a.ncols(), b.nrows(), "dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();

    // Per-row results computed independently, then stitched.
    let rows: Vec<(Vec<u32>, Vec<u32>)> = par_map_range_init(
        nrows,
        || Spa::new(ncols),
        |spa, i| {
            for (&k, &av) in a.row_cols(i).iter().zip(a.row_vals(i)) {
                for (&j, &bv) in b.row_cols(k as usize).iter().zip(b.row_vals(k as usize)) {
                    if triangle == Triangle::Upper && j <= i as u32 {
                        continue;
                    }
                    spa.add(j, av * bv);
                }
            }
            let mut cols = Vec::with_capacity(spa.touched.len());
            let mut vals = Vec::with_capacity(spa.touched.len());
            spa.drain_into(&mut cols, &mut vals);
            (cols, vals)
        },
    );

    let mut offsets = Vec::with_capacity(nrows + 1);
    offsets.push(0usize);
    let nnz: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut cols = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (rc, rv) in rows {
        cols.extend_from_slice(&rc);
        vals.extend_from_slice(&rv);
        offsets.push(cols.len());
    }
    CsrMatrix::from_parts(nrows, ncols, offsets, cols, vals)
}

/// Sequential reference SpGEMM (used to validate the parallel kernel).
pub fn spgemm_seq(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.ncols(), b.nrows(), "dimension mismatch");
    let mut spa = Spa::new(b.ncols());
    let mut offsets = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        for (&k, &av) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            for (&j, &bv) in b.row_cols(k as usize).iter().zip(b.row_vals(k as usize)) {
                spa.add(j, av * bv);
            }
        }
        spa.drain_into(&mut cols, &mut vals);
        offsets.push(cols.len());
    }
    CsrMatrix::from_parts(a.nrows(), b.ncols(), offsets, cols, vals)
}

/// Filters a product matrix to the s-line-graph edge list: pairs `(i, j)`
/// with `value ≥ s`, `i < j` (diagonal excluded). Works on both `Full` and
/// `Upper` products.
///
/// Row-major iteration over sorted columns means the output is already
/// sorted ascending — no post-sort needed. Rows filter in parallel
/// (contiguous row blocks, stitched back in order).
pub fn filter_to_edge_list(product: &CsrMatrix, s: u32) -> Vec<(u32, u32)> {
    let filter_row = |i: usize| {
        product
            .row_cols(i)
            .iter()
            .zip(product.row_vals(i))
            .filter(move |&(&j, &v)| v >= s && (i as u32) < j)
            .map(move |(&j, _)| (i as u32, j))
    };
    if product.nnz() < (1 << 14) {
        return (0..product.nrows()).flat_map(filter_row).collect();
    }
    // Fixed row-block boundaries (a function of the shape alone), so the
    // output is identical for every worker count.
    let nrows = product.nrows();
    let blocks = 256.min(nrows);
    let parts: Vec<Vec<(u32, u32)>> = par_map_range(blocks, |b| {
        (b * nrows / blocks..(b + 1) * nrows / blocks)
            .flat_map(filter_row)
            .collect()
    });
    let mut edges = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for mut p in parts {
        edges.append(&mut p);
    }
    edges
}

/// Convenience: the overlap matrix `L = Hᵀ·H` of a hypergraph given its
/// edge→vertex CSR pattern `Hᵀ` and vertex→edge CSR pattern `H`.
pub fn overlap_matrix(
    edge_csr: &hyperline_hypergraph::Csr,
    vertex_csr: &hyperline_hypergraph::Csr,
    triangle: Triangle,
) -> CsrMatrix {
    let a = CsrMatrix::from_pattern(edge_csr);
    let b = CsrMatrix::from_pattern(vertex_csr);
    spgemm(&a, &b, triangle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperline_hypergraph::Hypergraph;
    use rand::prelude::*;

    fn dense_mul(a: &CsrMatrix, b: &CsrMatrix) -> Vec<Vec<u32>> {
        let mut c = vec![vec![0u32; b.ncols()]; a.nrows()];
        for (i, k, av) in a.iter() {
            for (&j, &bv) in b.row_cols(k as usize).iter().zip(b.row_vals(k as usize)) {
                c[i as usize][j as usize] += av * bv;
            }
        }
        c
    }

    fn random_matrix(rng: &mut StdRng, nrows: usize, ncols: usize, density: f64) -> CsrMatrix {
        let mut triplets = Vec::new();
        for r in 0..nrows as u32 {
            for c in 0..ncols as u32 {
                if rng.gen_bool(density) {
                    triplets.push((r, c, rng.gen_range(1..4u32)));
                }
            }
        }
        CsrMatrix::from_triplets(nrows, ncols, &triplets)
    }

    #[test]
    fn small_known_product() {
        // A = [1 0; 1 1], B = [0 2; 3 0] -> C = [0 2; 3 2]
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1), (1, 0, 1), (1, 1, 1)]);
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2), (1, 0, 3)]);
        let c = spgemm(&a, &b, Triangle::Full);
        assert_eq!(c.get(0, 0), 0);
        assert_eq!(c.get(0, 1), 2);
        assert_eq!(c.get(1, 0), 3);
        assert_eq!(c.get(1, 1), 2);
    }

    #[test]
    fn parallel_matches_sequential_and_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let (m, k, n) = (
                rng.gen_range(1..20),
                rng.gen_range(1..20),
                rng.gen_range(1..20),
            );
            let a = random_matrix(&mut rng, m, k, 0.3);
            let b = random_matrix(&mut rng, k, n, 0.3);
            let par = spgemm(&a, &b, Triangle::Full);
            let seq = spgemm_seq(&a, &b);
            assert_eq!(par, seq);
            let dense = dense_mul(&a, &b);
            for (i, row) in dense.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    assert_eq!(par.get(i, j as u32), v, "at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn upper_triangle_drops_lower_and_diagonal() {
        let h = Hypergraph::paper_example();
        let full = overlap_matrix(h.edge_csr(), h.vertex_csr(), Triangle::Full);
        let upper = overlap_matrix(h.edge_csr(), h.vertex_csr(), Triangle::Upper);
        assert!(full.is_symmetric());
        for (i, j, v) in upper.iter() {
            assert!(j > i);
            assert_eq!(full.get(i as usize, j), v);
        }
        // Upper nnz = (full nnz - diagonal nnz) / 2.
        let diag_count = (0..full.nrows())
            .filter(|&i| full.get(i, i as u32) > 0)
            .count();
        assert_eq!(upper.nnz(), (full.nnz() - diag_count) / 2);
    }

    #[test]
    fn overlap_matrix_matches_inc() {
        let h = Hypergraph::paper_example();
        let l = overlap_matrix(h.edge_csr(), h.vertex_csr(), Triangle::Full);
        for e in 0..4u32 {
            for f in 0..4u32 {
                let expect = if e == f { h.edge_size(e) } else { h.inc(e, f) };
                assert_eq!(l.get(e as usize, f), expect as u32, "e={e} f={f}");
            }
        }
    }

    #[test]
    fn filtration_produces_slinegraph_edges() {
        let h = Hypergraph::paper_example();
        let l = overlap_matrix(h.edge_csr(), h.vertex_csr(), Triangle::Full);
        // s = 2: pairs sharing >= 2 vertices: (0,1) {b,c}, (0,2) {a,b,c}, (1,2) {b,c,d}
        let mut edges = filter_to_edge_list(&l, 2);
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
        // s = 3: only (0,2) and (1,2)... inc(1,2) = |{b,c,d}| = 3. inc(0,2)=3.
        let mut edges = filter_to_edge_list(&l, 3);
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 2), (1, 2)]);
        // s = 4: none.
        assert!(filter_to_edge_list(&l, 4).is_empty());
    }

    #[test]
    fn filter_on_upper_equals_filter_on_full() {
        let h = Hypergraph::paper_example();
        let full = overlap_matrix(h.edge_csr(), h.vertex_csr(), Triangle::Full);
        let upper = overlap_matrix(h.edge_csr(), h.vertex_csr(), Triangle::Upper);
        for s in 1..=5 {
            let mut a = filter_to_edge_list(&full, s);
            let mut b = filter_to_edge_list(&upper, s);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "s={s}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_check() {
        let a = CsrMatrix::from_triplets(2, 3, &[]);
        let b = CsrMatrix::from_triplets(2, 2, &[]);
        spgemm(&a, &b, Triangle::Full);
    }

    #[test]
    fn empty_product() {
        let a = CsrMatrix::from_triplets(3, 3, &[]);
        let b = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1)]);
        let c = spgemm(&a, &b, Triangle::Full);
        assert_eq!(c.nnz(), 0);
    }
}
