//! Exact planted overlap structures.
//!
//! Several of the paper's experiments hinge on *specific* deep-overlap
//! structure existing in the data: Friendster has 20 communities sharing
//! ≥ 1024 members (§VI-G), IMDB has actor groups with 100+ joint movies
//! arranged in a star (§V-C), condMat has author teams with up to 16 joint
//! papers (§V-B). Background noise from the community model does not
//! guarantee such structure, so these helpers plant it exactly: planted
//! groups get **fresh vertices** appended to the ID space, making the
//! planted overlaps precise and non-interacting.

use rand::prelude::*;

/// A group of hyperedges with controlled pairwise overlap.
#[derive(Debug, Clone)]
pub struct PlantedGroup {
    /// Number of hyperedges in the group (≥ 1; stars need ≥ 2).
    pub members: usize,
    /// Exact overlap: vertices shared by all members (clique shape) or by
    /// the hub and each leaf (star shape).
    pub shared: usize,
    /// Private vertices added to each member on top of the shared block.
    pub extra_per_member: usize,
    /// Shape of the overlap structure.
    pub shape: GroupShape,
}

/// Overlap topology of a planted group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupShape {
    /// Every member contains the same shared vertex block: all pairs
    /// overlap in exactly `shared` vertices (an s-clique at `s = shared`).
    Clique,
    /// Member 0 is a hub: it shares a distinct fresh block of `shared`
    /// vertices with each leaf; leaves share nothing with each other.
    /// In the s-line graph at `s = shared` this is a star — the shape of
    /// the Adoor Bhasi component in the paper's §V-C.
    Star,
    /// Consecutive members share a fresh block of `shared` vertices;
    /// non-consecutive members share nothing. In the s-line graph at
    /// `s = shared` this is a path — a sparse, weakly-connected component
    /// (low algebraic connectivity, the mid-s regime of Figure 6).
    Chain,
}

/// Plants `groups` into `lists`, appending fresh vertex IDs starting at
/// `*num_vertices` and bumping it. Returns the index ranges of the edges
/// added for each group.
pub fn plant_groups(
    lists: &mut Vec<Vec<u32>>,
    num_vertices: &mut usize,
    groups: &[PlantedGroup],
    rng: &mut impl Rng,
) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::with_capacity(groups.len());
    for g in groups {
        let start = lists.len();
        let mut fresh = || {
            let v = *num_vertices as u32;
            *num_vertices += 1;
            v
        };
        match g.shape {
            GroupShape::Clique => {
                let shared_block: Vec<u32> = (0..g.shared).map(|_| fresh()).collect();
                for _ in 0..g.members {
                    let mut edge = shared_block.clone();
                    for _ in 0..g.extra_per_member {
                        edge.push(fresh());
                    }
                    edge.sort_unstable();
                    lists.push(edge);
                }
            }
            GroupShape::Chain => {
                assert!(g.members >= 2, "a chain needs at least two members");
                // blocks[i] is shared between member i and member i + 1.
                let blocks: Vec<Vec<u32>> = (0..g.members - 1)
                    .map(|_| (0..g.shared).map(|_| fresh()).collect())
                    .collect();
                for i in 0..g.members {
                    let mut edge: Vec<u32> = Vec::new();
                    if i > 0 {
                        edge.extend_from_slice(&blocks[i - 1]);
                    }
                    if i < g.members - 1 {
                        edge.extend_from_slice(&blocks[i]);
                    }
                    for _ in 0..g.extra_per_member {
                        edge.push(fresh());
                    }
                    edge.sort_unstable();
                    lists.push(edge);
                }
            }
            GroupShape::Star => {
                assert!(g.members >= 2, "a star needs a hub and at least one leaf");
                let leaves = g.members - 1;
                let blocks: Vec<Vec<u32>> = (0..leaves)
                    .map(|_| (0..g.shared).map(|_| fresh()).collect())
                    .collect();
                let mut hub: Vec<u32> = blocks.iter().flatten().copied().collect();
                for _ in 0..g.extra_per_member {
                    hub.push(fresh());
                }
                hub.sort_unstable();
                lists.push(hub);
                for block in blocks {
                    let mut edge = block;
                    for _ in 0..g.extra_per_member {
                        edge.push(fresh());
                    }
                    edge.sort_unstable();
                    lists.push(edge);
                }
            }
        }
        // Shuffle is intentionally *not* applied to edge order: planted
        // edges sit at known indices so tests/examples can find them. The
        // rng parameter exists for future jitter; touch it so seeds that
        // include planting stay reproducible when jitter lands.
        let _ = rng.gen::<u32>();
        ranges.push(start..lists.len());
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperline_hypergraph::Hypergraph;

    fn build(groups: &[PlantedGroup]) -> (Hypergraph, Vec<std::ops::Range<usize>>) {
        let mut lists = Vec::new();
        let mut n = 0usize;
        let mut rng = StdRng::seed_from_u64(0);
        let ranges = plant_groups(&mut lists, &mut n, groups, &mut rng);
        (Hypergraph::from_edge_lists(&lists, n), ranges)
    }

    #[test]
    fn clique_group_exact_overlaps() {
        let (h, ranges) = build(&[PlantedGroup {
            members: 4,
            shared: 10,
            extra_per_member: 3,
            shape: GroupShape::Clique,
        }]);
        assert_eq!(ranges[0], 0..4);
        for e in 0..4u32 {
            assert_eq!(h.edge_size(e), 13);
            for f in (e + 1)..4u32 {
                assert_eq!(h.inc(e, f), 10, "pair ({e},{f})");
            }
        }
    }

    #[test]
    fn star_group_hub_and_leaves() {
        let (h, ranges) = build(&[PlantedGroup {
            members: 5, // hub + 4 leaves
            shared: 7,
            extra_per_member: 2,
            shape: GroupShape::Star,
        }]);
        assert_eq!(ranges[0], 0..5);
        let hub = 0u32;
        assert_eq!(h.edge_size(hub), 4 * 7 + 2);
        for leaf in 1..5u32 {
            assert_eq!(h.edge_size(leaf), 9);
            assert_eq!(h.inc(hub, leaf), 7, "hub-leaf {leaf}");
            for other in (leaf + 1)..5u32 {
                assert_eq!(
                    h.inc(leaf, other),
                    0,
                    "leaves {leaf},{other} must not overlap"
                );
            }
        }
    }

    #[test]
    fn multiple_groups_do_not_interact() {
        let (h, ranges) = build(&[
            PlantedGroup {
                members: 3,
                shared: 5,
                extra_per_member: 1,
                shape: GroupShape::Clique,
            },
            PlantedGroup {
                members: 2,
                shared: 8,
                extra_per_member: 0,
                shape: GroupShape::Clique,
            },
        ]);
        assert_eq!(ranges, vec![0..3, 3..5]);
        for e in 0..3u32 {
            for f in 3..5u32 {
                assert_eq!(h.inc(e, f), 0, "cross-group ({e},{f})");
            }
        }
        assert_eq!(h.inc(3, 4), 8);
    }

    #[test]
    fn planting_appends_to_existing_lists() {
        let mut lists = vec![vec![0u32, 1], vec![1, 2]];
        let mut n = 3usize;
        let mut rng = StdRng::seed_from_u64(1);
        let ranges = plant_groups(
            &mut lists,
            &mut n,
            &[PlantedGroup {
                members: 2,
                shared: 4,
                extra_per_member: 0,
                shape: GroupShape::Clique,
            }],
            &mut rng,
        );
        assert_eq!(ranges[0], 2..4);
        assert_eq!(lists.len(), 4);
        assert_eq!(n, 3 + 4);
        // Planted vertices start at the old boundary.
        assert!(lists[2].iter().all(|&v| v >= 3));
    }

    #[test]
    fn chain_group_path_structure() {
        let (h, ranges) = build(&[PlantedGroup {
            members: 6,
            shared: 9,
            extra_per_member: 1,
            shape: GroupShape::Chain,
        }]);
        assert_eq!(ranges[0], 0..6);
        for i in 0..6u32 {
            for j in (i + 1)..6u32 {
                let expect = if j == i + 1 { 9 } else { 0 };
                assert_eq!(h.inc(i, j), expect, "pair ({i},{j})");
            }
        }
        // Interior members carry two blocks + extras; endpoints one.
        assert_eq!(h.edge_size(0), 10);
        assert_eq!(h.edge_size(3), 19);
    }

    #[test]
    #[should_panic(expected = "chain needs at least two")]
    fn chain_requires_two_members() {
        build(&[PlantedGroup {
            members: 1,
            shared: 3,
            extra_per_member: 0,
            shape: GroupShape::Chain,
        }]);
    }

    #[test]
    #[should_panic(expected = "star needs a hub")]
    fn star_requires_two_members() {
        build(&[PlantedGroup {
            members: 1,
            shared: 3,
            extra_per_member: 0,
            shape: GroupShape::Star,
        }]);
    }
}
