//! s-walk primitives (§II-B).
//!
//! An *s-walk* is a sequence of hyperedges where consecutive edges share
//! at least `s` vertices; an *s-path* repeats no edge. These are the
//! foundation of every s-measure: s-distance is shortest-s-walk length,
//! s-betweenness counts shortest s-walks, s-components are s-walk
//! reachability classes. On a constructed [`SLineGraph`] an s-walk is
//! just a graph walk, so this module provides the walk-level queries the
//! framework's Stage 5 builds on: walk validation against the original
//! hypergraph, shortest s-walk extraction, and shortest-s-walk counting
//! (the `σ` of the s-betweenness definition).

use crate::linegraph::SLineGraph;
use hyperline_hypergraph::Hypergraph;
use std::collections::VecDeque;

/// True if `walk` is a valid s-walk in `h`: every consecutive pair of
/// hyperedges is s-incident. Walks of length 0 or 1 are trivially valid
/// (if the edges exist).
pub fn is_s_walk(h: &Hypergraph, s: u32, walk: &[u32]) -> bool {
    if walk.iter().any(|&e| (e as usize) >= h.num_edges()) {
        return false;
    }
    walk.windows(2).all(|w| h.inc(w[0], w[1]) >= s as usize)
}

/// True if `walk` is an s-path: a valid s-walk with no repeated edge.
pub fn is_s_path(h: &Hypergraph, s: u32, walk: &[u32]) -> bool {
    let mut seen = hyperline_util::fxhash::FxHashSet::default();
    walk.iter().all(|&e| seen.insert(e)) && is_s_walk(h, s, walk)
}

/// One shortest s-walk between two hyperedges (original IDs) on a
/// constructed s-line graph, as the sequence of hyperedge IDs, or `None`
/// if they are not s-connected. BFS with parent pointers.
pub fn shortest_s_walk(slg: &SLineGraph, from: u32, to: u32) -> Option<Vec<u32>> {
    let (gs, gt) = (slg.graph_vertex(from)?, slg.graph_vertex(to)?);
    if gs == gt {
        return Some(vec![from]);
    }
    let g = slg.graph();
    let n = g.num_vertices();
    let mut parent = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    parent[gs as usize] = gs;
    queue.push_back(gs);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if parent[v as usize] == u32::MAX {
                parent[v as usize] = u;
                if v == gt {
                    let mut walk = vec![v];
                    let mut cur = v;
                    while cur != gs {
                        cur = parent[cur as usize];
                        walk.push(cur);
                    }
                    walk.reverse();
                    return Some(walk.into_iter().map(|x| slg.original_id(x)).collect());
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Counts shortest s-walks between two hyperedges: the `σ_fg` of the
/// s-betweenness definition. Returns `(distance, count)`, or `None` if
/// not s-connected. BFS with path-count accumulation; counts are `f64`
/// (they grow combinatorially).
pub fn count_shortest_s_walks(slg: &SLineGraph, from: u32, to: u32) -> Option<(u32, f64)> {
    let (gs, gt) = (slg.graph_vertex(from)?, slg.graph_vertex(to)?);
    if gs == gt {
        return Some((0, 1.0));
    }
    let g = slg.graph();
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut queue = VecDeque::new();
    dist[gs as usize] = 0;
    sigma[gs as usize] = 1.0;
    queue.push_back(gs);
    while let Some(u) = queue.pop_front() {
        if dist[u as usize] >= dist[gt as usize] {
            break; // all shortest paths to the target are settled
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
            if dist[v as usize] == dist[u as usize] + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    (dist[gt as usize] != u32::MAX).then(|| (dist[gt as usize], sigma[gt as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::algo2_slinegraph;
    use crate::strategy::Strategy;

    fn paper_slg(s: u32) -> (Hypergraph, SLineGraph) {
        let h = Hypergraph::paper_example();
        let r = algo2_slinegraph(&h, s, &Strategy::default());
        let slg = SLineGraph::new_squeezed(s, h.num_edges(), r.edges);
        (h, slg)
    }

    #[test]
    fn walk_validation() {
        let h = Hypergraph::paper_example();
        // 0-2-3 is a 1-walk (inc(0,2)=3, inc(2,3)=1) but not a 2-walk.
        assert!(is_s_walk(&h, 1, &[0, 2, 3]));
        assert!(!is_s_walk(&h, 2, &[0, 2, 3]));
        // 0-1 is direct at s<=2.
        assert!(is_s_walk(&h, 2, &[0, 1]));
        assert!(!is_s_walk(&h, 3, &[0, 1]));
        // Trivial cases.
        assert!(is_s_walk(&h, 4, &[2]));
        assert!(is_s_walk(&h, 4, &[]));
        // Out-of-range edge.
        assert!(!is_s_walk(&h, 1, &[0, 9]));
    }

    #[test]
    fn path_rejects_repeats() {
        let h = Hypergraph::paper_example();
        assert!(is_s_path(&h, 1, &[0, 2, 3]));
        assert!(is_s_walk(&h, 1, &[0, 2, 0]));
        assert!(!is_s_path(&h, 1, &[0, 2, 0]));
    }

    #[test]
    fn shortest_walk_on_paper_example() {
        let (h, slg) = paper_slg(1);
        // Edges 0 and 3 connect through edge 2.
        let walk = shortest_s_walk(&slg, 0, 3).unwrap();
        assert_eq!(walk, vec![0, 2, 3]);
        assert!(is_s_walk(&h, 1, &walk));
        // Adjacent pair.
        assert_eq!(shortest_s_walk(&slg, 0, 1).unwrap().len(), 2);
        // Self.
        assert_eq!(shortest_s_walk(&slg, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn shortest_walk_absent_when_disconnected() {
        let (_, slg) = paper_slg(3);
        // s = 3 line graph: edges {0-2, 1-2}; hyperedge 3 is isolated.
        assert!(shortest_s_walk(&slg, 0, 3).is_none());
        assert_eq!(shortest_s_walk(&slg, 0, 1), Some(vec![0, 2, 1]));
    }

    #[test]
    fn walk_length_matches_s_distance() {
        let (_, slg) = paper_slg(1);
        for e in 0..4u32 {
            for f in 0..4u32 {
                let d = slg.s_distance(e, f);
                let w = shortest_s_walk(&slg, e, f);
                match (d, w) {
                    (Some(d), Some(w)) => assert_eq!(w.len() as u32, d + 1, "({e},{f})"),
                    (None, None) => {}
                    other => panic!("mismatch at ({e},{f}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn count_shortest_walks_diamond() {
        // Hypergraph engineered so its 2-line graph is a 4-cycle:
        // e0={a,b}, e1={b,c}... simpler: build the line graph directly.
        let slg = SLineGraph::new_squeezed(1, 10, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (d, sigma) = count_shortest_s_walks(&slg, 0, 3).unwrap();
        assert_eq!(d, 2);
        assert_eq!(sigma, 2.0, "two shortest walks through the diamond");
        assert_eq!(count_shortest_s_walks(&slg, 0, 0), Some((0, 1.0)));
        assert_eq!(count_shortest_s_walks(&slg, 0, 9), None);
    }

    #[test]
    fn counts_consistent_with_paper_example() {
        let (_, slg) = paper_slg(2);
        // Triangle on {0,1,2}: unique shortest walk between any pair.
        for (e, f) in [(0u32, 1u32), (0, 2), (1, 2)] {
            assert_eq!(count_shortest_s_walks(&slg, e, f), Some((1, 1.0)));
        }
    }
}
