//! Workspace-wide symbol table and call graph over parsed files.
//!
//! Call resolution is **conservative** — a call site resolves to every
//! non-test function it could plausibly mean, so reachability
//! over-approximates (sound for the panic rule) — but it is also
//! **type-aware** where the parse gives us types, which is what keeps
//! the over-approximation from swallowing the whole workspace.
//! Resolution order per site:
//!
//! 1. `Type::name(..)` / `Self::name(..)` — methods/assoc fns of that
//!    impl type; `module::name(..)` — functions in files whose stem
//!    matches the qualifier (`http::read_request` →
//!    `crates/server/src/http.rs`). A qualifier matching neither a
//!    workspace type nor a module stem is a std/external path
//!    (`Vec::new`, `thread::spawn`) and resolves to nothing — falling
//!    back to bare-name matching here is what used to connect every
//!    constructor in the workspace to every other.
//! 2. `recv.name(..)` where `recv` is `self` or a field-access chain
//!    (`self.pool`, `state.queue`): the receiver type is looked up in
//!    the parsed struct fields, std wrappers (`Arc`/`Rc`/`Box`/`&`)
//!    are peeled, and the call resolves against that type's impls. A
//!    receiver typed as a std container (`Vec`, `Mutex`, …) resolves
//!    to nothing: `state.queue.len()` is `VecDeque::len`, not some
//!    workspace `len`.
//! 3. `recv.name(..)` with an untypable receiver (locals, call
//!    results, `dyn Trait` fields) — every impl method with that name
//!    anywhere in the workspace (this is what keeps `dyn Trait`
//!    dispatch sound);
//! 4. bare `name(..)` — same-file functions first, else every function
//!    with that name (covers `use`-imported free functions); a
//!    `crate::`/`hyperline_*::`-qualified free call gets the same
//!    bare-name treatment since it is workspace-internal by
//!    construction.
//!
//! Sites that resolve to nothing (std methods, macros expanded away)
//! are counted in [`CallGraph::unresolved`] for the summary line but
//! never reported: closure bodies are attributed to their defining
//! function by the parser, so a `f()` call through a function-typed
//! parameter never hides reachable work.
//!
//! `#[cfg(test)]` functions and files under `tests/`/`benches/` are
//! excluded from the graph entirely — they are neither roots nor
//! callees.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::parser::{FileAst, FnDef};

/// What we could learn about a method receiver from field types.
enum RecvTy<'a> {
    /// A workspace type with impls — resolve against its methods.
    Known(&'a str),
    /// A std/external type (`Vec`, `Mutex`, …) — the call cannot land
    /// on workspace code.
    Opaque,
    /// Untypable (local variable, call result, `dyn Trait`) — fall
    /// back to name-based method matching.
    Unknown,
}

/// Peels `&`/`mut` and transparent wrappers (`Arc<`, `Rc<`, `Box<`)
/// off a field type and classifies what remains. `dyn` types stay
/// [`RecvTy::Unknown`] so trait-object dispatch resolves by name.
fn classify_ty<'a>(ty: &'a str, known: &HashSet<&'a str>) -> RecvTy<'a> {
    if ty.contains("dyn") {
        return RecvTy::Unknown;
    }
    let mut rest = ty.trim_start_matches(['&', ' ']);
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix("mut ") {
            rest = r;
            continue;
        }
        let end = rest
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(rest.len());
        let head = &rest[..end];
        if head.is_empty() {
            return RecvTy::Opaque;
        }
        if matches!(head, "Arc" | "Rc" | "Box") {
            match rest[end..].trim_start().strip_prefix('<') {
                Some(inner) => {
                    rest = inner;
                    continue;
                }
                None => return RecvTy::Opaque,
            }
        }
        return match known.get(head) {
            Some(&t) => RecvTy::Known(t),
            None => RecvTy::Opaque,
        };
    }
}

/// One graph node: a non-test function and its defining file.
pub struct Node<'a> {
    /// Repo-relative path of the defining file.
    pub file: &'a str,
    /// The parsed definition.
    pub def: &'a FnDef,
}

/// The workspace call graph.
pub struct CallGraph<'a> {
    /// All parsed files (including ones with no functions).
    pub files: &'a [FileAst],
    /// Graph nodes, in deterministic (file, definition) order.
    pub nodes: Vec<Node<'a>>,
    /// Resolved callee ids per node, deduped and sorted.
    pub edges: Vec<Vec<usize>>,
    /// Call sites that resolved to no workspace function.
    pub unresolved: usize,
}

/// File stem (`http` for `crates/server/src/http.rs`).
fn stem(path: &str) -> &str {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.strip_suffix(".rs").unwrap_or(base)
}

impl<'a> CallGraph<'a> {
    /// Builds the graph from parsed files.
    pub fn build(files: &'a [FileAst]) -> CallGraph<'a> {
        let mut nodes = Vec::new();
        for f in files {
            for def in &f.fns {
                if !def.in_test {
                    nodes.push(Node {
                        file: f.path.as_str(),
                        def,
                    });
                }
            }
        }
        // Indexes. Values are node ids in insertion (deterministic) order.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut methods: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_ty: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut by_mod: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        for (id, n) in nodes.iter().enumerate() {
            let name = n.def.name.as_str();
            by_name.entry(name).or_default().push(id);
            by_mod.entry((stem(n.file), name)).or_default().push(id);
            if let Some(ty) = &n.def.self_ty {
                methods.entry(name).or_default().push(id);
                by_ty.entry((ty.as_str(), name)).or_default().push(id);
            }
        }
        // Types that have at least one impl, and field name -> owning
        // struct + declared type, for typed receiver resolution.
        let known_tys: HashSet<&str> = by_ty.keys().map(|&(t, _)| t).collect();
        // Method names reachable through trait-object dispatch: declared
        // in a `trait` block or defined in an `impl Trait for Type`.
        // Only these may resolve by bare name on an untyped receiver —
        // an inherent method can only be called through a receiver of
        // its concrete type, which the typed path already handles.
        let dyn_names: HashSet<&str> = nodes
            .iter()
            .filter(|n| n.def.via_trait)
            .map(|n| n.def.name.as_str())
            .collect();
        let mut fields: HashMap<&str, Vec<(&str, &str)>> = HashMap::new();
        for f in files {
            for s in &f.structs {
                for fld in &s.fields {
                    fields
                        .entry(fld.name.as_str())
                        .or_default()
                        .push((s.name.as_str(), fld.ty.as_str()));
                }
            }
        }
        // Classifies a dotted receiver chain: `self` by the impl type,
        // a single segment by the caller's declared locals (params and
        // typed `let` bindings), longer chains by field declarations.
        let recv_ty = |recv: &str, def: &'a FnDef| -> RecvTy<'a> {
            let caller_ty = def.self_ty.as_deref();
            let segs: Vec<&str> = recv.split('.').collect();
            if segs == ["self"] {
                return match caller_ty.and_then(|t| known_tys.get(t)) {
                    Some(&t) => RecvTy::Known(t),
                    None => RecvTy::Unknown,
                };
            }
            if segs.len() < 2 {
                // Later bindings shadow earlier ones.
                return match def.locals.iter().rev().find(|(n, _)| n == segs[0]) {
                    Some((_, ty)) => classify_ty(ty, &known_tys),
                    None => RecvTy::Unknown,
                };
            }
            let last = segs[segs.len() - 1];
            let owners = match fields.get(last) {
                Some(o) => o,
                None => return RecvTy::Unknown,
            };
            // `self.field` on a known impl type picks that struct's
            // declaration; otherwise the field name must be
            // unambiguous across the workspace.
            let ty = if segs.len() == 2 && segs[0] == "self" {
                match caller_ty.and_then(|c| owners.iter().find(|(o, _)| *o == c)) {
                    Some((_, ty)) => *ty,
                    None => return RecvTy::Unknown,
                }
            } else {
                let first = owners[0].1;
                if owners.iter().any(|(_, t)| *t != first) {
                    return RecvTy::Unknown;
                }
                first
            };
            classify_ty(ty, &known_tys)
        };
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
        let mut unresolved = 0usize;
        for n in &nodes {
            let mut out: Vec<usize> = Vec::new();
            for call in &n.def.calls {
                let name = call.name.as_str();
                let targets: Option<&Vec<usize>> = if call.method {
                    let recv = call.recv.as_deref();
                    let dyn_targets = || {
                        if dyn_names.contains(name) {
                            methods.get(name)
                        } else {
                            None
                        }
                    };
                    match recv.map_or(RecvTy::Unknown, |r| recv_ty(r, n.def)) {
                        // Typed lookup, with a dyn-dispatch fallback
                        // for trait methods the parser filed under the
                        // trait's name rather than the impl type's.
                        RecvTy::Known(t) => by_ty.get(&(t, name)).or_else(dyn_targets),
                        RecvTy::Opaque => None,
                        RecvTy::Unknown => dyn_targets(),
                    }
                } else if let Some(q) = &call.qual {
                    let q = if q == "Self" {
                        n.def.self_ty.as_deref().unwrap_or("Self")
                    } else {
                        q.as_str()
                    };
                    by_ty
                        .get(&(q, name))
                        .or_else(|| by_mod.get(&(q, name)))
                        .or_else(|| {
                            // `crate::f()` / `hyperline_x::f()` are
                            // workspace-internal; anything else
                            // (`Vec::new`, `thread::spawn`) is std.
                            if q == "crate" || q.starts_with("hyperline_") {
                                by_name.get(name)
                            } else {
                                None
                            }
                        })
                } else {
                    by_name.get(name)
                };
                match targets {
                    Some(ids) => {
                        // Bare same-file calls prefer same-file targets.
                        if !call.method && call.qual.is_none() {
                            let local: Vec<usize> = ids
                                .iter()
                                .copied()
                                .filter(|&id| nodes[id].file == n.file)
                                .collect();
                            if !local.is_empty() {
                                out.extend(local);
                                continue;
                            }
                        }
                        out.extend(ids.iter().copied());
                    }
                    None => unresolved += 1,
                }
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        CallGraph {
            files,
            nodes,
            edges,
            unresolved,
        }
    }

    /// Node ids carrying a `// lint: <marker>` annotation.
    pub fn marked(&self, marker: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.def.markers.iter().any(|m| m == marker))
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS from `roots`. Returns per-node `Option<parent>`; a root's
    /// parent is itself, unvisited nodes are `None`.
    pub fn bfs(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut q = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                q.push_back(r);
            }
        }
        while let Some(u) = q.pop_front() {
            for &v in &self.edges[u] {
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    q.push_back(v);
                }
            }
        }
        parent
    }

    /// Renders the shortest discovered call chain `root->..->id` using
    /// `Type::method` names, separated by `->` (no spaces, so a chain
    /// suffix works as an allowlist needle).
    pub fn chain(&self, parent: &[Option<usize>], id: usize) -> String {
        let mut names = Vec::new();
        let mut cur = id;
        loop {
            names.push(self.nodes[cur].def.qual_name());
            match parent[cur] {
                Some(p) if p != cur => cur = p,
                _ => break,
            }
        }
        names.reverse();
        names.join("->")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph_of(files: &[FileAst]) -> CallGraph<'_> {
        CallGraph::build(files)
    }

    fn callees(g: &CallGraph<'_>, name: &str) -> Vec<String> {
        let id = g
            .nodes
            .iter()
            .position(|n| n.def.name == name)
            .expect("caller node");
        g.edges[id]
            .iter()
            .map(|&id| g.nodes[id].def.qual_name())
            .collect()
    }

    #[test]
    fn resolves_free_module_and_typed_method_calls() {
        let a = parse_file(
            "crates/x/src/main.rs",
            "fn top(obj: V, v: Vec<u32>) { helper(); http::read(); obj.render(); v.len(); }\n\
             fn helper() {}\n",
        );
        let b = parse_file("crates/x/src/http.rs", "pub fn read() {}\n");
        let c = parse_file(
            "crates/x/src/view.rs",
            "struct V;\nimpl V { fn render(&self) {} fn len(&self) -> usize { 0 } }\n",
        );
        let files = vec![a, b, c];
        let g = graph_of(&files);
        let callees = callees(&g, "top");
        assert!(callees.contains(&"helper".to_string()), "{callees:?}");
        assert!(callees.contains(&"read".to_string()), "{callees:?}");
        assert!(callees.contains(&"V::render".to_string()), "{callees:?}");
        // `v` is a std Vec: its `len` is not the workspace `V::len`.
        assert!(!callees.contains(&"V::len".to_string()), "{callees:?}");
    }

    #[test]
    fn untyped_receivers_resolve_only_through_trait_dispatch() {
        let f = parse_file(
            "crates/x/src/lib.rs",
            "trait Frag { fn emit(&self); }\n\
             struct A;\nimpl Frag for A { fn emit(&self) {} }\n\
             struct B;\nimpl B { fn only(&self) {} }\n\
             fn go(frags: Vec<Box<dyn Frag>>) { for f in frags { f.emit(); f.only(); } }\n",
        );
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let files = vec![f];
        let g = graph_of(&files);
        let callees = callees(&g, "go");
        assert!(
            callees.contains(&"A::emit".to_string()),
            "dyn trait dispatch must stay sound: {callees:?}"
        );
        assert!(
            !callees.contains(&"B::only".to_string()),
            "an inherent method must not resolve on an untyped receiver: {callees:?}"
        );
    }

    #[test]
    fn let_bindings_type_single_segment_receivers() {
        let f = parse_file(
            "crates/x/src/lib.rs",
            "struct J;\n\
             impl J { fn obj() -> J { J } fn render(&self) {} fn clear(&self) {} }\n\
             fn go() { let j = J::obj(); j.render(); let s = String::new(); s.clear(); }\n",
        );
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let files = vec![f];
        let g = graph_of(&files);
        let callees = callees(&g, "go");
        assert!(callees.contains(&"J::obj".to_string()), "{callees:?}");
        assert!(callees.contains(&"J::render".to_string()), "{callees:?}");
        // `s` is a String: its `clear` is not the workspace `J::clear`.
        assert!(!callees.contains(&"J::clear".to_string()), "{callees:?}");
    }

    #[test]
    fn bfs_chain_spans_hops_and_skips_test_fns() {
        let f = parse_file(
            "crates/x/src/lib.rs",
            concat!(
                "// lint: request-root\n",
                "fn root() { mid(); }\n",
                "fn mid() { leaf(); }\n",
                "fn leaf() {}\n",
                "#[cfg(test)]\nmod tests { fn leaf() {} }\n",
            ),
        );
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let files = vec![f];
        let g = graph_of(&files);
        assert_eq!(g.nodes.len(), 3, "test fn must be excluded");
        let roots = g.marked("request-root");
        assert_eq!(roots.len(), 1);
        let parent = g.bfs(&roots);
        let leaf = g.nodes.iter().position(|n| n.def.name == "leaf").unwrap();
        assert_eq!(g.chain(&parent, leaf), "root->mid->leaf");
    }
}
