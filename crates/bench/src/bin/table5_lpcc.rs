//! Table V: end-to-end LPCC on s = 1 vs s = 8 line graphs.
//!
//! Runs the full framework (Algorithm 2, cyclic + relabel-ascending, the
//! paper's 2CA) followed by Label-Propagation Connected Components on the
//! four large profiles, at s = 1 (the full line graph — the expansion the
//! paper's point is about) and s = 8. The s = 1 runs materialize orders
//! of magnitude more edges; on the paper's 128 GB machine two of them ran
//! out of memory. A `--budget-edges` guard reproduces that OOM behaviour
//! on this machine instead of thrashing.
//!
//! `cargo run -p hyperline-bench --release --bin table5_lpcc`
//! Options: `--seed=42 --budget-edges=120000000`

use hyperline_bench::{arg, print_header};
use hyperline_gen::Profile;
use hyperline_graph::cc;
use hyperline_hypergraph::RelabelOrder;
use hyperline_slinegraph::{
    algo2_slinegraph, ensemble_slinegraphs, Partition, SLineGraph, Strategy,
};
use hyperline_util::table::{group_thousands, Table};
use hyperline_util::Timer;

fn main() {
    print_header("Table V: end-to-end LPCC, s = 1 (line graph) vs s = 8");
    let seed: u64 = arg("seed", 42);
    // Edge budget standing in for the paper's 128 GB memory ceiling.
    let budget_edges: usize = arg("budget-edges", 120_000_000);

    let profiles = [
        Profile::Friendster,
        Profile::LiveJournal,
        Profile::ComOrkut,
        Profile::Web,
    ];
    let strategy = Strategy::default()
        .with_partition(Partition::Cyclic)
        .with_relabel(RelabelOrder::Ascending);

    let mut table = Table::new(["hypergraph", "s=1", "s=8", "|E| s=1", "|E| s=8"]);
    for profile in profiles {
        let h = profile.generate(seed);
        // Estimate the s = 1 edge count cheaply from wedge counts before
        // materializing (Σ_v d(v)² bounds the pair count).
        let wedge_bound: u64 = (0..h.num_vertices() as u32)
            .map(|v| {
                let d = h.vertex_degree(v) as u64;
                d * (d - 1) / 2
            })
            .sum();
        let mut cells = vec![profile.name().to_string()];
        let mut edge_cells = Vec::new();
        for s in [1u32, 8] {
            if s == 1 && wedge_bound as usize > budget_edges {
                cells.push("OOM".to_string());
                edge_cells.push(format!("> {}", group_thousands(budget_edges as u64)));
                continue;
            }
            let t = Timer::start();
            // End-to-end: relabel + overlap + squeeze + LPCC, as in the
            // paper ("the reported time includes end-to-end execution").
            let relabeled = hyperline_hypergraph::relabel_edges_by_degree(&h, strategy.relabel);
            let r = algo2_slinegraph(&relabeled.hypergraph, s, &strategy);
            let mut edges = r.edges;
            relabeled.restore_edge_ids(&mut edges);
            for pair in edges.iter_mut() {
                if pair.0 > pair.1 {
                    *pair = (pair.1, pair.0);
                }
            }
            let num_edges = edges.len();
            let slg = SLineGraph::new_squeezed(s, h.num_edges(), edges);
            let labels = cc::components_label_prop(slg.graph());
            std::hint::black_box(cc::component_count(&labels));
            cells.push(format!("{:.2}s", t.seconds()));
            edge_cells.push(group_thousands(num_edges as u64));
        }
        cells.extend(edge_cells);
        table.row(cells);
        // Keep the ensemble path exercised for regression coverage on the
        // small end (not timed).
        if profile == Profile::Friendster {
            let ens = ensemble_slinegraphs(&h, &[8], &strategy);
            assert_eq!(ens.per_s[0].1.len(), {
                let r = algo2_slinegraph(&h, 8, &strategy);
                r.edges.len()
            });
        }
    }
    table.print();
    println!("\n(paper: s=1 OOMs on com-Orkut and Web at 128 GB; s=8 runs everywhere and faster)");
}
