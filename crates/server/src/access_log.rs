//! Structured request logging: one JSON line per request.
//!
//! The hot path must never block on disk, so [`AccessLog`] hands each
//! rendered line to a dedicated writer thread over an unbounded channel
//! and returns immediately; the writer batches lines through a
//! `BufWriter` and flushes when its queue momentarily drains (so tail
//! lines hit disk promptly without an fsync per request). Optional
//! 1-in-N sampling keeps log volume proportional under load.
//!
//! Request IDs are `{nonce}-{seq}`: a per-process startup nonce (so IDs
//! from different server runs never collide in aggregated logs) plus a
//! monotonic counter. One line looks like:
//!
//! ```json
//! {"id":"f3a91c42d7e8-17","route":"slg","dataset":"lesMis","s":2,
//!  "status":200,"bytes_out":48213,"gzip":true,"cache":"miss",
//!  "queue_wait_micros":41,"handle_micros":18322}
//! ```

use crate::json::Json;
use crate::sync::atomic::{AtomicU64, Ordering};
use std::io::{self, BufWriter, Write};
use std::sync::mpsc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Per-process request-ID generator: a startup nonce plus a monotonic
/// sequence number.
#[derive(Debug)]
pub struct RequestIds {
    nonce: u64,
    next: AtomicU64,
}

impl RequestIds {
    /// A generator with a fresh startup nonce (derived from the process
    /// ID and the wall clock — unique enough to tell server runs apart
    /// in aggregated logs, with no RNG dependency).
    pub fn new() -> Self {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = u64::from(std::process::id());
        // SplitMix64 finalizer: spreads pid/time structure over all bits.
        let mut z = nanos ^ (pid << 32) ^ pid;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Self {
            nonce: (z ^ (z >> 31)) & 0xffff_ffff_ffff,
            next: AtomicU64::new(0),
        }
    }

    /// The next request ID, e.g. `f3a91c42d7e8-17`.
    pub fn next_id(&self) -> String {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        format!("{:012x}-{seq}", self.nonce)
    }
}

impl Default for RequestIds {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything one access-log line records about a handled request.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Request ID (see [`RequestIds`]).
    pub id: String,
    /// Route wire name ([`crate::metrics::Route::name`]).
    pub route: &'static str,
    /// Dataset the request addressed, when the route has one.
    pub dataset: Option<String>,
    /// The `s` parameter, when the route has one.
    pub s: Option<u32>,
    /// Response status code.
    pub status: u16,
    /// Response bytes written to the socket — status line, headers and
    /// body, post-gzip, chunk framing included (headers only for HEAD).
    pub bytes_out: u64,
    /// Whether the body was gzip-compressed.
    pub gzip: bool,
    /// Cache outcome (`hit` / `miss` / `coalesced`) when the route
    /// consulted a cache tier.
    pub cache: Option<&'static str>,
    /// Time the connection waited in the accept queue before a worker
    /// picked it up, microseconds.
    pub queue_wait_micros: u64,
    /// Time spent handling the request (parse to response), microseconds.
    pub handle_micros: u64,
}

impl AccessRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut obj = Json::obj()
            .set("id", self.id.as_str())
            .set("route", self.route);
        if let Some(dataset) = &self.dataset {
            obj = obj.set("dataset", dataset.as_str());
        }
        if let Some(s) = self.s {
            obj = obj.set("s", s);
        }
        obj = obj
            .set("status", self.status)
            .set("bytes_out", self.bytes_out)
            .set("gzip", self.gzip);
        if let Some(cache) = self.cache {
            obj = obj.set("cache", cache);
        }
        obj.set("queue_wait_micros", self.queue_wait_micros)
            .set("handle_micros", self.handle_micros)
            .render()
    }
}

enum Message {
    Line(String),
    /// Drain + flush, then ack — lets tests (and shutdown) wait for
    /// everything recorded so far to reach the sink.
    Flush(mpsc::SyncSender<()>),
}

/// The non-blocking JSONL sink: requests enqueue rendered lines; a
/// dedicated thread owns the file handle.
pub struct AccessLog {
    tx: mpsc::Sender<Message>,
    /// Keep 1 in `sample` records (1 = keep all).
    sample: u64,
    seen: AtomicU64,
    writer: Option<std::thread::JoinHandle<()>>,
}

impl AccessLog {
    /// Opens (appends to) `path` and starts the writer thread. `sample`
    /// keeps one record in that many (0 and 1 both mean "every record").
    pub fn to_file(path: &std::path::Path, sample: u64) -> io::Result<AccessLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::to_writer(Box::new(file), sample))
    }

    /// Starts a log draining into an arbitrary sink (tests).
    pub fn to_writer(sink: Box<dyn Write + Send>, sample: u64) -> AccessLog {
        let (tx, rx) = mpsc::channel::<Message>();
        let writer = std::thread::Builder::new()
            .name("hyperline-access-log".into())
            .spawn(move || {
                let mut out = BufWriter::new(sink);
                while let Ok(mut message) = rx.recv() {
                    // Drain greedily, then flush once when the queue
                    // momentarily empties: batched under load, prompt
                    // on the tail.
                    loop {
                        match message {
                            Message::Line(line) => {
                                let _ = out.write_all(line.as_bytes());
                                let _ = out.write_all(b"\n");
                            }
                            Message::Flush(ack) => {
                                let _ = out.flush();
                                let _ = ack.send(());
                            }
                        }
                        match rx.try_recv() {
                            Ok(next) => message = next,
                            Err(_) => break,
                        }
                    }
                    let _ = out.flush();
                }
                let _ = out.flush();
            })
            .expect("failed to spawn access-log writer");
        AccessLog {
            tx,
            sample: sample.max(1),
            seen: AtomicU64::new(0),
            writer: Some(writer),
        }
    }

    /// Records one request (non-blocking). With sampling, only every
    /// `sample`-th record is written.
    pub fn record(&self, record: &AccessRecord) {
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.sample) {
            return;
        }
        let _ = self.tx.send(Message::Line(record.to_json_line()));
    }

    /// Blocks until everything recorded so far is flushed to the sink.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        if self.tx.send(Message::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        // Closing the channel ends the writer loop; join so buffered
        // lines reach the sink before the process moves on.
        let (tx, _) = mpsc::channel();
        drop(std::mem::replace(&mut self.tx, tx));
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A `Write` handing bytes to a shared buffer.
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn record(id: &str) -> AccessRecord {
        AccessRecord {
            id: id.to_string(),
            route: "slg",
            dataset: Some("lesMis".into()),
            s: Some(2),
            status: 200,
            bytes_out: 123,
            gzip: false,
            cache: Some("miss"),
            queue_wait_micros: 7,
            handle_micros: 1500,
        }
    }

    #[test]
    fn lines_are_valid_json_with_expected_fields() {
        let line = record("abc-0").to_json_line();
        let parsed = Json::parse(&line).expect("line must parse");
        assert_eq!(parsed.get("id").unwrap().as_str(), Some("abc-0"));
        assert_eq!(parsed.get("route").unwrap().as_str(), Some("slg"));
        assert_eq!(parsed.get("dataset").unwrap().as_str(), Some("lesMis"));
        assert_eq!(parsed.get("s").unwrap().as_int(), Some(2));
        assert_eq!(parsed.get("status").unwrap().as_int(), Some(200));
        assert_eq!(parsed.get("bytes_out").unwrap().as_int(), Some(123));
        assert_eq!(parsed.get("gzip").unwrap().as_bool(), Some(false));
        assert_eq!(parsed.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(parsed.get("queue_wait_micros").unwrap().as_int(), Some(7));
        assert_eq!(parsed.get("handle_micros").unwrap().as_int(), Some(1500));
    }

    #[test]
    fn optional_fields_are_omitted() {
        let mut r = record("x-1");
        r.dataset = None;
        r.s = None;
        r.cache = None;
        let parsed = Json::parse(&r.to_json_line()).unwrap();
        assert!(parsed.get("dataset").is_none());
        assert!(parsed.get("s").is_none());
        assert!(parsed.get("cache").is_none());
    }

    #[test]
    fn writer_thread_persists_all_lines() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = AccessLog::to_writer(Box::new(SharedSink(Arc::clone(&buf))), 1);
        for i in 0..100 {
            log.record(&record(&format!("id-{i}")));
        }
        log.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 100);
        for (i, line) in lines.iter().enumerate() {
            let parsed = Json::parse(line).expect("every line parses");
            assert_eq!(
                parsed.get("id").unwrap().as_str(),
                Some(format!("id-{i}").as_str()),
                "lines stay in order"
            );
        }
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = AccessLog::to_writer(Box::new(SharedSink(Arc::clone(&buf))), 10);
        for i in 0..100 {
            log.record(&record(&format!("id-{i}")));
        }
        log.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 10);
    }

    #[test]
    fn drop_flushes_pending_lines() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = AccessLog::to_writer(Box::new(SharedSink(Arc::clone(&buf))), 1);
        log.record(&record("tail-0"));
        drop(log);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn request_ids_are_unique_and_share_the_nonce() {
        let ids = RequestIds::new();
        let a = ids.next_id();
        let b = ids.next_id();
        assert_ne!(a, b);
        let nonce = |s: &str| s.split('-').next().unwrap().to_string();
        assert_eq!(nonce(&a), nonce(&b));
        assert!(a.ends_with("-0") && b.ends_with("-1"));
    }
}
