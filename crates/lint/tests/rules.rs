//! Fixture-based mutation tests: each injected bug (ABBA lock
//! inversion, orphaned Release, unwrap two call hops below the request
//! root, unparseable file) must be caught by its rule, and each clean
//! twin must pass with zero findings. Fixtures are fed through
//! [`hyperline_lint::analyze`] under synthetic workspace paths, exactly
//! as the CLI would see them.

use hyperline_lint::{analyze, Finding};

fn run(path: &str, src: &str) -> Vec<Finding> {
    analyze(&[(path.to_string(), src.to_string())]).findings
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn hl007_catches_unwrap_two_hops_below_the_root() {
    let findings = run(
        "crates/server/src/fixture.rs",
        include_str!("fixtures/panic_reach_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["HL007"], "{findings:?}");
    let f = &findings[0];
    assert!(
        f.what
            .contains("handle_request->stage_one->stage_two:.unwrap()"),
        "full call chain must be reported: {}",
        f.what
    );
    assert_eq!(f.file, "crates/server/src/fixture.rs");
}

#[test]
fn hl007_clean_twin_passes_and_skips_unreachable_panics() {
    let findings = run(
        "crates/server/src/fixture.rs",
        include_str!("fixtures/panic_reach_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hl008_catches_abba_inversion_through_a_call_hop() {
    let findings = run(
        "crates/util/src/fixture.rs",
        include_str!("fixtures/lock_cycle_abba.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["HL008"], "{findings:?}");
    assert!(
        findings[0].what.contains("Pair.a->Pair.b->Pair.a")
            || findings[0].what.contains("Pair.b->Pair.a->Pair.b"),
        "cycle must name both locks: {}",
        findings[0].what
    );
}

#[test]
fn hl008_clean_twin_passes() {
    let findings = run(
        "crates/util/src/fixture.rs",
        include_str!("fixtures/lock_cycle_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hl009_catches_orphaned_release() {
    let findings = run(
        "crates/util/src/fixture.rs",
        include_str!("fixtures/atomic_orphan_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["HL009"], "{findings:?}");
    assert!(
        findings[0].what.contains("`ready`") && findings[0].what.contains("no Acquire"),
        "{}",
        findings[0].what
    );
}

#[test]
fn hl009_clean_twin_passes_through_arc_alias() {
    let findings = run(
        "crates/util/src/fixture.rs",
        include_str!("fixtures/atomic_orphan_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hl005_fallback_covers_unparseable_server_files() {
    let report = analyze(&[(
        "crates/server/src/fixture.rs".to_string(),
        include_str!("fixtures/parse_fallback.rs").to_string(),
    )]);
    assert_eq!(
        report.parse_failures,
        vec!["crates/server/src/fixture.rs"],
        "the stray statement must fail the parse"
    );
    let hl005: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "HL005")
        .collect();
    assert_eq!(hl005.len(), 1, "{:?}", report.findings);
    assert!(hl005[0].what.contains("parse-fallback"));
}
