//! The s-line graph as a queryable object (Stages 4–5).
//!
//! After the overlap stage produces an edge list over hyperedge IDs, the
//! ID space is usually hypersparse (most hyperedges have no s-deep
//! neighbor). [`SLineGraph`] squeezes the surviving IDs, builds a CSR
//! graph on the dense space, and exposes the Stage-5 metrics with results
//! reported against **original** hyperedge IDs.

use hyperline_graph::{
    betweenness, cc,
    graph::Graph,
    spectral::{self, SpectralOptions},
};
use hyperline_util::telemetry::Span;
use hyperline_util::IdSqueezer;

/// Sorts a `(hyperedge ID, score)` ranking by descending score, ties by
/// ascending ID. NaN-safe: scores compare under [`f64::total_cmp`], so a
/// NaN score lands at a deterministic rank (total order puts NaN above
/// `+∞`, hence first in a descending ranking) instead of panicking the
/// worker mid-sort — these rankings are served over HTTP.
fn sort_ranking(out: &mut [(u32, f64)]) {
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
}

/// A constructed s-line graph `L_s(H)`.
#[derive(Debug, Clone)]
pub struct SLineGraph {
    /// The `s` this graph was filtered at.
    pub s: u32,
    /// Size of the original hyperedge ID space.
    pub num_hyperedges: usize,
    /// Edges on original hyperedge IDs (`i < j`, sorted).
    pub edges: Vec<(u32, u32)>,
    /// Present when IDs were squeezed (Stage 4).
    squeezer: Option<IdSqueezer>,
    /// CSR graph on squeezed IDs (or original IDs when not squeezed).
    graph: Graph,
}

impl SLineGraph {
    /// Builds with ID squeezing (Stage 4): the graph's vertex set is the
    /// set of hyperedges incident to at least one s-line edge.
    pub fn new_squeezed(s: u32, num_hyperedges: usize, edges: Vec<(u32, u32)>) -> Self {
        // Bounded build: one presence pass over the hyperedge ID space
        // plus a dense rename table — no endpoint sort, no hashmap probes
        // in the bulk remap.
        let postprocess = Span::enter("postprocess");
        let mut squeezer = IdSqueezer::from_edges_bounded(&edges, num_hyperedges);
        let mut squeezed = edges.clone();
        squeezer.squeeze_edges(&mut squeezed);
        // Drop the O(num_hyperedges) rename scratch before this squeezer
        // gets stored (possibly inside a server cache artifact): point
        // lookups fall back to binary search, memory back to
        // O(surviving IDs).
        squeezer.compact();
        drop(postprocess);
        // Squeezing is strictly monotone, so a sorted upper-triangle edge
        // list (every pipeline output) stays sorted and `from_edges`
        // detects it with one cheap parallel scan, skipping the
        // clean/sort/dedup pass. Unsorted callers still work — they just
        // pay for the sort they need.
        let csr = Span::enter("csr");
        let graph = Graph::from_edges(squeezer.len(), &squeezed);
        drop(csr);
        Self {
            s,
            num_hyperedges,
            edges,
            squeezer: Some(squeezer),
            graph,
        }
    }

    /// Builds without squeezing: the graph keeps the full hyperedge ID
    /// space (hypersparse; wasteful for large `m`, as the paper notes).
    pub fn new_unsqueezed(s: u32, num_hyperedges: usize, edges: Vec<(u32, u32)>) -> Self {
        let csr = Span::enter("csr");
        let graph = Graph::from_edges(num_hyperedges, &edges);
        drop(csr);
        Self {
            s,
            num_hyperedges,
            edges,
            squeezer: None,
            graph,
        }
    }

    /// The underlying CSR graph (on squeezed IDs if squeezed).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Whether Stage 4 squeezing was applied.
    pub fn is_squeezed(&self) -> bool {
        self.squeezer.is_some()
    }

    /// Number of graph vertices (squeezed count, or `num_hyperedges`).
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of s-line-graph edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Maps a graph vertex back to its original hyperedge ID.
    pub fn original_id(&self, graph_vertex: u32) -> u32 {
        match &self.squeezer {
            Some(sq) => sq.unsqueeze(graph_vertex),
            None => graph_vertex,
        }
    }

    /// Maps an original hyperedge ID to its graph vertex, if present.
    pub fn graph_vertex(&self, original: u32) -> Option<u32> {
        match &self.squeezer {
            Some(sq) => sq.squeeze(original),
            None => ((original as usize) < self.num_hyperedges).then_some(original),
        }
    }

    /// s-connected components (Stage 5), as sets of **original** hyperedge
    /// IDs, largest first. Hyperedges with no s-line edges form singleton
    /// components only in the unsqueezed view and are omitted here.
    ///
    /// Computed by the frontier-parallel BFS engine
    /// ([`cc::components_parallel`]); output is byte-identical to the
    /// serial reference for every worker count.
    pub fn connected_components(&self) -> Vec<Vec<u32>> {
        let _span = Span::enter("components");
        let labels = cc::components_parallel(&self.graph);
        cc::components_as_sets(&labels)
            .into_iter()
            .map(|comp| comp.into_iter().map(|v| self.original_id(v)).collect())
            .filter(|comp: &Vec<u32>| {
                // In the unsqueezed view, drop isolated vertices to match
                // the squeezed semantics.
                self.is_squeezed() || comp.len() > 1 || {
                    let v = comp[0];
                    self.graph.degree(v) > 0
                }
            })
            .collect()
    }

    /// s-betweenness centrality (Stage 5): `(original hyperedge ID,
    /// score)`, sorted by descending score. Scores are normalized to
    /// `[0, 1]` over the squeezed vertex set.
    pub fn betweenness(&self) -> Vec<(u32, f64)> {
        let _span = Span::enter("betweenness");
        let mut scores = betweenness::betweenness_parallel(&self.graph);
        betweenness::normalize(&mut scores);
        let mut out: Vec<(u32, f64)> = scores
            .into_iter()
            .enumerate()
            .map(|(v, score)| (self.original_id(v as u32), score))
            .collect();
        sort_ranking(&mut out);
        out
    }

    /// Approximate s-betweenness centrality from `samples` sampled BFS
    /// sources (Brandes–Pich), deterministic in `(samples, seed)`:
    /// `(original hyperedge ID, score)`, sorted by descending score.
    /// Scores estimate the exact normalized values; sampling all sources
    /// matches [`SLineGraph::betweenness`] up to floating-point
    /// summation order (not bit-identically — the sampled sweep sums
    /// over a permuted source list).
    pub fn betweenness_sampled(&self, samples: usize, seed: u64) -> Vec<(u32, f64)> {
        let _span = Span::enter("betweenness");
        let mut scores = betweenness::betweenness_sampled(&self.graph, samples, seed);
        betweenness::normalize(&mut scores);
        let mut out: Vec<(u32, f64)> = scores
            .into_iter()
            .enumerate()
            .map(|(v, score)| (self.original_id(v as u32), score))
            .collect();
        sort_ranking(&mut out);
        out
    }

    /// s-distance between two hyperedges (original IDs): length of the
    /// shortest s-walk, `None` if not s-connected (or either hyperedge
    /// has no s-line edges).
    pub fn s_distance(&self, e: u32, f: u32) -> Option<u32> {
        let (ge, gf) = (self.graph_vertex(e)?, self.graph_vertex(f)?);
        hyperline_graph::bfs::distance(&self.graph, ge, gf)
    }

    /// Normalized algebraic connectivity of the largest component
    /// (Figure 6's y-axis).
    pub fn algebraic_connectivity(&self) -> f64 {
        let _span = Span::enter("spectral");
        spectral::normalized_algebraic_connectivity(&self.graph, SpectralOptions::default())
    }

    /// s-harmonic-closeness centrality: `(original hyperedge ID, score)`,
    /// sorted by descending score. Source-parallel over the frontier
    /// engine's batched sweeps; bit-identical for every worker count.
    pub fn closeness(&self) -> Vec<(u32, f64)> {
        let _span = Span::enter("closeness");
        let scores = hyperline_graph::closeness::harmonic_closeness(&self.graph);
        let mut out: Vec<(u32, f64)> = scores
            .into_iter()
            .enumerate()
            .map(|(v, score)| (self.original_id(v as u32), score))
            .collect();
        sort_ranking(&mut out);
        out
    }

    /// s-diameter: the largest finite s-distance between any two
    /// s-connected hyperedges (0 for empty line graphs). Source-parallel
    /// over the frontier engine's batched sweeps.
    pub fn s_diameter(&self) -> u32 {
        let _span = Span::enter("diameter");
        hyperline_graph::frontier::diameter(&self.graph)
    }

    /// Average local clustering coefficient of the s-line graph.
    pub fn average_clustering(&self) -> f64 {
        hyperline_graph::closeness::average_clustering(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// s = 2 line graph of the paper example: triangle on edges {0,1,2};
    /// hyperedge 3 is isolated.
    fn paper_s2() -> Vec<(u32, u32)> {
        vec![(0, 1), (0, 2), (1, 2)]
    }

    #[test]
    fn squeezed_compacts_ids() {
        // Use IDs far apart to exercise squeezing.
        let edges = vec![(5u32, 900u32), (900, 2000), (5, 2000)];
        let slg = SLineGraph::new_squeezed(2, 3000, edges.clone());
        assert_eq!(slg.num_vertices(), 3);
        assert_eq!(slg.num_edges(), 3);
        assert!(slg.is_squeezed());
        assert_eq!(slg.original_id(0), 5);
        assert_eq!(slg.graph_vertex(900), Some(1));
        assert_eq!(slg.graph_vertex(7), None);
        assert_eq!(slg.edges, edges);
    }

    #[test]
    fn unsqueezed_keeps_full_space() {
        let slg = SLineGraph::new_unsqueezed(2, 4, paper_s2());
        assert_eq!(slg.num_vertices(), 4);
        assert!(!slg.is_squeezed());
        assert_eq!(slg.graph_vertex(3), Some(3));
        assert_eq!(slg.original_id(3), 3);
    }

    #[test]
    fn components_report_original_ids() {
        let slg = SLineGraph::new_squeezed(2, 4, paper_s2());
        let comps = slg.connected_components();
        assert_eq!(comps, vec![vec![0, 1, 2]]);
        // Unsqueezed drops the isolated hyperedge 3 as well.
        let slg = SLineGraph::new_unsqueezed(2, 4, paper_s2());
        assert_eq!(slg.connected_components(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn betweenness_on_path() {
        // Path 10-20-30 in original IDs: 20 is the center.
        let slg = SLineGraph::new_squeezed(1, 100, vec![(10, 20), (20, 30)]);
        let bc = slg.betweenness();
        assert_eq!(bc[0].0, 20);
        assert!(bc[0].1 > 0.0);
        assert_eq!(bc[1].1, 0.0);
    }

    #[test]
    fn sampled_betweenness_full_sampling_is_exact() {
        let slg = SLineGraph::new_squeezed(
            1,
            100,
            vec![(10, 20), (20, 30), (30, 40), (40, 50), (20, 40)],
        );
        let exact = slg.betweenness();
        let sampled = slg.betweenness_sampled(slg.num_vertices(), 7);
        assert_eq!(exact.len(), sampled.len());
        for ((e1, s1), (e2, s2)) in exact.iter().zip(&sampled) {
            assert_eq!(e1, e2);
            assert!((s1 - s2).abs() < 1e-9, "{e1}: {s1} vs {s2}");
        }
        // Deterministic in (samples, seed).
        assert_eq!(slg.betweenness_sampled(2, 9), slg.betweenness_sampled(2, 9));
    }

    #[test]
    fn ranking_sort_survives_nan_scores() {
        // Regression: these rankings used partial_cmp().unwrap(), so one
        // NaN score panicked the serving worker instead of returning a
        // ranked result.
        let mut scores = vec![(7u32, 0.25), (3, f64::NAN), (9, 0.5), (1, 0.25)];
        sort_ranking(&mut scores);
        // NaN > +inf under total_cmp: deterministic first place; ties
        // break by ascending ID; no panic.
        assert_eq!(scores[0].0, 3);
        assert!(scores[0].1.is_nan());
        assert_eq!(scores[1], (9, 0.5));
        assert_eq!(scores[2], (1, 0.25));
        assert_eq!(scores[3], (7, 0.25));
    }

    #[test]
    fn s_distance_through_squeezed_ids() {
        let slg = SLineGraph::new_squeezed(1, 100, vec![(10, 20), (20, 30)]);
        assert_eq!(slg.s_distance(10, 30), Some(2));
        assert_eq!(slg.s_distance(10, 10), Some(0));
        assert_eq!(slg.s_distance(10, 99), None, "99 has no s-line edges");
    }

    #[test]
    fn algebraic_connectivity_of_triangle() {
        let slg = SLineGraph::new_squeezed(2, 4, paper_s2());
        // K3: λ₂ of normalized Laplacian = 3/2.
        assert!((slg.algebraic_connectivity() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn empty_line_graph() {
        let slg = SLineGraph::new_squeezed(4, 4, vec![]);
        assert_eq!(slg.num_vertices(), 0);
        assert!(slg.connected_components().is_empty());
        assert_eq!(slg.algebraic_connectivity(), 0.0);
        assert_eq!(slg.s_diameter(), 0);
        assert_eq!(slg.average_clustering(), 0.0);
    }

    #[test]
    fn closeness_and_diameter() {
        // Path 10-20-30-40: diameter 3; 20/30 most central.
        let slg = SLineGraph::new_squeezed(1, 100, vec![(10, 20), (20, 30), (30, 40)]);
        assert_eq!(slg.s_diameter(), 3);
        let cl = slg.closeness();
        assert!(cl[0].0 == 20 || cl[0].0 == 30);
        assert!(cl[0].1 > cl[3].1);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let slg = SLineGraph::new_squeezed(2, 4, paper_s2());
        assert!((slg.average_clustering() - 1.0).abs() < 1e-12);
    }
}
