//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the subset the hyperline benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`Bencher::iter`] and
//! [`BenchmarkId`] — with a simple median-of-samples timer instead of
//! criterion's statistical machinery. Each sample times one call of the
//! closure; the median and min/max across samples are printed per bench.
//!
//! `--quick` (or `HYPERLINE_BENCH_QUICK=1`) caps samples at 2 so the
//! bench binaries can double as smoke tests.

#![warn(missing_docs)]

use std::time::Instant;

/// Top-level benchmark driver (holds nothing; exists for API parity).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group: {name} ==");
        BenchmarkGroup { sample_size: 10 }
    }
}

/// A named benchmark within a group, e.g. `algo2/8`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An ID from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A group of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var_os("HYPERLINE_BENCH_QUICK").is_some_and(|v| v != "0")
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let samples = if quick_mode() {
            self.sample_size.min(2)
        } else {
            self.sample_size
        };
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher { elapsed_secs: 0.0 };
            f(&mut bencher);
            times.push(bencher.elapsed_secs);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        println!(
            "{id:<40} median {:>12} (min {}, max {}, {samples} samples)",
            format_secs(median),
            format_secs(times[0]),
            format_secs(*times.last().unwrap()),
            id = id.id,
        );
    }

    /// Ends the group (prints nothing; exists for API parity).
    pub fn finish(self) {}
}

/// Times closures for one sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed_secs: f64,
}

impl Bencher {
    /// Times one call of `routine`; its return value is dropped after
    /// timing (opaque to the optimizer via `std::hint::black_box`).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_secs = start.elapsed().as_secs_f64();
        std::hint::black_box(out);
    }
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(calls, 3, "one call per sample");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("algo2", 8).id, "algo2/8");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
