//! `hyperline serve` — a zero-dependency concurrent query server with an
//! s-line-graph cache.
//!
//! The paper computes s-line graphs `L_s(H)` precisely so that downstream
//! s-metric queries (components, betweenness, s-distance, spectra) become
//! cheap graph operations. This crate turns that observation into a
//! long-lived service: load hypergraphs once, build each requested
//! `L_s(H)` at most once, and answer many cheap queries from the cached
//! artifact — the architecture of high-performance tile servers
//! (IIPImage) applied to hypergraph analytics.
//!
//! Everything is `std`-only: `TcpListener` + scoped threads, a
//! hand-rolled HTTP/1.1 parser, and a write-only JSON builder.
//!
//! ## Architecture
//!
//! * [`registry`] — named, immutable, `Arc`-shared datasets, loaded from
//!   edge-list files or generator profiles at startup or via
//!   `POST /datasets`;
//! * [`cache`] — the artifact cache: computed [`SLineGraph`]s keyed by
//!   `(dataset, s, algorithm, weighted)`, LRU-evicted under a byte
//!   budget, with single-flight deduplication of concurrent misses;
//! * [`server`] — accept loop → bounded queue → fixed worker pool, each
//!   worker speaking HTTP/1.1 keep-alive;
//! * [`http`] / [`json`] — the minimal wire-format helpers;
//! * [`metrics`] — per-endpoint request/latency counters and cache
//!   hit-rate reporting at `GET /metrics`.
//!
//! ## Quick start
//!
//! ```
//! use hyperline_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! server
//!     .registry()
//!     .load_profile("lesMis", 42, None)
//!     .unwrap();
//! let handle = server.spawn();
//! // GET http://{handle.addr()}/datasets/lesMis/slg?s=2 ...
//! handle.shutdown();
//! ```
//!
//! [`SLineGraph`]: hyperline_slinegraph::SLineGraph

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod server;

pub use cache::{AlgoKind, ArtifactCache, CacheKey, CacheOutcome, CacheStats};
pub use metrics::{Route, ServerMetrics};
pub use registry::{Dataset, DatasetRegistry, DatasetSource};
pub use server::{Artifact, Server, ServerConfig, ServerHandle, ServerState};
