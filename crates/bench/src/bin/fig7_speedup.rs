//! Figure 7: speedup of the 12 strategy variants relative to 1CN, s = 8.
//!
//! Runs the s-overlap stage (plus relabeling cost, as the paper includes
//! preprocessing in the total) for every Table III variant — Algorithms 1
//! and 2 × blocked/cyclic × relabel none/ascending/descending — on five
//! dataset profiles, and prints each variant's speedup relative to 1CN
//! (Algorithm 1, cyclic, no relabeling).
//!
//! `cargo run -p hyperline-bench --release --bin fig7_speedup`
//! Options: `--s=8 --seed=42 --reps=1 --profiles=Friendster,Web,...`

use hyperline_bench::{arg, median_secs, print_header};
use hyperline_gen::Profile;
use hyperline_slinegraph::{run_pipeline, table3_grid, Algorithm, PipelineConfig, Strategy};
use hyperline_util::table::Table;

fn main() {
    print_header("Figure 7: speedup relative to 1CN (s-overlap + preprocessing), s = 8");
    let s: u32 = arg("s", 8);
    let seed: u64 = arg("seed", 42);
    let reps: usize = arg("reps", 1);
    let profile_list: String = arg(
        "profiles",
        "Friendster,Web,LiveJournal,Amazon-reviews,Stackoverflow-answers".to_string(),
    );
    let profiles: Vec<Profile> = profile_list
        .split(',')
        .map(|n| Profile::from_name(n.trim()).unwrap_or_else(|| panic!("unknown profile {n}")))
        .collect();

    let grid = table3_grid();
    let header: Vec<String> = std::iter::once("dataset".to_string())
        .chain(grid.iter().map(|(a, st)| st.notation(*a)))
        .collect();
    let mut table = Table::new(header);

    for profile in profiles {
        let h = profile.generate(seed);
        eprintln!("[{}] generated: {} edges", profile.name(), h.num_edges());
        let time_variant = |algorithm: Algorithm, strategy: Strategy| -> f64 {
            median_secs(reps, || {
                let config = PipelineConfig {
                    s,
                    algorithm,
                    strategy,
                    compute_toplexes: false,
                    squeeze: false,
                    run_components: false,
                };
                let run = run_pipeline(&h, &config);
                std::hint::black_box(run.line_graph.num_edges());
            })
        };
        // Baseline: 1CN.
        let baseline = time_variant(
            Algorithm::Algo1,
            Strategy::default().with_partition(hyperline_slinegraph::Partition::Cyclic),
        );
        let mut cells = vec![profile.name().to_string()];
        for (algorithm, strategy) in &grid {
            let t = time_variant(*algorithm, *strategy);
            cells.push(format!("{:.2}", baseline / t));
            eprintln!(
                "  {} {:.3}s (baseline 1CN {:.3}s)",
                strategy.notation(*algorithm),
                t,
                baseline
            );
        }
        table.row(cells);
    }
    println!();
    table.print();
    println!("\n(each cell: speedup of the variant over 1CN on that dataset; > 1 is faster)");
}
