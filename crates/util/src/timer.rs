//! Wall-clock timing helpers for the experiment harness.
//!
//! The paper reports per-stage wall times (Table I) and runtimes across
//! parameter sweeps; [`Timer`] and [`StageTimes`] provide exactly that.

use std::fmt;
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new timer.
    #[inline]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    #[inline]
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts the timer and returns the elapsed time up to now.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }

    /// Times a closure, returning its result and the elapsed duration.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
        let t = Self::start();
        let out = f();
        (out, t.elapsed())
    }
}

/// Human-friendly formatting for a duration: `412ms`, `12.085s`, `3m21s`.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.3}s")
    } else {
        let mins = (s / 60.0).floor();
        format!("{}m{:02.0}s", mins as u64, s - mins * 60.0)
    }
}

/// Named stage timings accumulated through a pipeline run, mirroring the
/// per-stage breakdown in the paper's Table I.
#[derive(Debug, Default, Clone)]
pub struct StageTimes {
    entries: Vec<(String, Duration)>,
}

impl StageTimes {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a stage duration.
    pub fn record(&mut self, stage: impl Into<String>, d: Duration) {
        self.entries.push((stage.into(), d));
    }

    /// Runs and times a closure, recording it under `stage`. Also emits
    /// a telemetry span with the same name, so pipeline stages show up
    /// in any enclosing [`crate::telemetry::collect`] scope for free.
    pub fn run<T>(&mut self, stage: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let stage = stage.into();
        let span = crate::telemetry::Span::enter(&stage);
        let (out, d) = Timer::time(f);
        drop(span);
        self.record(stage, d);
        out
    }

    /// Duration recorded for `stage`, if present (first match).
    pub fn get(&self, stage: &str) -> Option<Duration> {
        self.entries
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, d)| *d)
    }

    /// Total of all recorded stages.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Iterates over `(stage, duration)` pairs in recording order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.entries.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Number of recorded stages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for StageTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, d) in &self.entries {
            writeln!(f, "{name:<24} {}", fmt_duration(*d))?;
        }
        writeln!(f, "{:<24} {}", "total", fmt_duration(self.total()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_nonzero() {
        let t = Timer::start();
        std::hint::black_box((0..10_000).sum::<u64>());
        assert!(t.elapsed() > Duration::ZERO);
    }

    #[test]
    fn time_closure_returns_value() {
        let (v, d) = Timer::time(|| 7 * 6);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn lap_resets() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = t.lap();
        assert!(first >= Duration::from_millis(1));
        // After a lap, elapsed restarts near zero.
        assert!(t.elapsed() < first + Duration::from_millis(1));
    }

    #[test]
    fn stage_times_accumulate() {
        let mut st = StageTimes::new();
        st.record("preprocess", Duration::from_millis(10));
        st.record("s-overlap", Duration::from_millis(50));
        let out = st.run("squeeze", || 5);
        assert_eq!(out, 5);
        assert_eq!(st.len(), 3);
        assert_eq!(st.get("s-overlap"), Some(Duration::from_millis(50)));
        assert!(st.total() >= Duration::from_millis(60));
        assert!(st.get("missing").is_none());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0us");
        assert_eq!(fmt_duration(Duration::from_millis(412)), "412.0ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(12.085)), "12.085s");
        assert_eq!(fmt_duration(Duration::from_secs(201)), "3m21s");
    }

    #[test]
    fn display_includes_total() {
        let mut st = StageTimes::new();
        st.record("a", Duration::from_millis(1));
        let s = st.to_string();
        assert!(s.contains("a"));
        assert!(s.contains("total"));
    }
}
