//! HL008 — static lock-order cycle detection.
//!
//! Builds the workspace lock-acquisition graph: a directed edge
//! `A -> B` means some function acquires lock `B` while holding lock
//! `A`, either directly or by calling (transitively) into a function
//! that may acquire `B`. Any cycle — including the self-loop of
//! re-locking a held lock — is a potential deadlock and fails the
//! build.
//!
//! Locks are identified by struct field (`Pair.a`) when the field can
//! be typed against a workspace struct whose field type mentions
//! `Mutex</RwLock</Condvar`, falling back to the bare field name when
//! ambiguous; chains that resolve to no known lock field (e.g.
//! `io::Read::read` calls) are ignored. Scope: files that import
//! through the `hyperline_util::sync` seam, excluding `crates/sched/`
//! (which *implements* the primitives) and test code.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::callgraph::CallGraph;
use crate::Finding;

/// Maps field names to the workspace structs declaring them with a
/// lock type, plus lock-typed statics.
struct LockUniverse {
    field_owners: HashMap<String, Vec<String>>,
    statics: HashSet<String>,
}

fn lock_type(ty: &str) -> bool {
    ty.contains("Mutex<") || ty.contains("RwLock<") || ty.contains("Condvar")
}

impl LockUniverse {
    fn build(graph: &CallGraph<'_>) -> LockUniverse {
        let mut field_owners: HashMap<String, Vec<String>> = HashMap::new();
        let mut statics = HashSet::new();
        for f in graph.files {
            for s in &f.structs {
                for field in &s.fields {
                    if lock_type(&field.ty) {
                        field_owners
                            .entry(field.name.clone())
                            .or_default()
                            .push(s.name.clone());
                    }
                }
            }
            for st in &f.statics {
                if lock_type(&st.ty) {
                    statics.insert(st.name.clone());
                }
            }
        }
        LockUniverse {
            field_owners,
            statics,
        }
    }

    /// Stable lock id for a receiver chain, or `None` when the chain's
    /// final segment is not a known lock field/static.
    fn id(&self, chain: &str, self_ty: Option<&str>) -> Option<String> {
        let field = chain.rsplit('.').next().unwrap_or(chain);
        if let Some(owners) = self.field_owners.get(field) {
            if chain.starts_with("self.") {
                if let Some(ty) = self_ty {
                    if owners.iter().any(|o| o == ty) {
                        return Some(format!("{ty}.{field}"));
                    }
                }
            }
            let unique: HashSet<&String> = owners.iter().collect();
            if unique.len() == 1 {
                return Some(format!("{}.{field}", owners[0]));
            }
            return Some(field.to_string());
        }
        if self.statics.contains(field) {
            return Some(field.to_string());
        }
        None
    }
}

/// Whether a node is in scope for lock tracking.
fn in_scope(file: &str, uses_seam: bool) -> bool {
    uses_seam && !file.starts_with("crates/sched/")
}

/// Runs HL008 over the graph. Returns the number of lock-graph edges
/// for the summary line.
pub fn run(graph: &CallGraph<'_>, findings: &mut Vec<Finding>) -> usize {
    let universe = LockUniverse::build(graph);
    let seam: HashSet<&str> = graph
        .files
        .iter()
        .filter(|f| f.uses_sync_seam)
        .map(|f| f.path.as_str())
        .collect();
    let scoped: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| in_scope(n.file, seam.contains(n.file)))
        .collect();

    let lock_id = |acq_chain: &str, node: usize| {
        universe.id(acq_chain, graph.nodes[node].def.self_ty.as_deref())
    };

    // may_acquire: per node, the set of lock ids it (transitively) may
    // take. Fixpoint over the call graph; out-of-scope nodes contribute
    // nothing directly but still propagate their callees' sets.
    let n = graph.nodes.len();
    let mut may: Vec<HashSet<String>> = vec![HashSet::new(); n];
    for id in 0..n {
        if !scoped[id] {
            continue;
        }
        for acq in &graph.nodes[id].def.locks {
            if let Some(l) = lock_id(&acq.chain, id) {
                may[id].insert(l);
            }
        }
    }
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds < n + 1 {
        changed = false;
        rounds += 1;
        for u in 0..n {
            for vi in 0..graph.edges[u].len() {
                let v = graph.edges[u][vi];
                if v == u || may[v].is_empty() {
                    continue;
                }
                let add: Vec<String> = may[v].difference(&may[u]).cloned().collect();
                if !add.is_empty() {
                    changed = true;
                    may[u].extend(add);
                }
            }
        }
    }

    // Edge provenance: held -> acquired, first site wins (BTreeMap for
    // deterministic iteration).
    let mut lock_edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    let mut note_edge = |held: &str, acquired: &str, file: &str, line: u32, via: &str| {
        lock_edges
            .entry((held.to_string(), acquired.to_string()))
            .or_insert_with(|| (file.to_string(), line, via.to_string()));
    };
    for id in 0..n {
        if !scoped[id] {
            continue;
        }
        let node = &graph.nodes[id];
        let resolve_held = |acq_held: &[String]| -> Vec<String> {
            acq_held.iter().filter_map(|h| lock_id(h, id)).collect()
        };
        for acq in &node.def.locks {
            let Some(acquired) = lock_id(&acq.chain, id) else {
                continue;
            };
            for held in resolve_held(&acq.held) {
                note_edge(&held, &acquired, node.file, acq.line, &node.def.qual_name());
            }
        }
        for call in &node.def.calls {
            if call.held.is_empty() {
                continue;
            }
            let held_ids = resolve_held(&call.held);
            if held_ids.is_empty() {
                continue;
            }
            // Everything the callee may acquire is taken while `held`.
            // Edges are per-node, so match callees back to this site by
            // name.
            let mut acquired: HashSet<&String> = HashSet::new();
            for &callee in &graph.edges[id] {
                if graph.nodes[callee].def.name != call.name {
                    continue;
                }
                acquired.extend(may[callee].iter());
            }
            for a in acquired {
                for held in &held_ids {
                    if held != a {
                        note_edge(held, a, node.file, call.line, &node.def.qual_name());
                    }
                }
            }
        }
    }

    // Self-loops are immediate re-entrancy deadlocks.
    for id in 0..n {
        if !scoped[id] {
            continue;
        }
        let node = &graph.nodes[id];
        for acq in &node.def.locks {
            let Some(acquired) = lock_id(&acq.chain, id) else {
                continue;
            };
            let held_ids: Vec<String> = acq.held.iter().filter_map(|h| lock_id(h, id)).collect();
            if held_ids.iter().any(|h| *h == acquired) {
                findings.push(Finding {
                    file: node.file.to_string(),
                    line: acq.line as usize,
                    rule: "HL008",
                    what: format!(
                        "lock-order cycle {acquired}->{acquired} (re-lock while held in {})",
                        node.def.qual_name()
                    ),
                    hint: "a lock is re-acquired while already held on this path — restructure so the guard is dropped first",
                });
            }
        }
    }

    // Cross-lock cycles: adjacency over ids, report each cycle once via
    // a canonical rotation of the id list.
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (held, acquired) in lock_edges.keys() {
        adj.entry(held).or_default().push(acquired);
    }
    let mut reported: HashSet<String> = HashSet::new();
    for ((a, b), (file, line, via)) in &lock_edges {
        if a == b {
            continue; // handled as self-loop above (direct case)
        }
        // Path b ->* a?
        if let Some(path) = shortest_path(&adj, b, a) {
            // Cycle: a -> b -> ... -> a.
            let mut cycle: Vec<&String> = vec![a, b];
            cycle.extend(path.iter().skip(1)); // path starts at b, ends at a
            cycle.pop(); // drop trailing a (implicit wrap)
            let key = canonical_cycle(&cycle);
            if reported.insert(key) {
                let rendered: Vec<&str> = cycle
                    .iter()
                    .map(|s| s.as_str())
                    .chain(std::iter::once(cycle[0].as_str()))
                    .collect();
                findings.push(Finding {
                    file: file.clone(),
                    line: *line as usize,
                    rule: "HL008",
                    what: format!("lock-order cycle {} (edge taken in {via})", rendered.join("->")),
                    hint: "impose a single global acquisition order for these locks (or drop one guard before taking the next)",
                });
            }
        }
    }
    lock_edges.len()
}

/// BFS shortest path `from ->* to` over the lock adjacency; returns the
/// node list starting at `from` and ending at `to`.
fn shortest_path<'m>(
    adj: &'m BTreeMap<&'m String, Vec<&'m String>>,
    from: &'m String,
    to: &'m String,
) -> Option<Vec<&'m String>> {
    let mut parent: HashMap<&String, &String> = HashMap::new();
    let mut q = VecDeque::new();
    q.push_back(from);
    let mut seen: HashSet<&String> = HashSet::new();
    seen.insert(from);
    while let Some(u) = q.pop_front() {
        if u == to {
            let mut path = vec![u];
            let mut cur = u;
            while let Some(&p) = parent.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &v in adj.get(u).into_iter().flatten() {
            if seen.insert(v) {
                parent.insert(v, u);
                q.push_back(v);
            }
        }
    }
    None
}

/// Canonical form of a cycle: rotate so the lexicographically smallest
/// id comes first.
fn canonical_cycle(cycle: &[&String]) -> String {
    if cycle.is_empty() {
        return String::new();
    }
    let min_at = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    for k in 0..cycle.len() {
        out.push(cycle[(min_at + k) % cycle.len()].as_str());
    }
    out.join("->")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let asts: Vec<_> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        let graph = CallGraph::build(&asts);
        let mut findings = Vec::new();
        run(&graph, &mut findings);
        findings
    }

    const ABBA: &str = concat!(
        "use crate::sync::Mutex;\n",
        "struct Pair { a: Mutex<u32>, b: Mutex<u32> }\n",
        "impl Pair {\n",
        "    fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n",
        "    fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }\n",
        "}\n",
    );

    #[test]
    fn direct_abba_inversion_is_a_cycle() {
        let findings = run_on(&[("crates/util/src/pair.rs", ABBA)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "HL008");
        assert!(
            findings[0].what.contains("Pair.a->Pair.b->Pair.a"),
            "{}",
            findings[0].what
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = ABBA.replace(
            "fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }",
            "fn ba(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }",
        );
        assert!(run_on(&[("crates/util/src/pair.rs", &src)]).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = concat!(
            "use crate::sync::Mutex;\n",
            "struct Pair { a: Mutex<u32>, b: Mutex<u32> }\n",
            "impl Pair {\n",
            "    fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n",
            "    fn ba(&self) { let gb = self.b.lock(); drop(gb); let ga = self.a.lock(); }\n",
            "}\n",
        );
        assert!(run_on(&[("crates/util/src/pair.rs", src)]).is_empty());
    }

    #[test]
    fn interprocedural_inversion_is_caught() {
        let src = concat!(
            "use crate::sync::Mutex;\n",
            "struct Pair { a: Mutex<u32>, b: Mutex<u32> }\n",
            "impl Pair {\n",
            "    fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n",
            "    fn ba(&self) { let gb = self.b.lock(); self.grab_a(); }\n",
            "    fn grab_a(&self) { let ga = self.a.lock(); }\n",
            "}\n",
        );
        let findings = run_on(&[("crates/util/src/pair.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].what.contains("lock-order cycle"));
    }

    #[test]
    fn relock_while_held_is_a_self_loop() {
        let src = concat!(
            "use crate::sync::Mutex;\n",
            "struct S { a: Mutex<u32> }\n",
            "impl S { fn f(&self) { let g1 = self.a.lock(); let g2 = self.a.lock(); } }\n",
        );
        let findings = run_on(&[("crates/util/src/s.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].what.contains("S.a->S.a"),
            "{}",
            findings[0].what
        );
    }
}
