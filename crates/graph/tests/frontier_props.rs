//! Property tests cross-checking the parallel frontier engine against
//! the serial reference kernels on random graphs.
//!
//! Each case draws a random graph (size, density and worker count all
//! generated), computes every Stage-5 kernel through the engine and
//! asserts exact agreement with the serial implementations — distances
//! with `bfs::bfs_distances`, components with `cc::components_bfs` *and*
//! LPCC, eccentricities with `bfs::eccentricity`, closeness with the
//! direct Σ 1/d definition (bit-exactness is not required there, only
//! 1e-12 agreement: the engine accumulates per level).

use hyperline_graph::{bfs, cc, frontier, Graph};
use hyperline_util::parallel::with_threads;
use proptest::prelude::*;

/// Decodes `codes` into an edge list over `n` vertices (one u64 per
/// edge; self loops and duplicates are allowed and exercised).
fn decode_edges(n: usize, codes: &[u64]) -> Vec<(u32, u32)> {
    codes
        .iter()
        .map(|&c| ((c % n as u64) as u32, ((c >> 17) % n as u64) as u32))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_bfs_and_cc_match_serial_references(
        n in 1usize..70,
        codes in proptest::collection::vec(0u64..u64::MAX, 0..220),
        workers in 1usize..9,
    ) {
        let g = Graph::from_edges(n, &decode_edges(n, &codes));
        let (dists, labels, lpcc, eccs, closeness) = with_threads(workers, || {
            (
                (0..n as u32)
                    .step_by((n / 4).max(1))
                    .map(|s| frontier::bfs_distances_parallel(&g, s))
                    .collect::<Vec<_>>(),
                frontier::components(&g),
                cc::components_label_prop(&g),
                frontier::eccentricities(&g),
                frontier::harmonic_closeness(&g),
            )
        });
        for (i, d) in dists.iter().enumerate() {
            let s = (i * (n / 4).max(1)) as u32;
            prop_assert_eq!(d, &bfs::bfs_distances(&g, s), "source {}", s);
        }
        let reference = cc::components_bfs(&g);
        prop_assert_eq!(&labels, &reference, "frontier CC vs serial BFS CC");
        prop_assert_eq!(&lpcc, &reference, "LPCC cross-check");
        for v in 0..n as u32 {
            prop_assert_eq!(eccs[v as usize], bfs::eccentricity(&g, v), "ecc {}", v);
        }
        prop_assert_eq!(frontier::diameter(&g), bfs::diameter(&g));
        for v in 0..n {
            let dist = bfs::bfs_distances(&g, v as u32);
            let expect: f64 = dist
                .iter()
                .filter(|&&d| d != bfs::UNREACHABLE && d > 0)
                .map(|&d| 1.0 / d as f64)
                .sum::<f64>()
                / (n as f64 - 1.0).max(1.0);
            let got = if n <= 1 { 0.0 } else { closeness[v] };
            prop_assert!((got - expect).abs() < 1e-12, "closeness {}: {} vs {}", v, got, expect);
        }
    }

    #[test]
    fn component_count_single_pass_matches_set_semantics(
        n in 1usize..60,
        codes in proptest::collection::vec(0u64..u64::MAX, 0..150),
    ) {
        let g = Graph::from_edges(n, &decode_edges(n, &codes));
        let labels = frontier::components(&g);
        let distinct: std::collections::BTreeSet<u32> = labels.iter().copied().collect();
        prop_assert_eq!(cc::component_count(&labels), distinct.len());
    }
}
