//! Dense re-mapping of sparse ID spaces ("ID squeezing").
//!
//! Stage 4 of the paper's framework: after s-filtration most hyperedge IDs
//! no longer appear in the s-line graph, so the ID space is hypersparse.
//! [`IdSqueezer`] remaps the surviving IDs to a contiguous `0..k` range and
//! remembers the inverse mapping so metric results can be reported against
//! original IDs.

use crate::fxhash::FxHashMap;
use crate::parallel::{par_for_each_mut, par_sort_unstable};

/// Builds and applies a dense remapping `original ID -> squeezed ID`.
///
/// Squeezed IDs are assigned in ascending order of original ID, so the
/// relative order of surviving IDs is preserved (this keeps downstream
/// CSR construction deterministic).
#[derive(Debug, Clone, Default)]
pub struct IdSqueezer {
    forward: FxHashMap<u32, u32>,
    inverse: Vec<u32>,
    /// Dense `old -> new` table, present when the original ID space was
    /// known at construction ([`IdSqueezer::from_edges_bounded`]):
    /// `u32::MAX` marks non-surviving IDs. Makes bulk remaps O(1) array
    /// reads instead of hashmap probes.
    rename: Option<Vec<u32>>,
}

impl IdSqueezer {
    /// Builds a squeezer from the set of surviving original IDs.
    /// Duplicates are allowed and ignored.
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        let mut unique: Vec<u32> = ids.into_iter().collect();
        par_sort_unstable(&mut unique);
        unique.dedup();
        let forward = unique
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        Self {
            forward,
            inverse: unique,
            rename: None,
        }
    }

    /// Builds a squeezer from the endpoint IDs of an edge list.
    pub fn from_edges(edges: &[(u32, u32)]) -> Self {
        Self::from_ids(edges.iter().flat_map(|&(a, b)| [a, b]))
    }

    /// Builds a squeezer from an edge list whose endpoints are known to
    /// lie in `0..space` (the hyperedge ID space of Stage 4). Replaces
    /// the sort-and-dedup of `2·|E|` endpoints with one O(|E| + space)
    /// presence pass, and keeps a dense rename table so
    /// [`IdSqueezer::squeeze_edges`] is array reads instead of hashmap
    /// probes — the ID-squeezing slice of the post-counting tail.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= space`.
    pub fn from_edges_bounded(edges: &[(u32, u32)], space: usize) -> Self {
        let mut present = vec![false; space];
        for &(a, b) in edges {
            present[a as usize] = true;
            present[b as usize] = true;
        }
        let inverse: Vec<u32> = present
            .iter()
            .enumerate()
            .filter_map(|(id, &p)| p.then_some(id as u32))
            .collect();
        let mut rename = vec![u32::MAX; space];
        for (new, &old) in inverse.iter().enumerate() {
            rename[old as usize] = new as u32;
        }
        // No forward hashmap at all on this path: point lookups and bulk
        // remaps both read the dense rename table.
        Self {
            forward: FxHashMap::default(),
            inverse,
            rename: Some(rename),
        }
    }

    /// Number of surviving (squeezed) IDs.
    pub fn len(&self) -> usize {
        self.inverse.len()
    }

    /// True if no IDs survive.
    pub fn is_empty(&self) -> bool {
        self.inverse.is_empty()
    }

    /// Maps an original ID to its squeezed ID, if it survived.
    #[inline]
    pub fn squeeze(&self, original: u32) -> Option<u32> {
        match &self.rename {
            Some(rename) => rename
                .get(original as usize)
                .copied()
                .filter(|&new| new != u32::MAX),
            // Compacted bounded squeezer: binary-search the sorted
            // inverse — O(log k) per point lookup, zero extra memory.
            None if self.forward.is_empty() => {
                self.inverse.binary_search(&original).ok().map(|i| i as u32)
            }
            None => self.forward.get(&original).copied(),
        }
    }

    /// Drops the dense rename scratch of a bounded squeezer (bulk
    /// remaps and point lookups fall back to binary search over the
    /// sorted inverse). Call once bulk remapping is done, before storing
    /// the squeezer long-term: it shrinks a bounded squeezer from
    /// O(original ID space) to O(surviving IDs), which matters when
    /// squeezers live inside cached artifacts.
    pub fn compact(&mut self) {
        self.rename = None;
    }

    /// Maps a squeezed ID back to its original ID.
    ///
    /// # Panics
    /// Panics if `squeezed` is out of range.
    #[inline]
    pub fn unsqueeze(&self, squeezed: u32) -> u32 {
        self.inverse[squeezed as usize]
    }

    /// Remaps an edge list in place (in parallel — part of the Stage-4
    /// tail). Every endpoint must be a surviving ID (which holds by
    /// construction when built via [`Self::from_edges`]). Because
    /// squeezed IDs are assigned in ascending original-ID order, the
    /// remapping is strictly monotone: a sorted edge list stays sorted.
    pub fn squeeze_edges(&self, edges: &mut [(u32, u32)]) {
        // Small lists remap serially: spawning workers costs more than
        // the loop (same threshold family as the parallel sorts).
        const PAR_MIN: usize = 1 << 15;
        match &self.rename {
            Some(rename) if edges.len() >= PAR_MIN => par_for_each_mut(edges, |(a, b)| {
                *a = rename[*a as usize];
                *b = rename[*b as usize];
            }),
            Some(rename) => {
                for (a, b) in edges.iter_mut() {
                    *a = rename[*a as usize];
                    *b = rename[*b as usize];
                }
            }
            None => {
                let map = |id: u32| -> u32 {
                    match self.forward.get(&id) {
                        Some(&new) => new,
                        // Compacted bounded squeezer: see `squeeze`.
                        None => self.inverse.binary_search(&id).expect("surviving ID") as u32,
                    }
                };
                if edges.len() >= PAR_MIN {
                    par_for_each_mut(edges, |(a, b)| {
                        *a = map(*a);
                        *b = map(*b);
                    });
                } else {
                    for (a, b) in edges.iter_mut() {
                        *a = map(*a);
                        *b = map(*b);
                    }
                }
            }
        }
    }

    /// The full inverse mapping: `inverse()[squeezed] == original`.
    pub fn inverse(&self) -> &[u32] {
        &self.inverse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squeeze_preserves_order() {
        let s = IdSqueezer::from_ids([100, 5, 42, 5, 100]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.squeeze(5), Some(0));
        assert_eq!(s.squeeze(42), Some(1));
        assert_eq!(s.squeeze(100), Some(2));
        assert_eq!(s.squeeze(7), None);
    }

    #[test]
    fn roundtrip() {
        let ids = [9u32, 3, 77, 1024];
        let s = IdSqueezer::from_ids(ids.iter().copied());
        for &id in &ids {
            let sq = s.squeeze(id).unwrap();
            assert_eq!(s.unsqueeze(sq), id);
        }
    }

    #[test]
    fn from_edges_and_remap() {
        let mut edges = vec![(10u32, 20u32), (20, 30), (10, 30)];
        let s = IdSqueezer::from_edges(&edges);
        assert_eq!(s.len(), 3);
        s.squeeze_edges(&mut edges);
        assert_eq!(edges, vec![(0, 1), (1, 2), (0, 2)]);
        assert_eq!(s.inverse(), &[10, 20, 30]);
    }

    #[test]
    fn empty() {
        let s = IdSqueezer::from_ids(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn bounded_matches_unbounded() {
        let edges = vec![(10u32, 20u32), (20, 30), (10, 30), (5, 29)];
        let bounded = IdSqueezer::from_edges_bounded(&edges, 31);
        let unbounded = IdSqueezer::from_edges(&edges);
        assert_eq!(bounded.inverse(), unbounded.inverse());
        assert_eq!(bounded.len(), 5);
        for id in 0..31u32 {
            assert_eq!(bounded.squeeze(id), unbounded.squeeze(id), "id {id}");
        }
        let mut a = edges.clone();
        let mut b = edges.clone();
        bounded.squeeze_edges(&mut a);
        unbounded.squeeze_edges(&mut b);
        assert_eq!(a, b);
        assert_eq!(bounded.unsqueeze(0), 5);
        // Compacting drops the dense table; lookups and bulk remaps must
        // keep working (binary search over the inverse).
        let mut compacted = bounded.clone();
        compacted.compact();
        for id in 0..31u32 {
            assert_eq!(compacted.squeeze(id), unbounded.squeeze(id), "id {id}");
        }
        let mut c = edges.clone();
        compacted.squeeze_edges(&mut c);
        assert_eq!(c, a);
    }

    #[test]
    fn hypersparse_space_compacts() {
        // IDs spread across a huge range squeeze to a tiny dense range.
        let s = IdSqueezer::from_ids([0u32, 1_000_000, 4_000_000_000]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.squeeze(4_000_000_000), Some(2));
    }
}
