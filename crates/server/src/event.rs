//! The evented transport core: one epoll readiness loop owns every
//! socket; compute stays on the bounded worker pool.
//!
//! Each connection is an explicit state machine
//! (`Head → Body → Busy → Flushing → Head`): the loop reads
//! nonblockingly and feeds the resumable head parser
//! ([`crate::http::parse_head`]); a complete request is handed to the
//! worker pool as a [`RequestJob`]. The worker runs the unchanged
//! blocking response stack (`json → gzip → chunked`), but its sink is
//! an [`OutBuf`] — a bounded byte buffer guarded by the
//! `hyperline_util::sync` seam — instead of the socket. The loop drains
//! OutBufs into sockets as `EPOLLOUT` readiness allows, so a slow
//! reader backpressures the worker through the buffer bound without
//! ever blocking the event loop.
//!
//! Wake protocol (the invariant that makes hand-off lossless): **a
//! nonempty OutBuf always has either `EPOLLOUT` armed or a flush
//! completion pending.** A worker posts [`Completion::Flush`] only on
//! an empty→nonempty transition (observed under the OutBuf lock), the
//! loop arms `EPOLLOUT` whenever a drain leaves bytes behind, and
//! [`Completion::Done`] triggers the final drain. Completions ride a
//! self-pipe [`crate::sys::Waker`], so a worker finishing mid-`epoll_wait`
//! wakes the loop immediately.
//!
//! PR 9's lifecycle maps onto a lazily-invalidated timer heap instead
//! of per-thread `SO_RCVTIMEO`/`SO_SNDTIMEO`: *Idle* (keep-alive gap,
//! `read_timeout`), *Request* (cumulative head+body budget from the
//! first head byte, `head_timeout` — the slow-loris defense), and
//! *Flush* (no socket progress while streaming, `write_timeout`). Each
//! connection holds one logical timer; arming bumps a generation so
//! stale heap entries fire as no-ops.

use crate::http::{self, ParseError, ParsedHead};
use crate::json::Json;
use crate::metrics::GaugeGuard;
use crate::pool::WorkerPool;
use crate::server::ServerState;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use crate::sys;
use hyperline_util::failpoint;
use hyperline_util::FxHashMap;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

/// Listener readiness token (never collides with connection tokens,
/// which count up from zero).
const LISTENER: u64 = u64::MAX;
/// Self-pipe readiness token.
const WAKER: u64 = u64::MAX - 1;
/// Readiness events drained per `epoll_wait`.
const MAX_EVENTS: usize = 1024;
/// Socket read granularity.
const READ_CHUNK: usize = 16 * 1024;
/// Response bytes buffered per connection before the worker blocks
/// (the backpressure bound between compute and a slow reader).
const OUT_BUF_CAP: usize = 256 * 1024;
/// Idle poll bound so shutdown and drain flags are noticed promptly
/// even with no timers armed.
const MAX_POLL: Duration = Duration::from_millis(500);

/// What a [`OutBuf::drain_with`] pass left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Everything buffered was delivered.
    Empty,
    /// The sink stopped accepting bytes (`EAGAIN`); bytes remain.
    Pending,
    /// The sink failed; the buffer is closed with this error kind.
    Error(io::ErrorKind),
}

struct OutState {
    buf: VecDeque<u8>,
    closed: Option<io::ErrorKind>,
}

/// The bounded hand-off buffer between a worker thread's blocking
/// response writes and the event loop's nonblocking socket drains.
///
/// Producers call [`OutBuf::write_bounded`] (blocking, bounded by the
/// capacity and a stall timeout); the single consumer calls
/// [`OutBuf::drain_with`]. Built entirely on the `hyperline_util::sync`
/// seam so the sched model checker can explore the hand-off —
/// `drain_with` is generic over its sink for exactly that reason.
pub struct OutBuf {
    state: Mutex<OutState>,
    space: Condvar,
    cap: usize,
}

impl OutBuf {
    /// A buffer with the production capacity.
    pub fn new() -> OutBuf {
        OutBuf::with_capacity(OUT_BUF_CAP)
    }

    /// A buffer with an explicit capacity (tests and the sched model
    /// shrink it to force the blocking path).
    pub fn with_capacity(cap: usize) -> OutBuf {
        OutBuf {
            state: Mutex::new(OutState {
                buf: VecDeque::new(),
                closed: None,
            }),
            space: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Appends as much of `data` as capacity allows, blocking while the
    /// buffer is full. Returns `(bytes_taken, buffer_was_empty)`; the
    /// `was_empty` edge is what obliges the producer to post a flush
    /// completion (the wake-protocol invariant). Fails with the stored
    /// error once closed, or `TimedOut` when no space frees up within
    /// `timeout` (booked as a write stall by the caller's error path).
    pub fn write_bounded(&self, data: &[u8], timeout: Duration) -> io::Result<(usize, bool)> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(kind) = st.closed {
                return Err(io::Error::new(kind, "connection closed"));
            }
            let room = self.cap.saturating_sub(st.buf.len());
            if room > 0 {
                let was_empty = st.buf.is_empty();
                let take = room.min(data.len());
                st.buf.extend(&data[..take]);
                return Ok((take, was_empty));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "response write stalled",
                ));
            }
            let (guard, _) = self
                .space
                .wait_timeout(st, remaining)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Drains buffered bytes through `sink` until the buffer empties,
    /// the sink reports `WouldBlock`, or it fails. Returns whether any
    /// bytes moved plus the terminal [`DrainOutcome`]; progress and
    /// errors both wake blocked producers. The sink must not block —
    /// the lock is held across calls (the event loop's sockets are
    /// nonblocking).
    pub fn drain_with<F: FnMut(&[u8]) -> io::Result<usize>>(
        &self,
        mut sink: F,
    ) -> (bool, DrainOutcome) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let mut progress = false;
        let outcome = loop {
            if st.buf.is_empty() {
                break DrainOutcome::Empty;
            }
            let chunk = st.buf.as_slices().0;
            debug_assert!(!chunk.is_empty());
            let chunk_len = chunk.len();
            match sink(chunk) {
                Ok(0) => {
                    st.closed.get_or_insert(io::ErrorKind::WriteZero);
                    break DrainOutcome::Error(io::ErrorKind::WriteZero);
                }
                Ok(n) => {
                    st.buf.drain(..n.min(chunk_len));
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break DrainOutcome::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    let kind = e.kind();
                    st.closed.get_or_insert(kind);
                    break DrainOutcome::Error(kind);
                }
            }
        };
        if progress || matches!(outcome, DrainOutcome::Error(_)) {
            self.space.notify_all();
        }
        (progress, outcome)
    }

    /// Marks the buffer closed with `kind` (first close wins) and wakes
    /// every blocked producer so no worker waits on a dead connection.
    pub fn close(&self, kind: io::ErrorKind) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.closed.get_or_insert(kind);
        self.space.notify_all();
    }

    /// Whether nothing is buffered (the loop's `EPOLLOUT` decision).
    pub fn is_empty(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .buf
            .is_empty()
    }

    /// Loop-side unbounded append for loop-generated responses (interim
    /// `100 Continue`, parse rejections, overload 503s) — small, and
    /// the loop must never block on its own capacity rule.
    pub(crate) fn append(&self, bytes: &[u8]) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.buf.extend(bytes);
    }
}

impl Default for OutBuf {
    fn default() -> Self {
        OutBuf::new()
    }
}

/// What a worker reports back to the event loop.
pub(crate) enum Completion {
    /// `conn`'s OutBuf went empty→nonempty: start draining it.
    Flush(u64),
    /// The request on `conn` finished. `flush: true` streams out the
    /// remaining buffer then honors `keep_alive`; `flush: false` closes
    /// immediately (the worker's write path already failed and
    /// classified the error — flushing a half-written body would only
    /// double-book the stall).
    Done {
        /// Connection token.
        conn: u64,
        /// Whether the connection may serve another request.
        keep_alive: bool,
        /// Whether remaining buffered bytes should still be delivered.
        flush: bool,
    },
}

/// The worker→loop completion channel: a mutex-guarded batch plus the
/// self-pipe waker that interrupts `epoll_wait`.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: Arc<sys::Waker>,
}

impl Completions {
    pub(crate) fn new(waker: Arc<sys::Waker>) -> Completions {
        Completions {
            queue: Mutex::new(Vec::new()),
            waker,
        }
    }

    pub(crate) fn push(&self, completion: Completion) {
        {
            let mut queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push(completion);
        }
        // Wake after the push is visible: the loop drains the pipe
        // before taking the batch, so the completion cannot be missed.
        self.waker.wake();
    }

    pub(crate) fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// One parsed request travelling from the event loop to a worker. The
/// worker answers through [`RequestJob::writer`] and must end with
/// [`RequestJob::complete`]; if it never does (worker panic, job
/// dropped on queue overflow handling), `Drop` posts a no-flush `Done`
/// so the connection can never leak in the `Busy` state.
pub(crate) struct RequestJob {
    pub(crate) conn: u64,
    pub(crate) request: http::Request,
    pub(crate) queued: Instant,
    out: Arc<OutBuf>,
    completions: Arc<Completions>,
    write_timeout: Duration,
    done: bool,
}

impl RequestJob {
    /// The worker's response sink: blocking bounded writes into the
    /// connection's OutBuf, posting the flush wake on every
    /// empty→nonempty edge.
    pub(crate) fn writer(&self) -> OutWriter {
        OutWriter {
            out: Arc::clone(&self.out),
            completions: Arc::clone(&self.completions),
            conn: self.conn,
            timeout: self.write_timeout,
        }
    }

    /// Reports the request finished; consumes the job so `Drop` stays
    /// quiet.
    pub(crate) fn complete(mut self, keep_alive: bool, flush: bool) {
        self.done = true;
        self.completions.push(Completion::Done {
            conn: self.conn,
            keep_alive,
            flush,
        });
    }
}

impl Drop for RequestJob {
    fn drop(&mut self) {
        if !self.done {
            // Safety net: a worker panic (the pool catches the unwind)
            // must not strand the connection in `Busy` forever.
            self.completions.push(Completion::Done {
                conn: self.conn,
                keep_alive: false,
                flush: false,
            });
        }
    }
}

/// The `impl Write` a worker streams its response through: each write
/// is a bounded OutBuf append, with the flush completion posted on the
/// empty→nonempty edge per the wake-protocol invariant.
pub(crate) struct OutWriter {
    out: Arc<OutBuf>,
    completions: Arc<Completions>,
    conn: u64,
    timeout: Duration,
}

impl Write for OutWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let (taken, was_empty) = self.out.write_bounded(data, self.timeout)?;
        if was_empty {
            self.completions.push(Completion::Flush(self.conn));
        }
        Ok(taken)
    }

    fn flush(&mut self) -> io::Result<()> {
        // Delivery is the loop's job; the final drain rides `Done`.
        Ok(())
    }
}

/// Where a connection is in its request cycle.
enum Phase {
    /// Accumulating head bytes for the incremental parser.
    Head,
    /// Head parsed; accumulating `need` body bytes.
    Body {
        /// The parsed head, carried until the body completes.
        head: ParsedHead,
        /// Body bytes still owed by the client.
        need: usize,
    },
    /// A worker owns the request; the loop only pumps the OutBuf.
    Busy,
    /// Worker done; draining the remaining buffer, then `keep_alive`
    /// decides between another `Head` cycle and close.
    Flushing {
        /// Whether the connection survives the flush.
        keep_alive: bool,
    },
}

impl Phase {
    fn reading(&self) -> bool {
        matches!(self, Phase::Head | Phase::Body { .. })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TimerKind {
    Idle,
    Request,
    Flush,
}

/// Heap entry: min-ordered by deadline via `Reverse`. `gen` must match
/// the connection's current generation to fire — arming or disarming
/// bumps the generation, lazily invalidating whatever is in the heap.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    at: Instant,
    token: u64,
    gen: u64,
    kind: TimerKind,
}

struct Conn {
    stream: TcpStream,
    /// Drain-tracker registration (a dup of the socket), if cloning
    /// succeeded.
    tracker_id: Option<u64>,
    phase: Phase,
    /// Unparsed inbound bytes (head fragments, early body, pipelined
    /// requests).
    in_buf: Vec<u8>,
    out: Arc<OutBuf>,
    /// Current timer generation; heap entries with an older one are
    /// stale.
    timer_gen: u64,
    /// Interest mask currently registered with epoll.
    interest: u32,
}

/// The readiness loop: owns the listener, every connection socket, the
/// timer heap, and the completion channel from the worker pool.
pub(crate) struct EventLoop {
    epoll: sys::Epoll,
    waker: Arc<sys::Waker>,
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: Option<WorkerPool<RequestJob>>,
    completions: Arc<Completions>,
    conns: FxHashMap<u64, Conn>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    next_token: u64,
    read_timeout: Duration,
    shutdown: Arc<AtomicBool>,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        state: Arc<ServerState>,
        waker: Arc<sys::Waker>,
        completions: Arc<Completions>,
        pool: WorkerPool<RequestJob>,
        read_timeout: Duration,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<EventLoop> {
        let epoll = sys::Epoll::new()?;
        sys::set_nonblocking(listener.as_raw_fd())?;
        epoll.add(listener.as_raw_fd(), LISTENER, sys::EPOLLIN)?;
        epoll.add(waker.read_fd(), WAKER, sys::EPOLLIN)?;
        Ok(EventLoop {
            epoll,
            waker,
            listener,
            state,
            pool: Some(pool),
            completions,
            conns: FxHashMap::default(),
            timers: BinaryHeap::new(),
            next_token: 0,
            read_timeout,
            shutdown,
        })
    }

    fn run(&mut self) {
        let mut events = vec![sys::EpollEvent::zeroed(); MAX_EVENTS];
        loop {
            // ordering: pairs with the Release store in
            // `ServerHandle::shutdown`; seeing the flag must also see
            // every write the shutting-down thread made before it.
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            self.fire_timers();
            self.process_completions();
            let timeout = self.next_timeout();
            if failpoint::check("epoll.wait").is_some() {
                // Injected spurious/failed wait: the loop must degrade
                // to a short sleep and keep serving, never wedge.
                self.state
                    .metrics
                    .event_loop_wakeups
                    .fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let fired = match self.epoll.wait(&mut events, Some(timeout)) {
                Ok(n) => n,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            };
            self.state
                .metrics
                .event_loop_wakeups
                .fetch_add(1, Ordering::Relaxed);
            for event in &events[..fired] {
                // Copy out of the (packed) event before using.
                let mask = event.events;
                let token = event.data;
                match token {
                    LISTENER => self.accept_ready(),
                    WAKER => self.waker.drain(),
                    _ => self.dispatch_conn(token, mask),
                }
            }
            self.process_completions();
        }
        self.teardown();
    }

    fn dispatch_conn(&mut self, token: u64, mask: u32) {
        if mask & sys::EPOLLERR != 0 {
            self.close_conn(token, io::ErrorKind::ConnectionReset);
            return;
        }
        let reading = self
            .conns
            .get(&token)
            .is_some_and(|conn| conn.phase.reading());
        if mask & sys::EPOLLHUP != 0 && !reading {
            // Peer gone both ways while we compute or flush: nothing we
            // buffer can be delivered, and `EPOLLHUP` re-reports every
            // wait — close now rather than spin.
            self.close_conn(token, io::ErrorKind::ConnectionReset);
            return;
        }
        if mask & sys::EPOLLOUT != 0 {
            self.pump(token);
        }
        if mask & (sys::EPOLLIN | sys::EPOLLHUP) != 0 {
            self.handle_readable(token);
        }
    }

    // ---- timers ----------------------------------------------------

    fn next_timeout(&self) -> Duration {
        match self.timers.peek() {
            Some(Reverse(entry)) => entry
                .at
                .saturating_duration_since(Instant::now())
                .min(MAX_POLL),
            None => MAX_POLL,
        }
    }

    fn arm_timer(&mut self, token: u64, kind: TimerKind, budget: Duration) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.timer_gen += 1;
        let gen = conn.timer_gen;
        self.timers.push(Reverse(TimerEntry {
            at: Instant::now() + budget,
            token,
            gen,
            kind,
        }));
    }

    fn disarm_timer(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.timer_gen += 1;
        }
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        loop {
            match self.timers.peek() {
                Some(Reverse(entry)) if entry.at <= now => {}
                _ => return,
            }
            let Some(Reverse(entry)) = self.timers.pop() else {
                return;
            };
            let live = self
                .conns
                .get(&entry.token)
                .is_some_and(|conn| conn.timer_gen == entry.gen);
            if !live {
                continue; // stale: re-armed, disarmed, or conn gone
            }
            match entry.kind {
                // Keep-alive gap expired with no request in sight.
                TimerKind::Idle => self.close_conn(entry.token, io::ErrorKind::TimedOut),
                // Cumulative head+body budget blown: a slow-loris
                // client loses its connection, quietly (answering
                // would reward the drip with more socket time).
                TimerKind::Request => {
                    self.state
                        .metrics
                        .slow_loris_closes
                        .fetch_add(1, Ordering::Relaxed);
                    self.close_conn(entry.token, io::ErrorKind::TimedOut);
                }
                // No socket progress while flushing a finished
                // response: dead or pathologically slow reader.
                TimerKind::Flush => {
                    self.state
                        .metrics
                        .write_stalls
                        .fetch_add(1, Ordering::Relaxed);
                    self.close_conn(entry.token, io::ErrorKind::TimedOut);
                }
            }
        }
    }

    // ---- accept ----------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            if failpoint::check("socket.accept").is_some() {
                // Injected accept failure: abandon this round; level-
                // triggered epoll re-reports the pending backlog.
                return;
            }
            match sys::accept_nonblocking(&self.listener) {
                Ok(Some(stream)) => self.register_conn(stream),
                Ok(None) => return,
                // Transient accept errors (EMFILE and friends): give
                // up this round, same as the old `incoming()` loop
                // skipping `Err` entries.
                Err(_) => return,
            }
        }
    }

    fn register_conn(&mut self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if self.state.draining.load(Ordering::Relaxed) {
            // Draining: stop taking work; tell clients when to come
            // back.
            self.state
                .metrics
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            crate::server::shed_connection(&mut stream, "server draining, retry later");
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        // A dup registers with the drain tracker so a drain can
        // hard-close this connection from outside the loop.
        let tracker_id = stream
            .try_clone()
            .ok()
            .map(|dup| self.state.connections.register(dup));
        if self
            .epoll
            .add(stream.as_raw_fd(), token, sys::EPOLLIN)
            .is_err()
        {
            if let Some(id) = tracker_id {
                self.state.connections.deregister(id);
            }
            return;
        }
        self.state
            .metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        self.state
            .metrics
            .event_loop_connections
            .fetch_add(1, Ordering::Relaxed);
        self.conns.insert(
            token,
            Conn {
                stream,
                tracker_id,
                phase: Phase::Head,
                in_buf: Vec::new(),
                out: Arc::new(OutBuf::new()),
                timer_gen: 0,
                interest: sys::EPOLLIN,
            },
        );
        self.arm_timer(token, TimerKind::Idle, self.read_timeout);
    }

    // ---- reads and the request state machine -----------------------

    fn handle_readable(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.phase.reading() {
                self.update_interest(token);
                return;
            }
            let mut chunk = [0u8; READ_CHUNK];
            let result = match failpoint::check("socket.read") {
                Some(_) => Err(failpoint::io_error("socket.read")),
                None => (&conn.stream).read(&mut chunk),
            };
            match result {
                Ok(0) => {
                    self.read_closed(token);
                    return;
                }
                Ok(n) => {
                    let first_head_byte =
                        conn.in_buf.is_empty() && matches!(conn.phase, Phase::Head);
                    conn.in_buf.extend_from_slice(&chunk[..n]);
                    if first_head_byte {
                        // First byte of a new request head arms the
                        // cumulative slow-loris budget.
                        let budget = self.state.head_timeout;
                        self.arm_timer(token, TimerKind::Request, budget);
                    }
                    self.advance(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.update_interest(token);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.read_failed(token);
                    return;
                }
            }
        }
    }

    /// Clean EOF from the peer, classified by where the request stood.
    fn read_closed(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match &conn.phase {
            // Between requests: a quiet keep-alive close.
            Phase::Head if conn.in_buf.is_empty() => {
                self.close_conn(token, io::ErrorKind::ConnectionAborted);
            }
            // Mid-head: same verdict the blocking parser gave.
            Phase::Head => {
                self.state
                    .metrics
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                self.reject(token, 400, "connection closed mid-headers");
            }
            // Mid-body: the request never completed — the same bucket
            // the cumulative head deadline books.
            Phase::Body { .. } => {
                self.state
                    .metrics
                    .slow_loris_closes
                    .fetch_add(1, Ordering::Relaxed);
                self.close_conn(token, io::ErrorKind::UnexpectedEof);
            }
            _ => self.close_conn(token, io::ErrorKind::ConnectionAborted),
        }
    }

    /// Socket read error (peer reset, injected fault).
    fn read_failed(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mid_request = !conn.in_buf.is_empty() || !matches!(conn.phase, Phase::Head);
        if mid_request {
            self.state
                .metrics
                .slow_loris_closes
                .fetch_add(1, Ordering::Relaxed);
        }
        self.close_conn(token, io::ErrorKind::ConnectionReset);
    }

    /// Drives the `Head → Body → Busy` machine over whatever `in_buf`
    /// holds; loops so a pipelined buffer can cross phases in one call.
    fn advance(&mut self, token: u64) {
        enum Action {
            Wait,
            Continue100,
            Enqueue(http::Request),
            Reject(ParseError),
        }
        loop {
            let action = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                match &conn.phase {
                    Phase::Head => {
                        if conn.in_buf.is_empty() {
                            Action::Wait
                        } else {
                            match http::parse_head(&conn.in_buf) {
                                Ok(None) => Action::Wait,
                                Ok(Some((head, consumed))) => {
                                    conn.in_buf.drain(..consumed);
                                    let interim = head.expect_continue;
                                    let need = head.body_len;
                                    conn.phase = Phase::Body { head, need };
                                    if interim {
                                        Action::Continue100
                                    } else {
                                        continue;
                                    }
                                }
                                Err(err) => Action::Reject(err),
                            }
                        }
                    }
                    Phase::Body { need, .. } if conn.in_buf.len() >= *need => {
                        match std::mem::replace(&mut conn.phase, Phase::Busy) {
                            Phase::Body { mut head, need } => {
                                head.request.body = conn.in_buf.drain(..need).collect();
                                Action::Enqueue(head.request)
                            }
                            other => {
                                conn.phase = other;
                                Action::Wait
                            }
                        }
                    }
                    _ => Action::Wait,
                }
            };
            match action {
                Action::Wait => return,
                Action::Continue100 => {
                    // The client is holding its body back until invited.
                    if let Some(conn) = self.conns.get(&token) {
                        conn.out.append(b"HTTP/1.1 100 Continue\r\n\r\n");
                    }
                    self.pump(token);
                }
                Action::Enqueue(request) => {
                    self.enqueue(token, request);
                    return;
                }
                Action::Reject(err) => {
                    self.handle_parse_error(token, err);
                    return;
                }
            }
        }
    }

    fn handle_parse_error(&mut self, token: u64, err: ParseError) {
        match err {
            ParseError::Malformed(message) => {
                self.state
                    .metrics
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                self.reject(token, 400, &message);
            }
            ParseError::Rejected { status, message } => {
                self.state
                    .metrics
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                self.reject(token, status, &message);
            }
            // The incremental parser never reports I/O conditions, but
            // exhaustiveness costs nothing: close quietly.
            ParseError::ConnectionClosed | ParseError::Io(_) => {
                self.close_conn(token, io::ErrorKind::InvalidData);
            }
        }
    }

    /// Answers an error response from the loop itself and flushes to
    /// close. Any buffered inbound bytes are dropped — after a parse
    /// error the stream position is unknowable, so the connection never
    /// serves another request (same rule as the blocking loop).
    fn reject(&mut self, token: u64, status: u16, message: &str) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let body = Json::obj().set("error", message).render();
        let mut response = Vec::new();
        if status == 503 {
            let length = body.len().to_string();
            let _ = http::write_response_head(
                &mut response,
                503,
                http::CONTENT_TYPE_JSON,
                false,
                &[("content-length", &length), ("retry-after", "1")],
            );
            let _ = response.write_all(body.as_bytes());
        } else {
            let _ = http::write_response(&mut response, status, &body, false);
        }
        conn.in_buf.clear();
        conn.out.append(&response);
        self.start_flush(token, false);
    }

    // ---- dispatch to the worker pool -------------------------------

    fn enqueue(&mut self, token: u64, request: http::Request) {
        // The worker's own deadlines take over from here.
        self.disarm_timer(token);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.phase = Phase::Busy;
        let job = RequestJob {
            conn: token,
            request,
            queued: Instant::now(),
            out: Arc::clone(&conn.out),
            completions: Arc::clone(&self.completions),
            write_timeout: self.state.write_timeout,
            done: false,
        };
        let Some(pool) = self.pool.as_ref() else {
            return;
        };
        // Gauge up before the push: a worker may pop (and decrement)
        // the instant the push lands, and the gauge must never dip
        // negative.
        self.state
            .metrics
            .queue_depth
            .fetch_add(1, Ordering::Relaxed);
        match pool.queue().try_push(job) {
            Ok(()) => self.update_interest(token),
            Err(mut job) => {
                // Shed load: immediate 503, never queue. Mark the job
                // done by hand — its Drop safety net would otherwise
                // post a spurious close for this very connection.
                job.done = true;
                drop(job);
                self.state
                    .metrics
                    .queue_depth
                    .fetch_sub(1, Ordering::Relaxed);
                self.state
                    .metrics
                    .connections_rejected
                    .fetch_add(1, Ordering::Relaxed);
                self.reject(token, 503, "server overloaded, retry later");
            }
        }
    }

    fn process_completions(&mut self) {
        for completion in self.completions.take() {
            match completion {
                Completion::Flush(token) => self.pump(token),
                Completion::Done {
                    conn,
                    keep_alive,
                    flush,
                } => self.finish_request(conn, keep_alive, flush),
            }
        }
    }

    fn finish_request(&mut self, token: u64, keep_alive: bool, flush: bool) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if !matches!(conn.phase, Phase::Busy) {
            return; // already closed and token reused? tokens never reuse; stale Done after close
        }
        if !flush {
            // The worker's write path failed and already classified the
            // error; delivering a half-written body helps no one.
            self.close_conn(token, io::ErrorKind::ConnectionAborted);
            return;
        }
        self.start_flush(token, keep_alive);
    }

    fn start_flush(&mut self, token: u64, keep_alive: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.phase = Phase::Flushing { keep_alive };
        let budget = self.state.write_timeout;
        self.arm_timer(token, TimerKind::Flush, budget);
        self.pump(token);
    }

    // ---- writes ----------------------------------------------------

    /// Drains the connection's OutBuf into its socket as far as
    /// readiness allows, then resolves what the drain outcome means for
    /// the phase: a finished flush completes the response cycle, a
    /// partial one arms `EPOLLOUT` (and refreshes the stall timer on
    /// progress), an error closes.
    fn pump(&mut self, token: u64) {
        let (progress, outcome) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let out = Arc::clone(&conn.out);
            let mut sink = &conn.stream;
            out.drain_with(|bytes| sink.write(bytes))
        };
        match outcome {
            DrainOutcome::Empty => {
                let keep = match self.conns.get(&token).map(|conn| &conn.phase) {
                    Some(Phase::Flushing { keep_alive }) => Some(*keep_alive),
                    Some(_) => None,
                    None => return,
                };
                match keep {
                    Some(true) => self.finish_keep_alive(token),
                    Some(false) => self.close_conn(token, io::ErrorKind::ConnectionAborted),
                    None => self.update_interest(token),
                }
            }
            DrainOutcome::Pending => {
                self.state
                    .metrics
                    .eagain_yields
                    .fetch_add(1, Ordering::Relaxed);
                let flushing = self
                    .conns
                    .get(&token)
                    .is_some_and(|conn| matches!(conn.phase, Phase::Flushing { .. }));
                if progress && flushing {
                    // Socket progress resets the stall clock — only a
                    // reader making *no* progress for the whole budget
                    // is a stall.
                    let budget = self.state.write_timeout;
                    self.arm_timer(token, TimerKind::Flush, budget);
                }
                self.update_interest(token);
            }
            DrainOutcome::Error(kind) => {
                let busy = self
                    .conns
                    .get(&token)
                    .is_some_and(|conn| matches!(conn.phase, Phase::Busy));
                // While a worker owns the request its next write sees
                // the stored error and classifies it; after `Done`
                // nobody else will, so the loop books client aborts.
                if !busy
                    && matches!(
                        kind,
                        io::ErrorKind::BrokenPipe
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::ConnectionAborted
                    )
                {
                    self.state
                        .metrics
                        .client_aborts
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.close_conn(token, kind);
            }
        }
    }

    /// A keep-alive response fully delivered: back to `Head`, with the
    /// timer matching whether a pipelined request is already buffered.
    fn finish_keep_alive(&mut self, token: u64) {
        let pipelined = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.phase = Phase::Head;
            !conn.in_buf.is_empty()
        };
        if pipelined {
            // Bytes of the next head already arrived: its cumulative
            // budget starts now.
            let budget = self.state.head_timeout;
            self.arm_timer(token, TimerKind::Request, budget);
        } else {
            self.arm_timer(token, TimerKind::Idle, self.read_timeout);
        }
        self.update_interest(token);
        if pipelined {
            self.advance(token);
        }
    }

    // ---- interest and close ----------------------------------------

    /// Reconciles the epoll interest mask with the phase (`EPOLLIN`
    /// while reading) and the OutBuf (`EPOLLOUT` while bytes wait);
    /// issues `EPOLL_CTL_MOD` only on change.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut want = 0u32;
        if conn.phase.reading() {
            want |= sys::EPOLLIN;
        }
        if !conn.out.is_empty() {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    /// Removes and closes one connection: epoll deregistration first
    /// (the drain tracker's dup keeps the open file description alive,
    /// so the kernel would not auto-remove the entry), then the OutBuf
    /// closes with `kind` to wake any blocked worker, then the drain
    /// accounting the old per-connection guard did.
    fn close_conn(&mut self, token: u64, kind: io::ErrorKind) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        conn.out.close(kind);
        if let Some(id) = conn.tracker_id {
            // A close while draining counts as a graceful drain;
            // hard-closed connections were already claimed by
            // `ConnectionTracker::close_all` and book under
            // `aborted_connections` instead.
            if self.state.connections.deregister(id) && self.state.draining.load(Ordering::Relaxed)
            {
                self.state
                    .metrics
                    .drained_connections
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        self.state
            .metrics
            .event_loop_connections
            .fetch_sub(1, Ordering::Relaxed);
    }

    /// Orderly stop: close every connection **before** joining the pool
    /// — closing wakes workers blocked on OutBuf space, so the join can
    /// never deadlock against a worker waiting for a drain that will
    /// not come.
    fn teardown(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token, io::ErrorKind::ConnectionAborted);
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

/// Starts the worker pool and the event-loop thread; returns the join
/// handle and the waker [`crate::server::ServerHandle::shutdown`] uses
/// to interrupt `epoll_wait`.
pub(crate) fn spawn_event_loop(
    listener: TcpListener,
    state: Arc<ServerState>,
    threads: usize,
    queue_depth: usize,
    read_timeout: Duration,
    shutdown: Arc<AtomicBool>,
) -> (std::thread::JoinHandle<()>, Arc<sys::Waker>) {
    let waker = Arc::new(sys::Waker::new().expect("failed to create event-loop waker"));
    let completions = Arc::new(Completions::new(Arc::clone(&waker)));
    let pool_state = Arc::clone(&state);
    let pool = WorkerPool::start(threads, queue_depth, move |job: RequestJob| {
        // The queue-depth gauge and wait histogram bracket the bounded
        // queue: enqueued in the event loop, resolved here.
        pool_state
            .metrics
            .queue_depth
            .fetch_sub(1, Ordering::Relaxed);
        let waited = job.queued.elapsed();
        pool_state.metrics.queue_wait.record_micros(waited);
        let _busy = GaugeGuard::enter(&pool_state.metrics.busy_workers);
        crate::server::handle_request(&pool_state, job, waited);
    });
    let loop_waker = Arc::clone(&waker);
    let handle = std::thread::Builder::new()
        .name("hyperline-event-loop".to_string())
        .spawn(move || {
            let mut event_loop = EventLoop::new(
                listener,
                state,
                loop_waker,
                completions,
                pool,
                read_timeout,
                shutdown,
            )
            .expect("failed to create epoll instance");
            event_loop.run();
        })
        .expect("failed to spawn event-loop thread");
    (handle, waker)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_buf_reports_empty_edge_and_respects_cap() {
        let out = OutBuf::with_capacity(4);
        let (taken, was_empty) = out
            .write_bounded(b"abcdef", Duration::from_secs(1))
            .unwrap();
        assert_eq!(taken, 4, "capacity bounds a single write");
        assert!(was_empty, "first write sees the empty buffer");
        let err = out
            .write_bounded(b"x", Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "full buffer stalls");
        let mut sink = Vec::new();
        let (progress, outcome) = out.drain_with(|bytes| {
            sink.extend_from_slice(bytes);
            Ok(bytes.len())
        });
        assert!(progress);
        assert_eq!(outcome, DrainOutcome::Empty);
        assert_eq!(&sink, b"abcd");
        let (taken, was_empty) = out.write_bounded(b"ef", Duration::from_secs(1)).unwrap();
        assert_eq!(
            (taken, was_empty),
            (2, true),
            "drained buffer is empty again"
        );
    }

    #[test]
    fn out_buf_drain_reports_pending_and_error() {
        let out = OutBuf::new();
        out.write_bounded(b"hello", Duration::from_secs(1)).unwrap();
        let (progress, outcome) = out.drain_with(|bytes| {
            assert_eq!(bytes, b"hello");
            Err(io::Error::new(io::ErrorKind::WouldBlock, "eagain"))
        });
        assert!(!progress);
        assert_eq!(outcome, DrainOutcome::Pending);
        assert!(!out.is_empty(), "pending drain leaves bytes buffered");
        let mut fed = 0usize;
        let (progress, outcome) = out.drain_with(|bytes| {
            if fed == 0 {
                fed = 2;
                Ok(2)
            } else {
                assert_eq!(bytes, b"llo");
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
        });
        assert!(progress, "partial progress before the failure counts");
        assert_eq!(outcome, DrainOutcome::Error(io::ErrorKind::BrokenPipe));
        let err = out.write_bounded(b"x", Duration::from_secs(1)).unwrap_err();
        assert_eq!(
            err.kind(),
            io::ErrorKind::BrokenPipe,
            "a failed drain closes the buffer for producers"
        );
    }

    #[test]
    fn out_buf_close_wakes_blocked_writer() {
        let out = Arc::new(OutBuf::with_capacity(2));
        out.write_bounded(b"ab", Duration::from_secs(1)).unwrap();
        let blocked = Arc::clone(&out);
        let writer = std::thread::spawn(move || {
            blocked
                .write_bounded(b"c", Duration::from_secs(30))
                .unwrap_err()
                .kind()
        });
        // Give the writer a moment to block, then close underneath it.
        std::thread::sleep(Duration::from_millis(20));
        out.close(io::ErrorKind::ConnectionReset);
        let kind = writer.join().expect("writer thread");
        assert_eq!(kind, io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn drop_without_complete_posts_a_close() {
        let waker = Arc::new(sys::Waker::new().unwrap());
        let completions = Arc::new(Completions::new(waker));
        let job = RequestJob {
            conn: 9,
            request: http::Request {
                method: "GET".to_string(),
                path: "/".to_string(),
                query: Vec::new(),
                headers: Vec::new(),
                body: Vec::new(),
                http10: false,
            },
            queued: Instant::now(),
            out: Arc::new(OutBuf::new()),
            completions: Arc::clone(&completions),
            write_timeout: Duration::from_secs(1),
            done: false,
        };
        drop(job);
        let batch = completions.take();
        assert_eq!(batch.len(), 1);
        assert!(matches!(
            batch[0],
            Completion::Done {
                conn: 9,
                keep_alive: false,
                flush: false
            }
        ));
    }
}
