//! s-clique graphs: the vertex-centric dual of s-line graphs (§III-H).
//!
//! The weighted clique expansion `W = H·Hᵀ − D_V` connects vertices `u, v`
//! with weight equal to the number of hyperedges containing both. The
//! *s-clique graph* keeps pairs with weight ≥ s — and is exactly the
//! s-line graph of the **dual** hypergraph, so the same machinery applies
//! without ever materializing the (possibly very dense) `W`. The 1-clique
//! graph is the classic clique expansion / 2-section.

use crate::algorithms::{algo2_slinegraph, OverlapResult};
use crate::ensemble::ensemble_slinegraphs;
use crate::strategy::Strategy;
use hyperline_hypergraph::Hypergraph;

/// Computes the s-clique graph edge list of `h`: vertex pairs appearing
/// together in at least `s` hyperedges. Runs Algorithm 2 on the dual.
pub fn sclique_graph(h: &Hypergraph, s: u32, strategy: &Strategy) -> OverlapResult {
    algo2_slinegraph(&h.dual(), s, strategy)
}

/// Edge counts of the s-clique graph for each `s` (Figure 4's y-axis),
/// computed with one ensemble pass over the dual.
pub fn sclique_edge_counts(
    h: &Hypergraph,
    s_values: &[u32],
    strategy: &Strategy,
) -> Vec<(u32, usize)> {
    ensemble_slinegraphs(&h.dual(), s_values, strategy)
        .per_s
        .into_iter()
        .map(|(s, edges)| (s, edges.len()))
        .collect()
}

/// The clique expansion (2-section) edge list: the `s = 1` special case.
pub fn clique_expansion(h: &Hypergraph, strategy: &Strategy) -> OverlapResult {
    sclique_graph(h, 1, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_2section() {
        // Figure 3 (right): the 2-section of the example hypergraph —
        // a,b,c,d,e form a clique (all co-occur in edge 3), e-f from edge 4.
        let h = Hypergraph::paper_example();
        let r = clique_expansion(&h, &Strategy::default());
        let mut expect: Vec<(u32, u32)> = vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4), // a-b, a-c, a-d, a-e
            (1, 2),
            (1, 3),
            (1, 4), // b-c, b-d, b-e
            (2, 3),
            (2, 4), // c-d, c-e
            (3, 4), // d-e
            (4, 5), // e-f
        ];
        expect.sort_unstable();
        assert_eq!(r.edges, expect);
    }

    #[test]
    fn sclique_weights_are_adj_counts() {
        // adj(b, c) = 3 in the example, so {b, c} survives s = 3.
        let h = Hypergraph::paper_example();
        let r = sclique_graph(&h, 3, &Strategy::default());
        assert_eq!(r.edges, vec![(1, 2)]);
        // s = 2: pairs in >= 2 common edges: (a,b)=2,(a,c)=2,(b,c)=3,
        // (b,d)=2,(c,d)=2.
        let r = sclique_graph(&h, 2, &Strategy::default());
        assert_eq!(r.edges, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn sclique_equals_slinegraph_of_dual() {
        let h = Hypergraph::paper_example();
        let st = Strategy::default();
        for s in 1..=3 {
            assert_eq!(
                sclique_graph(&h, s, &st).edges,
                algo2_slinegraph(&h.dual(), s, &st).edges
            );
        }
    }

    #[test]
    fn edge_counts_decrease_in_s() {
        let h = Hypergraph::paper_example();
        let counts = sclique_edge_counts(&h, &[1, 2, 3, 4], &Strategy::default());
        for w in counts.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(counts[0].1, 11);
        assert_eq!(counts[2].1, 1);
    }
}
