//! Parallel frontier engine for the Stage-5 BFS kernels.
//!
//! Everything Stage 5 computes over the squeezed s-line graph reduces to
//! breadth-first expansion: s-connected components, s-distance /
//! s-diameter (per-source eccentricities) and s-harmonic-closeness
//! (per-source distance sums). This module provides the shared engine:
//!
//! * [`ParBfs`] — a level-synchronous **parallel single-source BFS** over
//!   an atomic visit bitmap, direction-optimizing in the Beamer sense:
//!   sparse levels *push* (workers expand disjoint frontier chunks,
//!   claiming vertices with one atomic `fetch_or`, and the per-worker
//!   discovery buffers are merged into one deterministically sorted next
//!   frontier), dense levels *pull* (workers own disjoint vertex ranges
//!   and scan each unvisited vertex's neighbors for the current level,
//!   bailing at the first hit). The push↔pull switch is driven by the
//!   frontier-to-unexplored-edge ratio — a function of the traversal
//!   state alone, never of the worker count.
//! * [`SweepScratch`] — the **batched multi-source** form: one serial
//!   direction-optimizing sweep per source with fully reused scratch
//!   (no per-source allocation, distance resets proportional to the
//!   reached set), driven source-parallel by [`eccentricities`] /
//!   [`diameter`] / [`harmonic_closeness`].
//! * [`components`] — frontier-parallel connected components: unvisited
//!   start vertices are seeded in ascending ID order, so every label is
//!   the smallest member ID (canonical) by construction and the result
//!   is byte-identical to [`crate::cc::components_bfs`] for every worker
//!   count.
//!
//! **Determinism.** All outputs are worker-count independent: vertex
//! claims are set-valued (the set of vertices discovered at level `d` is
//! exactly the unvisited neighborhood of level `d-1`, no matter which
//! worker wins each claim), per-worker push buffers are sorted into one
//! canonical frontier, pull discoveries concatenate in vertex order, and
//! the serial/parallel execution cutoffs are functions of the frontier
//! alone. This is the same discipline as the `par_sort` primitives: the
//! worker count only decides how much of a fixed schedule runs
//! concurrently.

use crate::bfs::UNREACHABLE;
use crate::graph::Graph;
use hyperline_util::parallel::{
    par_for_each_range, par_map_range, par_map_range_init, par_sort_unstable,
};
use hyperline_util::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use hyperline_util::telemetry::Span;

/// Beamer's α: switch push→pull when the frontier's out-edges exceed
/// `unexplored_edges / ALPHA`.
const ALPHA: usize = 14;

/// Beamer's β: switch pull→push when the frontier shrinks below
/// `num_vertices / BETA`.
const BETA: usize = 24;

/// Below this much level work (frontier out-edges + frontier size) a push
/// level runs serially — thread spawn would dwarf the expansion. A
/// function of the frontier alone, so every worker count takes the same
/// serial/parallel decisions.
const SERIAL_LEVEL_WORK: usize = 1 << 13;

/// Fixed chunk sizes for parallel push (frontier entries) and pull
/// (vertex range) levels; functions of nothing but the input.
const PUSH_CHUNK: usize = 1 << 10;
const PULL_CHUNK: usize = 1 << 12;

/// Below this many entries a frontier labeling/collection pass runs
/// serially inside [`components`].
const SERIAL_LABEL_MIN: usize = 1 << 14;

/// A shared atomic visit bitmap: the claim `fetch_or` is the only
/// synchronization the push phase needs — exactly one worker sees the
/// bit flip and emits the vertex.
///
/// Public so the model-checked frontier unit (`tests/sched_frontier.rs`)
/// can exhaustively verify first-parent uniqueness of [`claim`]
/// (`AtomicBits::claim`) across every bounded interleaving.
pub struct AtomicBits {
    words: Vec<AtomicU64>,
}

impl AtomicBits {
    /// A bitmap of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Sets bit `i`; returns true if this call flipped it (the claim).
    #[inline]
    pub fn claim(&self, i: u32) -> bool {
        let mask = 1u64 << (i % 64);
        self.words[(i / 64) as usize].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        self.words[(i / 64) as usize].load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0
    }
}

/// What one [`ParBfs::run_with`] traversal covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Greatest level reached (the source's eccentricity within its
    /// component).
    pub eccentricity: u32,
    /// Number of vertices visited, including the source.
    pub visited: usize,
}

/// A reusable parallel direction-optimizing BFS over a shared visit
/// bitmap.
///
/// The bitmap and distance array persist across [`ParBfs::run_with`]
/// calls, which is what lets [`components`] sweep one traversal per
/// component without O(V) resets in between: a later run only ever
/// touches vertices no earlier run reached.
pub struct ParBfs<'g> {
    g: &'g Graph,
    visited: AtomicBits,
    dist: Vec<AtomicU32>,
    /// Upper bound on edge endpoints incident to unvisited vertices
    /// (Beamer's m_u), maintained across runs.
    unexplored: usize,
}

impl<'g> ParBfs<'g> {
    /// A fresh engine over `g`: nothing visited, all distances
    /// [`UNREACHABLE`].
    pub fn new(g: &'g Graph) -> Self {
        let n = g.num_vertices();
        Self {
            g,
            visited: AtomicBits::new(n),
            dist: (0..n).map(|_| AtomicU32::new(UNREACHABLE)).collect(),
            unexplored: 2 * g.num_edges(),
        }
    }

    /// Whether `v` has been visited by any run so far.
    #[inline]
    pub fn is_visited(&self, v: u32) -> bool {
        self.visited.get(v)
    }

    /// Runs one BFS from `source` (which must not be visited yet),
    /// invoking `on_level(level, frontier)` for every level — including
    /// level 0, whose frontier is `[source]`. Frontiers are ascending
    /// vertex lists, identical for every worker count.
    ///
    /// # Panics
    /// Panics if `source` is out of range or already visited.
    pub fn run_with(&mut self, source: u32, mut on_level: impl FnMut(u32, &[u32])) -> RunStats {
        let n = self.g.num_vertices();
        assert!((source as usize) < n, "source out of range");
        assert!(self.visited.claim(source), "source already visited");
        self.dist[source as usize].store(0, Ordering::Relaxed);
        let mut frontier = vec![source];
        let mut level = 0u32;
        let mut visited_count = 0usize;
        let mut dense = false;
        loop {
            visited_count += frontier.len();
            on_level(level, &frontier);
            let frontier_edges: usize = frontier.iter().map(|&v| self.g.degree(v)).sum();
            // Direction heuristic with hysteresis (Beamer): grow dense
            // when the frontier's out-edges dominate what is left to
            // explore, fall back to sparse once the frontier has shrunk.
            if !dense && frontier_edges * ALPHA > self.unexplored {
                dense = true;
            } else if dense && frontier.len() * BETA < n {
                dense = false;
            }
            self.unexplored = self.unexplored.saturating_sub(frontier_edges);
            let next = if dense {
                pull_level(self.g, &self.visited, &self.dist, level)
            } else {
                push_level(
                    self.g,
                    &self.visited,
                    &self.dist,
                    &frontier,
                    frontier_edges,
                    level,
                )
            };
            if next.is_empty() {
                break;
            }
            level += 1;
            frontier = next;
        }
        RunStats {
            eccentricity: level,
            visited: visited_count,
        }
    }

    /// Consumes the engine, returning the distance array (vertices no
    /// run reached keep [`UNREACHABLE`]).
    pub fn into_distances(self) -> Vec<u32> {
        self.dist.into_iter().map(AtomicU32::into_inner).collect()
    }
}

/// Sparse push expansion of one level: claim unvisited neighbors of the
/// frontier. Per-worker buffers collect each chunk's claims; sorting the
/// concatenation yields the canonical ascending next frontier (the
/// claimed *set* is worker-count independent, so the sorted list is
/// too). Small levels run serially — same output, no spawns.
fn push_level(
    g: &Graph,
    visited: &AtomicBits,
    dist: &[AtomicU32],
    frontier: &[u32],
    frontier_edges: usize,
    level: u32,
) -> Vec<u32> {
    let expand = |out: &mut Vec<u32>, u: u32| {
        for &v in g.neighbors(u) {
            if !visited.get(v) && visited.claim(v) {
                dist[v as usize].store(level + 1, Ordering::Relaxed);
                out.push(v);
            }
        }
    };
    let mut next = if frontier_edges + frontier.len() < SERIAL_LEVEL_WORK {
        let mut out = Vec::new();
        for &u in frontier {
            expand(&mut out, u);
        }
        out
    } else {
        let nchunks = frontier.len().div_ceil(PUSH_CHUNK);
        let parts: Vec<Vec<u32>> = par_map_range(nchunks, |c| {
            let mut out = Vec::new();
            for &u in &frontier[c * PUSH_CHUNK..((c + 1) * PUSH_CHUNK).min(frontier.len())] {
                expand(&mut out, u);
            }
            out
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for mut p in parts {
            out.append(&mut p);
        }
        out
    };
    par_sort_unstable(&mut next);
    next
}

/// Dense pull expansion of one level: every unvisited vertex scans its
/// neighbors for one at the current level and bails at the first hit.
/// Workers own disjoint ascending vertex ranges, so the concatenated
/// discoveries arrive sorted and no claim can race.
fn pull_level(g: &Graph, visited: &AtomicBits, dist: &[AtomicU32], level: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let nchunks = n.div_ceil(PULL_CHUNK).max(1);
    let parts: Vec<Vec<u32>> = par_map_range(nchunks, |c| {
        let mut out = Vec::new();
        for v in (c * PULL_CHUNK) as u32..((c + 1) * PULL_CHUNK).min(n) as u32 {
            if visited.get(v) {
                continue;
            }
            // A neighbor at `level` was claimed by the *previous* level's
            // expansion, which this worker observes through the scope
            // join between levels; same-level claims store `level + 1`
            // and can never false-positive.
            for &w in g.neighbors(v) {
                if dist[w as usize].load(Ordering::Relaxed) == level {
                    visited.claim(v);
                    dist[v as usize].store(level + 1, Ordering::Relaxed);
                    out.push(v);
                    break;
                }
            }
        }
        out
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for mut p in parts {
        out.append(&mut p);
    }
    out
}

/// Parallel single-source BFS distances; unreachable vertices get
/// [`UNREACHABLE`]. Identical output to [`crate::bfs::bfs_distances`],
/// computed with the direction-optimizing parallel engine.
pub fn bfs_distances_parallel(g: &Graph, source: u32) -> Vec<u32> {
    assert!((source as usize) < g.num_vertices(), "source out of range");
    let _span = Span::enter("frontier-bfs");
    let mut bfs = ParBfs::new(g);
    bfs.run_with(source, |_, _| {});
    bfs.into_distances()
}

/// Frontier-parallel connected components with **canonical labels**
/// (each vertex labeled with the smallest ID in its component).
///
/// Start vertices are seeded in ascending ID order, so the seed of every
/// traversal is its component's minimum; the per-level frontiers label
/// in parallel. Byte-identical to [`crate::cc::components_bfs`] for
/// every worker count; [`crate::cc::components_label_prop`] (LPCC)
/// cross-checks it in the test suite.
pub fn components(g: &Graph) -> Vec<u32> {
    let _span = Span::enter("frontier-cc");
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut bfs = ParBfs::new(g);
    for start in 0..n as u32 {
        if bfs.is_visited(start) {
            continue;
        }
        bfs.run_with(start, |_, frontier| {
            if frontier.len() < SERIAL_LABEL_MIN {
                for &v in frontier {
                    labels[v as usize].store(start, Ordering::Relaxed);
                }
            } else {
                par_for_each_range(frontier.len(), |i| {
                    labels[frontier[i] as usize].store(start, Ordering::Relaxed)
                });
            }
        });
    }
    labels.into_iter().map(AtomicU32::into_inner).collect()
}

/// What one [`SweepScratch::sweep`] traversal found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepResult {
    /// Greatest finite BFS distance from the source (0 if isolated).
    pub eccentricity: u32,
    /// Vertices reached, including the source.
    pub reached: usize,
    /// `Σ_{v ≠ source reached} 1 / d(source, v)` — the unnormalized
    /// harmonic closeness contribution, accumulated per level (count of
    /// the level divided by its depth), a fixed summation order for any
    /// worker count.
    pub harmonic_sum: f64,
}

/// Reusable scratch for serial direction-optimizing BFS sweeps — the
/// per-source unit of the batched multi-source kernels.
///
/// One scratch per worker (allocated by `par_map_range_init`) turns the
/// eccentricity/diameter and closeness sweeps into pure compute:
/// no per-source allocation, and distance resets cost O(reached), not
/// O(V).
pub struct SweepScratch {
    dist: Vec<u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    touched: Vec<u32>,
}

impl SweepScratch {
    /// Scratch sized for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![UNREACHABLE; n],
            frontier: Vec::new(),
            next: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// One full BFS from `source`: eccentricity, reach count and the
    /// harmonic distance sum, in a single direction-optimizing pass.
    ///
    /// # Panics
    /// Panics if `source` is out of range or the scratch was sized for a
    /// different graph.
    pub fn sweep(&mut self, g: &Graph, source: u32) -> SweepResult {
        let n = g.num_vertices();
        assert_eq!(self.dist.len(), n, "scratch sized for a different graph");
        assert!((source as usize) < n, "source out of range");
        for &v in &self.touched {
            self.dist[v as usize] = UNREACHABLE;
        }
        self.touched.clear();
        self.frontier.clear();
        self.dist[source as usize] = 0;
        self.frontier.push(source);
        self.touched.push(source);
        let mut result = SweepResult {
            eccentricity: 0,
            reached: 1,
            harmonic_sum: 0.0,
        };
        let mut unexplored = 2 * g.num_edges();
        let mut dense = false;
        let mut level = 0u32;
        while !self.frontier.is_empty() {
            let frontier_edges: usize = self.frontier.iter().map(|&v| g.degree(v)).sum();
            if !dense && frontier_edges * ALPHA > unexplored {
                dense = true;
            } else if dense && self.frontier.len() * BETA < n {
                dense = false;
            }
            unexplored = unexplored.saturating_sub(frontier_edges);
            self.next.clear();
            if dense {
                // Pull: each unvisited vertex looks for a parent at the
                // current level and stops at the first one.
                for v in 0..n as u32 {
                    if self.dist[v as usize] != UNREACHABLE {
                        continue;
                    }
                    for &w in g.neighbors(v) {
                        if self.dist[w as usize] == level {
                            self.dist[v as usize] = level + 1;
                            self.next.push(v);
                            break;
                        }
                    }
                }
            } else {
                for &u in &self.frontier {
                    for &v in g.neighbors(u) {
                        if self.dist[v as usize] == UNREACHABLE {
                            self.dist[v as usize] = level + 1;
                            self.next.push(v);
                        }
                    }
                }
            }
            if self.next.is_empty() {
                break;
            }
            level += 1;
            result.eccentricity = level;
            result.reached += self.next.len();
            result.harmonic_sum += self.next.len() as f64 / level as f64;
            self.touched.extend_from_slice(&self.next);
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        result
    }
}

/// All eccentricities, source-parallel over reused per-worker scratch.
/// Identical to mapping [`crate::bfs::eccentricity`] over every vertex.
pub fn eccentricities(g: &Graph) -> Vec<u32> {
    let _span = Span::enter("frontier-sweeps");
    let n = g.num_vertices();
    par_map_range_init(
        n,
        || SweepScratch::new(n),
        |scratch, v| scratch.sweep(g, v as u32).eccentricity,
    )
}

/// Parallel s-diameter: the maximum finite eccentricity, computed
/// source-parallel over the sweep engine. Same value as
/// [`crate::bfs::diameter`] (the serial reference).
pub fn diameter(g: &Graph) -> u32 {
    eccentricities(g).into_iter().max().unwrap_or(0)
}

/// Parallel harmonic closeness: per-source sweeps with reused scratch,
/// normalized by `n - 1`. Values are bit-identical for every worker
/// count (each source's sum has a fixed per-level accumulation order).
pub fn harmonic_closeness(g: &Graph) -> Vec<f64> {
    let _span = Span::enter("frontier-sweeps");
    let n = g.num_vertices();
    if n <= 1 {
        return vec![0.0; n];
    }
    par_map_range_init(
        n,
        || SweepScratch::new(n),
        |scratch, v| scratch.sweep(g, v as u32).harmonic_sum / (n - 1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::cc;
    use hyperline_util::parallel::with_threads;

    /// Deterministic xorshift edge stream (graph has no rand dep in
    /// non-dev builds; tests keep it self-contained anyway).
    fn random_edges(seed: u64, n: usize, m: usize) -> Vec<(u32, u32)> {
        let mut x = seed | 1;
        (0..m)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % n as u64) as u32, ((x >> 20) % n as u64) as u32)
            })
            .collect()
    }

    #[test]
    fn parallel_distances_match_serial() {
        for (seed, n, m) in [(3u64, 40usize, 60usize), (7, 200, 900), (11, 64, 0)] {
            let g = Graph::from_edges(n, &random_edges(seed, n, m));
            for source in [0u32, (n / 2) as u32, (n - 1) as u32] {
                assert_eq!(
                    bfs_distances_parallel(&g, source),
                    bfs::bfs_distances(&g, source),
                    "seed={seed} source={source}"
                );
            }
        }
    }

    #[test]
    fn dense_graph_exercises_pull() {
        // A near-complete graph: the level-1 frontier's out-edges dwarf
        // what's unexplored, forcing the dense pull path in both the
        // parallel engine and the serial sweep.
        let n = 300usize;
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|a| (a + 1..n as u32).map(move |b| (a, b)))
            .filter(|&(a, b)| (a + b) % 7 != 0)
            .collect();
        let g = Graph::from_edges(n, &edges);
        assert_eq!(bfs_distances_parallel(&g, 5), bfs::bfs_distances(&g, 5));
        let mut scratch = SweepScratch::new(n);
        for v in [0u32, 5, 299] {
            assert_eq!(scratch.sweep(&g, v).eccentricity, bfs::eccentricity(&g, v));
        }
        assert_eq!(diameter(&g), bfs::diameter(&g));
    }

    #[test]
    fn components_match_serial_references() {
        for (seed, n, m) in [(5u64, 50usize, 30usize), (9, 400, 2000), (13, 10, 0)] {
            let g = Graph::from_edges(n, &random_edges(seed, n, m));
            let expect = cc::components_bfs(&g);
            assert_eq!(components(&g), expect, "seed={seed}");
            assert_eq!(cc::components_label_prop(&g), expect, "LPCC seed={seed}");
        }
        assert!(components(&Graph::from_edges(0, &[])).is_empty());
    }

    #[test]
    fn sweep_matches_per_source_serial_kernels() {
        let g = Graph::from_edges(9, &random_edges(21, 9, 14));
        let n = g.num_vertices();
        let mut scratch = SweepScratch::new(n);
        for v in 0..n as u32 {
            let r = scratch.sweep(&g, v);
            let dist = bfs::bfs_distances(&g, v);
            assert_eq!(r.eccentricity, bfs::eccentricity(&g, v), "v={v}");
            assert_eq!(
                r.reached,
                dist.iter().filter(|&&d| d != UNREACHABLE).count(),
                "v={v}"
            );
            let expect: f64 = dist
                .iter()
                .filter(|&&d| d != UNREACHABLE && d > 0)
                .map(|&d| 1.0 / d as f64)
                .sum();
            assert!((r.harmonic_sum - expect).abs() < 1e-12, "v={v}");
        }
    }

    #[test]
    fn closeness_and_diameter_match_definitions() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(diameter(&g), 4);
        assert_eq!(eccentricities(&g), vec![4, 3, 2, 3, 4]);
        let c = harmonic_closeness(&g);
        assert!((c[2] - (1.0 + 1.0 + 0.5 + 0.5) / 4.0).abs() < 1e-12);
        // Tiny graphs.
        assert!(harmonic_closeness(&Graph::from_edges(0, &[])).is_empty());
        assert_eq!(harmonic_closeness(&Graph::from_edges(1, &[])), vec![0.0]);
        assert_eq!(diameter(&Graph::from_edges(0, &[])), 0);
    }

    #[test]
    fn outputs_bit_identical_across_worker_counts() {
        let n = 500usize;
        let g = Graph::from_edges(n, &random_edges(17, n, 6_000));
        let reference = with_threads(1, || {
            (
                bfs_distances_parallel(&g, 3),
                components(&g),
                eccentricities(&g),
                harmonic_closeness(&g)
                    .into_iter()
                    .map(f64::to_bits)
                    .collect::<Vec<_>>(),
            )
        });
        for workers in [2usize, 3, 7, 16] {
            let got = with_threads(workers, || {
                (
                    bfs_distances_parallel(&g, 3),
                    components(&g),
                    eccentricities(&g),
                    harmonic_closeness(&g)
                        .into_iter()
                        .map(f64::to_bits)
                        .collect::<Vec<_>>(),
                )
            });
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn many_small_components() {
        // 300 disjoint triangles: the engine must stay cheap per
        // component and keep canonical labels.
        let edges: Vec<(u32, u32)> = (0..300u32)
            .flat_map(|t| {
                let b = 3 * t;
                [(b, b + 1), (b + 1, b + 2), (b, b + 2)]
            })
            .collect();
        let g = Graph::from_edges(900, &edges);
        let labels = components(&g);
        assert_eq!(labels, cc::components_bfs(&g));
        assert_eq!(cc::component_count(&labels), 300);
        assert_eq!(diameter(&g), 1);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn parallel_distances_bounds_checked() {
        bfs_distances_parallel(&Graph::from_edges(2, &[(0, 1)]), 5);
    }

    #[test]
    fn run_stats_report_reach() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2)]);
        let mut bfs = ParBfs::new(&g);
        let stats = bfs.run_with(0, |_, _| {});
        assert_eq!(stats.eccentricity, 2);
        assert_eq!(stats.visited, 3);
        assert!(bfs.is_visited(2));
        assert!(!bfs.is_visited(3));
        let stats = bfs.run_with(3, |_, _| {});
        assert_eq!(stats.visited, 1);
        let d = bfs.into_distances();
        assert_eq!(d, vec![0, 1, 2, 0, UNREACHABLE]);
    }
}
