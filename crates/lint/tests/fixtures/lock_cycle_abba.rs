// Fixture: ABBA lock inversion — one path takes a then b directly, the
// other takes b and then reaches a through a helper call. HL008 must
// report the Pair.a->Pair.b->Pair.a cycle (interprocedural edge
// included).
use crate::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    fn both_forward(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        0
    }

    fn both_backward(&self) -> u32 {
        let gb = self.b.lock();
        self.grab_a()
    }

    fn grab_a(&self) -> u32 {
        let ga = self.a.lock();
        1
    }
}
