//! The one `unsafe` corner of the workspace: raw Linux syscall
//! bindings for the evented transport core (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `accept4`, `fcntl`, `pipe2`).
//!
//! Everything outside this file is safe Rust. This module wraps each
//! syscall in a narrow, owned-resource API — [`Epoll`], [`Waker`],
//! [`accept_nonblocking`], [`set_nonblocking`] — so callers never touch
//! a raw fd they do not own. The policy is enforced by hyperline-lint:
//! HL003 confines `unsafe` to this file, and HL010 requires every
//! `unsafe` block to carry an adjacent `// safety:` justification.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::time::Duration;

// Raw Linux syscall bindings, resolved from libc (which std already
// links). Signatures mirror the man pages; every call site below checks
// the return value and surfaces `io::Error::last_os_error()`.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn accept4(sockfd: i32, addr: *mut u8, addrlen: *mut u32, flags: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn pipe2(pipefd: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// Readable (`EPOLLIN`).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never subscribed.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`) — always reported, never subscribed.
pub(crate) const EPOLLHUP: u32 = 0x010;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const SOCK_NONBLOCK: i32 = 0x800;
const SOCK_CLOEXEC: i32 = 0x80000;
const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0x800;
const O_CLOEXEC: i32 = 0x80000;

/// One `struct epoll_event`: an interest/readiness mask plus the u64
/// token the loop uses to find the connection. Packed on x86_64 to
/// match the kernel ABI (the one architecture where the kernel struct
/// is unaligned).
#[derive(Clone, Copy)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub(crate) struct EpollEvent {
    /// `EPOLL*` bit mask.
    pub(crate) events: u32,
    /// Caller-chosen token, returned verbatim on readiness.
    pub(crate) data: u64,
}

impl EpollEvent {
    /// An empty slot for the wait buffer.
    pub(crate) fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }
}

/// An owned epoll instance. Dropping it closes the fd; registered fds
/// are not touched (their owners close them).
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// A fresh close-on-exec epoll instance.
    pub(crate) fn new() -> io::Result<Epoll> {
        // safety: epoll_create1 takes no pointers; a negative return is
        // checked and surfaced as the OS error before use.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // safety: `event` is a live stack value for the duration of the
        // call and the kernel only reads it (DEL ignores it entirely);
        // both fds are open — self.fd for self's lifetime, `fd` owned
        // by the caller.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with interest `events`.
    pub(crate) fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Replaces `fd`'s interest mask.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Deregisters `fd`. Must run before the last copy of the fd closes
    /// when a duplicate of the open file description outlives it (the
    /// drain tracker holds one), since the kernel only auto-removes an
    /// entry once **every** fd of the description is gone.
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for readiness, filling `events`; returns how many fired.
    /// `None` waits forever. `EINTR` retries with the full timeout —
    /// callers re-derive their deadlines every iteration anyway.
    pub(crate) fn wait(
        &self,
        events: &mut [EpollEvent],
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a sub-millisecond deadline does not spin.
            Some(t) => t.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
        };
        loop {
            // safety: `events` points at `len` writable EpollEvent
            // slots owned by the caller for the whole call; the kernel
            // writes at most `maxevents` of them and the (checked,
            // non-negative) return bounds how many we read back.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // safety: self.fd is open and exclusively owned by this value;
        // nothing uses it after drop.
        let _ = unsafe { close(self.fd) };
    }
}

/// Accepts one pending connection without blocking: `Ok(None)` when the
/// backlog is empty. The returned stream is already nonblocking and
/// close-on-exec (`accept4` flags), so there is no racy post-accept
/// `fcntl` window.
pub(crate) fn accept_nonblocking(listener: &TcpListener) -> io::Result<Option<TcpStream>> {
    // safety: null addr/addrlen asks the kernel not to report the peer
    // address (documented accept4 contract), so no out-pointers are
    // written; the listener fd is open for the duration of the call.
    let fd = unsafe {
        accept4(
            listener.as_raw_fd(),
            std::ptr::null_mut(),
            std::ptr::null_mut(),
            SOCK_NONBLOCK | SOCK_CLOEXEC,
        )
    };
    if fd >= 0 {
        // safety: `fd` was just returned by accept4 and checked valid;
        // it is owned by no other value, so from_raw_fd takes true
        // (sole) ownership.
        return Ok(Some(unsafe { TcpStream::from_raw_fd(fd) }));
    }
    let err = io::Error::last_os_error();
    match err.kind() {
        // Empty backlog, or the pending connection was reset before we
        // got to it — both mean "nothing to accept right now".
        io::ErrorKind::WouldBlock
        | io::ErrorKind::Interrupted
        | io::ErrorKind::ConnectionAborted => Ok(None),
        _ => Err(err),
    }
}

/// Switches an fd to nonblocking mode via `fcntl` (used for the
/// listener, which `TcpListener::bind` hands us in blocking mode).
pub(crate) fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // safety: F_GETFL takes no pointer argument; the fd is owned by the
    // caller and open for the duration of the call.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if flags & O_NONBLOCK != 0 {
        return Ok(());
    }
    // safety: F_SETFL with an integer flag word — no pointers involved.
    let rc = unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A self-pipe that makes `epoll_wait` return on demand: worker threads
/// (and [`crate::server::ServerHandle::shutdown`]) call [`Waker::wake`]
/// after posting a completion, the loop registers [`Waker::read_fd`]
/// for `EPOLLIN` and [`Waker::drain`]s it on wakeup. Both ends are
/// nonblocking, so a full pipe never blocks a waker — the loop is
/// already due to wake in that case.
pub(crate) struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// A fresh nonblocking, close-on-exec self-pipe.
    pub(crate) fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        // safety: pipe2 writes exactly two fds into the provided
        // 2-element array; the (checked) return says whether it did.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The readable end, for epoll registration.
    pub(crate) fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Nudges the event loop awake. Never blocks: a full pipe (EAGAIN)
    /// already guarantees a pending wakeup.
    pub(crate) fn wake(&self) {
        let byte = 1u8;
        // safety: writes one byte from a live stack variable to our own
        // open write end; errors (EAGAIN on a full pipe) are ignored by
        // design.
        let _ = unsafe { write(self.write_fd, &byte, 1) };
    }

    /// Swallows every buffered wakeup byte (level-triggered hygiene).
    pub(crate) fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            // safety: reads into a live stack buffer of the stated
            // length from our own open read end; the return value is
            // checked before any of the buffer is trusted.
            let n = unsafe { read(self.read_fd, sink.as_mut_ptr(), sink.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // safety: both fds are open and exclusively owned by this
        // value; nothing uses them after drop.
        let _ = unsafe { close(self.read_fd) };
        // safety: see above — the write end is equally ours.
        let _ = unsafe { close(self.write_fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpListener;

    #[test]
    fn waker_wakes_epoll_and_drains() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll.add(waker.read_fd(), 7, EPOLLIN).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing pending: a zero timeout returns empty-handed.
        let n = epoll.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);
        waker.wake();
        waker.wake();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        // Copy packed fields to locals: a reference into the packed
        // struct would be unaligned.
        let (data, mask) = (events[0].data, events[0].events);
        assert_eq!(data, 7);
        assert_ne!(mask & EPOLLIN, 0);
        waker.drain();
        // Drained: readable no more.
        let n = epoll.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn accept_nonblocking_accepts_and_reports_empty_backlog() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        set_nonblocking(listener.as_raw_fd()).unwrap();
        assert!(accept_nonblocking(&listener).unwrap().is_none());
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        // The handshake completes in the kernel; poll briefly for it.
        let mut accepted = None;
        for _ in 0..200 {
            if let Some(stream) = accept_nonblocking(&listener).unwrap() {
                accepted = Some(stream);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let accepted = accepted.expect("connection never surfaced");
        client.write_all(b"ping").unwrap();
        // The accepted socket is nonblocking and readable once bytes land.
        let epoll = Epoll::new().unwrap();
        epoll.add(accepted.as_raw_fd(), 1, EPOLLIN).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        epoll.delete(accepted.as_raw_fd()).unwrap();
    }
}
