//! Figure 9: weak scaling of Algorithm 2 on activeDNS.
//!
//! Doubles the dataset size (DNS chunks 4 → 128) together with the worker
//! count (1 → 32), for s ∈ {2, 4, 8}, using blocked distribution — the
//! paper's weak-scaling setup. Flat lines mean perfect weak scaling;
//! larger s runs faster (degree pruning drops more work).
//!
//! `cargo run -p hyperline-bench --release --bin fig9_weak_scaling`
//! Options: `--seed=42 --base-chunks=4`

use hyperline_bench::{arg, print_header, with_pool};
use hyperline_gen::dns_chunks;
use hyperline_slinegraph::{run_pipeline, Algorithm, Partition, PipelineConfig, Strategy};
use hyperline_util::table::Table;
use hyperline_util::Timer;

fn main() {
    print_header("Figure 9: weak scaling of Algorithm 2 on activeDNS (blocked)");
    let seed: u64 = arg("seed", 42);
    let base_chunks: usize = arg("base-chunks", 4);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let steps: Vec<(usize, usize)> = (0..6)
        .map(|i| (base_chunks << i, 1usize << i))
        .filter(|&(_, t)| t <= max_threads.max(1) * 2)
        .collect();
    let s_values = [8u32, 4, 2];

    let mut table = Table::new(
        std::iter::once("dataset (threads)".to_string())
            .chain(s_values.iter().map(|s| format!("s={s}"))),
    );
    for &(chunks, threads) in &steps {
        let h = dns_chunks(chunks, seed);
        let mut cells = vec![format!("dns_{chunks} ({threads}t)")];
        for &s in &s_values {
            let ms = with_pool(threads, || {
                let strategy = Strategy::default()
                    .with_partition(Partition::Blocked)
                    .with_workers(threads);
                let config = PipelineConfig {
                    s,
                    algorithm: Algorithm::Algo2,
                    strategy,
                    compute_toplexes: false,
                    squeeze: false,
                    run_components: false,
                };
                let t = Timer::start();
                let run = run_pipeline(&h, &config);
                std::hint::black_box(run.line_graph.num_edges());
                t.seconds() * 1e3
            });
            cells.push(format!("{ms:.1}ms"));
        }
        table.row(cells);
    }
    table.print();
    println!("\n(input size and threads double together; flat columns = perfect weak scaling,");
    println!(" larger s = faster runs thanks to degree-based pruning)");
}
