//! Criterion micro-benchmark: the four s-line-graph constructions.
//!
//! Naive all-pairs vs Algorithm 1 (set intersections) vs Algorithm 2
//! (hashmap counting) vs SpGEMM+Filter+Upper, on a mid-size community
//! hypergraph at s ∈ {2, 8}. The expected ordering is the paper's:
//! Algorithm 2 < Algorithm 1 < SpGEMM < naive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperline_gen::CommunityModel;
use hyperline_hypergraph::Hypergraph;
use hyperline_slinegraph::{
    algo1_slinegraph, algo2_slinegraph, naive_slinegraph, spgemm_slinegraph, Strategy,
};
use std::hint::black_box;

fn bench_input() -> Hypergraph {
    CommunityModel {
        num_vertices: 3_000,
        num_edges: 6_000,
        edge_size_min: 2,
        edge_size_max: 120,
        edge_size_exponent: 2.0,
        num_communities: 120,
        core_size: 40,
        affinity: 0.7,
        community_skew: 0.8,
        vertex_skew: 0.9,
    }
    .generate(1)
}

fn algo_comparison(c: &mut Criterion) {
    let h = bench_input();
    let strategy = Strategy::default();
    let mut group = c.benchmark_group("algo_comparison");
    group.sample_size(10);
    for s in [2u32, 8] {
        group.bench_with_input(BenchmarkId::new("algo2", s), &s, |b, &s| {
            b.iter(|| black_box(algo2_slinegraph(&h, s, &strategy).edges.len()))
        });
        group.bench_with_input(BenchmarkId::new("algo1", s), &s, |b, &s| {
            b.iter(|| black_box(algo1_slinegraph(&h, s, &strategy).edges.len()))
        });
        group.bench_with_input(BenchmarkId::new("spgemm_upper", s), &s, |b, &s| {
            b.iter(|| black_box(spgemm_slinegraph(&h, s, true).edges.len()))
        });
        group.bench_with_input(BenchmarkId::new("naive", s), &s, |b, &s| {
            b.iter(|| black_box(naive_slinegraph(&h, s, &strategy).edges.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, algo_comparison);
criterion_main!(benches);
