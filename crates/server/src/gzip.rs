//! A std-only streaming gzip encoder (RFC 1951/1952), plus a strict
//! decoder for tests and benchmarks.
//!
//! The server negotiates `Accept-Encoding: gzip` for its streamed
//! responses (large edge lists render straight from cached artifacts),
//! so the encoder is a [`std::io::Write`] adapter with **bounded
//! buffering**: input is compressed in independent 32 KiB blocks using
//! LZ77 matching over a hash-chain table (greedy with one-position lazy
//! evaluation, like zlib's fast levels). Each block is then emitted in
//! whichever DEFLATE representation is smallest for its actual symbol
//! frequencies — **dynamic Huffman** (`BTYPE=10`, the usual winner on
//! JSON, whose digit-heavy literals cost ~4 bits instead of fixed's 8),
//! fixed Huffman (`BTYPE=01`), or stored (`BTYPE=00`, incompressible
//! input). Everything is hand-rolled on `std` — the same vendoring
//! philosophy as the in-tree `rand`/`proptest`/`criterion` stand-ins.
//!
//! Layering: the response writer stacks `json → GzipWriter →
//! ChunkedWriter → socket`, so compressed bytes are chunk-framed
//! (`Transfer-Encoding` is applied over `Content-Encoding`).

use std::io::{self, Write};
use std::time::{Duration, Instant};

/// Uncompressed bytes buffered per DEFLATE block. 32 KiB keeps every
/// match distance within the format's window without tracking a sliding
/// window across blocks, which is what bounds the encoder's memory.
pub const BLOCK_BYTES: usize = 32 * 1024;

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 14;
const HASH_SIZE: usize = 1 << HASH_BITS;
const NO_POS: u32 = u32::MAX;

/// How hard the LZ77 stage works. `Default` is the archival setting;
/// `Fast` trades ~10% ratio for several-fold encode throughput, which is
/// the right trade on streamed responses where encode time is
/// first-byte latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Effort {
    /// Greedy matching, short hash chains, early exit on good-enough
    /// matches, and skip-ahead through incompressible runs — the zlib
    /// "fast level" playbook.
    Fast,
    /// Lazy matching over deep hash chains (the original tuning).
    #[default]
    Default,
}

/// Match-search knobs derived from an [`Effort`].
struct MatchParams {
    /// How many previous candidate positions a match search visits.
    chain_depth: usize,
    /// Evaluate position `i + 1` before committing a match at `i`.
    lazy: bool,
    /// A match at least this long is accepted without searching deeper.
    good_len: usize,
    /// After this many consecutive literal misses, start stepping over
    /// input (emitting skipped bytes as literals); `usize::MAX` disables.
    skip_after: usize,
}

impl Effort {
    fn params(self) -> MatchParams {
        match self {
            Effort::Fast => MatchParams {
                chain_depth: 16,
                lazy: false,
                good_len: 64,
                skip_after: 64,
            },
            Effort::Default => MatchParams {
                chain_depth: 128,
                lazy: true,
                good_len: MAX_MATCH,
                skip_after: usize::MAX,
            },
        }
    }
}

/// Literal/length alphabet size (symbols 286/287 are reserved).
const NUM_LITLEN: usize = 286;
/// Distance alphabet size.
const NUM_DIST: usize = 30;
/// Code-length alphabet size (for the dynamic-block header).
const NUM_CL: usize = 19;
/// Longest allowed litlen/dist code.
const MAX_CODE_BITS: usize = 15;
/// Longest allowed code-length code.
const MAX_CL_BITS: usize = 7;
/// Transmission order of code-length code lengths (RFC 1951 §3.2.7).
const CL_ORDER: [usize; NUM_CL] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// `(base length, extra bits)` for length codes 257..=285 (RFC 1951 §3.2.5).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// `(base distance, extra bits)` for distance codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Bit-level output
// ---------------------------------------------------------------------

/// LSB-first bit packer feeding an inner [`Write`] through a small
/// fixed-size byte buffer (DEFLATE packs bits least-significant-first;
/// Huffman codes go in bit-reversed).
struct BitWriter<W: Write> {
    inner: W,
    bitbuf: u64,
    nbits: u32,
    out: Vec<u8>,
}

impl<W: Write> BitWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            bitbuf: 0,
            nbits: 0,
            out: Vec::with_capacity(4096),
        }
    }

    /// Appends `count` bits of `value`, LSB first.
    fn write_bits(&mut self, value: u32, count: u32) -> io::Result<()> {
        debug_assert!(count <= 16 && u64::from(value) < (1u64 << count));
        self.bitbuf |= u64::from(value) << self.nbits;
        self.nbits += count;
        while self.nbits >= 8 {
            self.out.push((self.bitbuf & 0xff) as u8);
            self.bitbuf >>= 8;
            self.nbits -= 8;
        }
        if self.out.len() >= 4096 - 8 {
            self.inner.write_all(&self.out)?;
            self.out.clear();
        }
        Ok(())
    }

    /// Appends a Huffman code, which the format stores MSB-first.
    fn write_code(&mut self, code: u32, count: u32) -> io::Result<()> {
        self.write_bits(code.reverse_bits() >> (32 - count), count)
    }

    /// Pads the current byte with zero bits.
    fn align_byte(&mut self) -> io::Result<()> {
        if self.nbits > 0 {
            self.write_bits(0, 8 - self.nbits)?;
        }
        Ok(())
    }

    /// Writes raw bytes (caller must be byte-aligned).
    fn write_bytes(&mut self, data: &[u8]) -> io::Result<()> {
        debug_assert_eq!(self.nbits, 0);
        self.inner.write_all(&self.out)?;
        self.out.clear();
        self.inner.write_all(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.write_all(&self.out)?;
        self.out.clear();
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------
// LZ77 tokenization
// ---------------------------------------------------------------------

/// One LZ77 token, packed: bit 23 set = match with `len - 3` in bits
/// 15..23 and `dist - 1` in bits 0..15; otherwise a literal byte.
type Token = u32;
const MATCH_FLAG: u32 = 1 << 23;

fn literal_token(byte: u8) -> Token {
    u32::from(byte)
}

fn match_token(len: usize, dist: usize) -> Token {
    MATCH_FLAG | (((len - MIN_MATCH) as u32) << 15) | ((dist - 1) as u32)
}

fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | (u32::from(data[i + 1]) << 8) | (u32::from(data[i + 2]) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// The litlen symbol + extra bits of a match length.
fn length_code(len: usize) -> (usize, u32, u32) {
    let li = LENGTH_BASE
        .iter()
        .rposition(|&b| usize::from(b) <= len)
        .expect("length >= 3");
    (
        257 + li,
        (len - usize::from(LENGTH_BASE[li])) as u32,
        LENGTH_EXTRA[li],
    )
}

/// The distance symbol + extra bits of a match distance.
fn dist_code(dist: usize) -> (usize, u32, u32) {
    let di = DIST_BASE
        .iter()
        .rposition(|&b| usize::from(b) <= dist)
        .expect("distance >= 1");
    (
        di,
        (dist - usize::from(DIST_BASE[di])) as u32,
        DIST_EXTRA[di],
    )
}

/// Greedy LZ77 with optional one-position lazy evaluation over a
/// hash-chain table, confined to `data` (so every distance fits the
/// window). The [`MatchParams`] decide chain depth, laziness and
/// skip-ahead; every setting produces a valid token stream — effort only
/// moves the ratio/throughput trade.
fn tokenize(data: &[u8], p: &MatchParams) -> Vec<Token> {
    fn insert(data: &[u8], head: &mut [u32; HASH_SIZE], prev: &mut [u32], i: usize) {
        let h = hash3(data, i);
        prev[i] = head[h];
        head[h] = i as u32;
    }

    /// Longest match for position `i` among the hash chain's candidates.
    fn find_match(
        data: &[u8],
        head: &[u32; HASH_SIZE],
        prev: &[u32],
        i: usize,
        p: &MatchParams,
    ) -> (usize, usize) {
        let (mut best_len, mut best_dist) = (0usize, 0usize);
        if i + MIN_MATCH > data.len() {
            return (0, 0);
        }
        let limit = (data.len() - i).min(MAX_MATCH);
        let mut cand = head[hash3(data, i)];
        let mut depth = p.chain_depth;
        while cand != NO_POS && depth > 0 {
            let c = cand as usize;
            let mut l = 0;
            while l < limit && data[c + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - c;
                if l == limit || l >= p.good_len {
                    break;
                }
            }
            cand = prev[c];
            depth -= 1;
        }
        (best_len, best_dist)
    }

    let mut tokens = Vec::with_capacity(data.len() / 3 + 16);
    let mut head = [NO_POS; HASH_SIZE];
    let mut prev = vec![NO_POS; data.len()];
    // Last position with MIN_MATCH bytes left to hash (exclusive).
    let hashable = data.len().saturating_sub(MIN_MATCH - 1);
    let mut i = 0;
    // Consecutive positions that produced no match — drives skip-ahead.
    let mut miss_run = 0usize;
    while i < data.len() {
        let (mut best_len, mut best_dist) = find_match(data, &head, &prev, i, p);
        if best_len >= MIN_MATCH {
            miss_run = 0;
            // Lazy evaluation: when the next position matches longer,
            // emit this byte as a literal and take the later match.
            // (The greedy fast path skips the second search entirely.)
            if p.lazy && best_len < p.good_len && i < hashable {
                insert(data, &mut head, &mut prev, i);
                let (next_len, next_dist) = find_match(data, &head, &prev, i + 1, p);
                if next_len > best_len {
                    tokens.push(literal_token(data[i]));
                    i += 1;
                    (best_len, best_dist) = (next_len, next_dist);
                    if i < hashable {
                        insert(data, &mut head, &mut prev, i);
                    }
                }
            } else if i < hashable {
                insert(data, &mut head, &mut prev, i);
            }
            // Emit the match; its head is hashed above, chain the body
            // (cheap, and later matches can anchor inside it).
            tokens.push(match_token(best_len, best_dist));
            let next = i + best_len;
            i += 1;
            while i < next.min(hashable) {
                insert(data, &mut head, &mut prev, i);
                i += 1;
            }
            i = next;
        } else {
            tokens.push(literal_token(data[i]));
            if i < hashable {
                insert(data, &mut head, &mut prev, i);
            }
            i += 1;
            miss_run += 1;
            if miss_run >= p.skip_after {
                // Incompressible run: step over input, emitting skipped
                // bytes as literals without match searches. The step
                // grows with the run (capped), zlib/libdeflate-style.
                let step = ((miss_run - p.skip_after) >> 5).min(7);
                for _ in 0..step {
                    if i >= data.len() {
                        break;
                    }
                    tokens.push(literal_token(data[i]));
                    if i < hashable {
                        insert(data, &mut head, &mut prev, i);
                    }
                    i += 1;
                }
            }
        }
    }
    tokens
}

// ---------------------------------------------------------------------
// Huffman code construction
// ---------------------------------------------------------------------

/// Computes length-limited Huffman code lengths for `freqs` (zlib's
/// `gen_bitlen` overflow redistribution keeps every length ≤ `max_bits`
/// while preserving a complete Kraft sum). A lone used symbol gets
/// length 1 — the one-code special case DEFLATE permits.
fn huffman_lengths(freqs: &[u32], max_bits: usize) -> Vec<u8> {
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let mut used: Vec<usize> = (0..n).filter(|&s| freqs[s] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Build the Huffman tree bottom-up over (freq, node) pairs; ties
    // break on node index so output is deterministic.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> = used
        .iter()
        .map(|&s| std::cmp::Reverse((u64::from(freqs[s]), s)))
        .collect();
    let mut parent = vec![usize::MAX; n + used.len()];
    let mut next_node = n;
    while heap.len() > 1 {
        let std::cmp::Reverse((fa, a)) = heap.pop().unwrap();
        let std::cmp::Reverse((fb, b)) = heap.pop().unwrap();
        parent[a] = next_node;
        parent[b] = next_node;
        heap.push(std::cmp::Reverse((fa + fb, next_node)));
        next_node += 1;
    }
    let root = heap.pop().unwrap().0 .1;
    // Leaf depths by walking parent links (tree height ≤ used.len());
    // the count array spans tree depths *and* the 1..=max_bits range the
    // redistribution and assignment loops index.
    let mut bl_count = vec![0usize; used.len().max(max_bits) + 1];
    for &sym in &used {
        let mut depth = 0;
        let mut node = sym;
        while node != root {
            node = parent[node];
            depth += 1;
        }
        bl_count[depth.min(max_bits)] += 1;
    }
    // Clamping over-deep leaves to max_bits overfills the code: the
    // Kraft sum K = Σ count[bits]·2^(max_bits − bits) exceeds 2^max_bits
    // by an integer excess. Each redistribution step (zlib gen_bitlen)
    // splits a leaf above the limit into two children one level down and
    // adopts one max-length leaf as the sibling, which frees exactly one
    // unit — so driving the measured excess to zero restores a complete
    // code.
    let kraft: u64 = (1..=max_bits)
        .map(|bits| (bl_count[bits] as u64) << (max_bits - bits))
        .sum();
    let mut excess = kraft - (1u64 << max_bits);
    while excess > 0 {
        let mut bits = max_bits - 1;
        while bl_count[bits] == 0 {
            bits -= 1;
        }
        bl_count[bits] -= 1;
        bl_count[bits + 1] += 2;
        bl_count[max_bits] -= 1;
        excess -= 1;
    }
    // Reassign the length multiset: least frequent symbols get the
    // longest codes (stable on symbol index for determinism).
    used.sort_by_key(|&s| (freqs[s], s));
    let mut slot = 0;
    for bits in (1..=max_bits).rev() {
        for _ in 0..bl_count[bits] {
            lengths[used[slot]] = bits as u8;
            slot += 1;
        }
    }
    debug_assert_eq!(slot, used.len());
    debug_assert_eq!(
        used.iter()
            .map(|&s| 1u64 << (max_bits - lengths[s] as usize))
            .sum::<u64>(),
        1u64 << max_bits,
        "code must be complete"
    );
    lengths
}

/// Canonical codes (MSB-first) for a length assignment.
fn canonical_codes(lengths: &[u8]) -> Vec<u16> {
    let mut bl_count = [0u16; MAX_CODE_BITS + 1];
    for &l in lengths {
        bl_count[usize::from(l)] += 1;
    }
    bl_count[0] = 0;
    let mut next_code = [0u16; MAX_CODE_BITS + 2];
    let mut code = 0u16;
    for bits in 1..=MAX_CODE_BITS {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[usize::from(l)];
                next_code[usize::from(l)] += 1;
                c
            }
        })
        .collect()
}

/// The fixed litlen code lengths (RFC 1951 §3.2.6).
fn fixed_litlen_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 288];
    lengths[144..256].fill(9);
    lengths[256..280].fill(7);
    lengths
}

// ---------------------------------------------------------------------
// Dynamic-block header (code-length RLE)
// ---------------------------------------------------------------------

/// One RLE item of the code-length stream: `(symbol, extra value,
/// extra bits)`.
type ClItem = (u8, u32, u32);

/// Run-length encodes one lengths array with the code-length alphabet
/// (16 = repeat previous 3–6, 17 = zeros 3–10, 18 = zeros 11–138),
/// accumulating symbol frequencies for the CL Huffman code.
fn rle_lengths(lengths: &[u8], items: &mut Vec<ClItem>, cl_freqs: &mut [u32; NUM_CL]) {
    let mut i = 0;
    while i < lengths.len() {
        let run_start = i;
        let value = lengths[i];
        while i < lengths.len() && lengths[i] == value {
            i += 1;
        }
        let mut run = i - run_start;
        if value == 0 {
            while run >= 11 {
                let take = run.min(138);
                items.push((18, (take - 11) as u32, 7));
                cl_freqs[18] += 1;
                run -= take;
            }
            if run >= 3 {
                items.push((17, (run - 3) as u32, 3));
                cl_freqs[17] += 1;
                run = 0;
            }
        } else {
            // First occurrence is always spelled out; repeats pack.
            items.push((value, 0, 0));
            cl_freqs[usize::from(value)] += 1;
            run -= 1;
            while run >= 3 {
                let take = run.min(6);
                items.push((16, (take - 3) as u32, 2));
                cl_freqs[16] += 1;
                run -= take;
            }
        }
        for _ in 0..run {
            items.push((value, 0, 0));
            cl_freqs[usize::from(value)] += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Block emission
// ---------------------------------------------------------------------

/// Everything needed to emit one block's tokens under some code pair.
struct CodePair {
    litlen_lengths: Vec<u8>,
    litlen_codes: Vec<u16>,
    dist_lengths: Vec<u8>,
    dist_codes: Vec<u16>,
}

/// Cost in bits of emitting `freqs`-distributed symbols under `lengths`
/// (plus the per-symbol extra bits in `extra`).
fn symbol_cost(freqs: &[u32], lengths: &[u8]) -> u64 {
    freqs
        .iter()
        .zip(lengths)
        .map(|(&f, &l)| u64::from(f) * u64::from(l))
        .sum()
}

/// Compresses one block (`data.len() <= BLOCK_BYTES`), choosing the
/// smallest of stored / fixed / dynamic representations.
fn deflate_block<W: Write>(
    bits: &mut BitWriter<W>,
    data: &[u8],
    last: bool,
    effort: Effort,
) -> io::Result<()> {
    debug_assert!(data.len() <= BLOCK_BYTES);
    let tokens = tokenize(data, &effort.params());

    // Symbol frequencies (extra bits counted separately since they are
    // representation-independent).
    let mut litlen_freqs = vec![0u32; NUM_LITLEN];
    let mut dist_freqs = vec![0u32; NUM_DIST];
    let mut extra_cost = 0u64;
    for &t in &tokens {
        if t & MATCH_FLAG == 0 {
            litlen_freqs[(t & 0xff) as usize] += 1;
        } else {
            let len = ((t >> 15) & 0xff) as usize + MIN_MATCH;
            let dist = (t & 0x7fff) as usize + 1;
            let (ls, _, le) = length_code(len);
            let (ds, _, de) = dist_code(dist);
            litlen_freqs[ls] += 1;
            dist_freqs[ds] += 1;
            extra_cost += u64::from(le) + u64::from(de);
        }
    }
    litlen_freqs[256] += 1; // end-of-block

    // Dynamic code construction + header cost.
    let dyn_litlen = huffman_lengths(&litlen_freqs, MAX_CODE_BITS);
    let dyn_dist = huffman_lengths(&dist_freqs, MAX_CODE_BITS);
    let hlit = dyn_litlen
        .iter()
        .rposition(|&l| l > 0)
        .unwrap_or(0)
        .max(256)
        + 1;
    let hdist = dyn_dist.iter().rposition(|&l| l > 0).unwrap_or(0) + 1;
    let mut cl_items: Vec<ClItem> = Vec::new();
    let mut cl_freqs = [0u32; NUM_CL];
    rle_lengths(&dyn_litlen[..hlit], &mut cl_items, &mut cl_freqs);
    rle_lengths(&dyn_dist[..hdist], &mut cl_items, &mut cl_freqs);
    let cl_lengths = huffman_lengths(&cl_freqs, MAX_CL_BITS);
    let cl_codes = canonical_codes(&cl_lengths);
    let hclen = CL_ORDER
        .iter()
        .rposition(|&s| cl_lengths[s] > 0)
        .unwrap_or(3)
        .max(3)
        + 1;
    let header_cost = 5
        + 5
        + 4
        + 3 * hclen as u64
        + cl_items
            .iter()
            .map(|&(s, _, eb)| u64::from(cl_lengths[usize::from(s)]) + u64::from(eb))
            .sum::<u64>();
    let dynamic_cost =
        header_cost + symbol_cost(&litlen_freqs, &dyn_litlen) + symbol_cost(&dist_freqs, &dyn_dist);

    // Fixed + stored costs for comparison (all exclude the 3 header bits
    // common to every type; stored adds its byte-alignment padding).
    let fixed_litlen = fixed_litlen_lengths();
    let fixed_cost = symbol_cost(&litlen_freqs, &fixed_litlen)
        + dist_freqs.iter().map(|&f| u64::from(f) * 5).sum::<u64>();
    let stored_cost = 7 + 32 + 8 * data.len() as u64;

    bits.write_bits(u32::from(last), 1)?; // BFINAL
    if stored_cost < (dynamic_cost + extra_cost).min(fixed_cost + extra_cost) {
        bits.write_bits(0b00, 2)?;
        bits.align_byte()?;
        let len = data.len() as u16;
        bits.write_bytes(&len.to_le_bytes())?;
        bits.write_bytes(&(!len).to_le_bytes())?;
        bits.write_bytes(data)?;
        return Ok(());
    }

    let pair = if dynamic_cost < fixed_cost {
        bits.write_bits(0b10, 2)?;
        bits.write_bits((hlit - 257) as u32, 5)?;
        bits.write_bits((hdist - 1) as u32, 5)?;
        bits.write_bits((hclen - 4) as u32, 4)?;
        for &s in &CL_ORDER[..hclen] {
            bits.write_bits(u32::from(cl_lengths[s]), 3)?;
        }
        for &(s, extra, extra_bits) in &cl_items {
            let s = usize::from(s);
            bits.write_code(u32::from(cl_codes[s]), u32::from(cl_lengths[s]))?;
            if extra_bits > 0 {
                bits.write_bits(extra, extra_bits)?;
            }
        }
        let litlen_codes = canonical_codes(&dyn_litlen);
        let dist_codes = canonical_codes(&dyn_dist);
        CodePair {
            litlen_lengths: dyn_litlen,
            litlen_codes,
            dist_lengths: dyn_dist,
            dist_codes,
        }
    } else {
        bits.write_bits(0b01, 2)?;
        let litlen_codes = canonical_codes(&fixed_litlen);
        let dist_lengths = vec![5u8; 32];
        let dist_codes = canonical_codes(&dist_lengths);
        CodePair {
            litlen_lengths: fixed_litlen,
            litlen_codes,
            dist_lengths,
            dist_codes,
        }
    };

    for &t in &tokens {
        if t & MATCH_FLAG == 0 {
            let s = (t & 0xff) as usize;
            bits.write_code(
                u32::from(pair.litlen_codes[s]),
                u32::from(pair.litlen_lengths[s]),
            )?;
        } else {
            let len = ((t >> 15) & 0xff) as usize + MIN_MATCH;
            let dist = (t & 0x7fff) as usize + 1;
            let (ls, lextra, lbits) = length_code(len);
            bits.write_code(
                u32::from(pair.litlen_codes[ls]),
                u32::from(pair.litlen_lengths[ls]),
            )?;
            if lbits > 0 {
                bits.write_bits(lextra, lbits)?;
            }
            let (ds, dextra, dbits) = dist_code(dist);
            bits.write_code(
                u32::from(pair.dist_codes[ds]),
                u32::from(pair.dist_lengths[ds]),
            )?;
            if dbits > 0 {
                bits.write_bits(dextra, dbits)?;
            }
        }
    }
    bits.write_code(
        u32::from(pair.litlen_codes[256]),
        u32::from(pair.litlen_lengths[256]),
    ) // end of block
}

// ---------------------------------------------------------------------
// The streaming encoder
// ---------------------------------------------------------------------

/// A streaming gzip encoder: a [`Write`] adapter that compresses into
/// its inner writer with bounded buffering (one [`BLOCK_BYTES`] input
/// block plus a small bit buffer). Call [`GzipWriter::finish`] to flush
/// the final block and trailer — dropping without finishing truncates
/// the stream.
pub struct GzipWriter<W: Write> {
    bits: BitWriter<W>,
    buf: Vec<u8>,
    crc: u32,
    total_in: u64,
    effort: Effort,
    /// Wall time spent inside the encoder (CRC, LZ77, Huffman, bit
    /// packing *and* the inner writes it performs). Server metrics feed
    /// this into the `gzip_encode` histogram via
    /// [`GzipWriter::finish_timed`].
    spent: Duration,
}

impl<W: Write> GzipWriter<W> {
    /// Starts a gzip stream on `inner` (writes the 10-byte header) at
    /// [`Effort::Default`].
    pub fn new(inner: W) -> io::Result<Self> {
        Self::with_effort(inner, Effort::Default)
    }

    /// Starts a gzip stream at the given effort level. Streamed server
    /// responses use [`Effort::Fast`]: encode time there is first-byte
    /// latency, and the fast level trades a small ratio loss for a
    /// several-fold encode speedup.
    pub fn with_effort(mut inner: W, effort: Effort) -> io::Result<Self> {
        // magic, CM=8 (deflate), FLG=0, MTIME=0 (deterministic output),
        // XFL=0, OS=255 (unknown).
        inner.write_all(&[0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 0xff])?;
        Ok(Self {
            bits: BitWriter::new(inner),
            buf: Vec::with_capacity(BLOCK_BYTES),
            crc: 0,
            total_in: 0,
            effort,
            spent: Duration::ZERO,
        })
    }

    /// Compresses the final block (even when empty), writes the CRC32 +
    /// length trailer, flushes, and returns the inner writer.
    pub fn finish(self) -> io::Result<W> {
        self.finish_timed().map(|(inner, _)| inner)
    }

    /// Like [`GzipWriter::finish`], but also reports the total wall time
    /// this encoder spent compressing (across every `write` plus the
    /// final block). The server records it into its `gzip_encode`
    /// latency histogram.
    pub fn finish_timed(mut self) -> io::Result<(W, Duration)> {
        let started = Instant::now();
        deflate_block(&mut self.bits, &self.buf, true, self.effort)?;
        self.bits.align_byte()?;
        let mut trailer = [0u8; 8];
        trailer[..4].copy_from_slice(&self.crc.to_le_bytes());
        trailer[4..].copy_from_slice(&(self.total_in as u32).to_le_bytes());
        self.bits.write_bytes(&trailer)?;
        self.bits.flush()?;
        let spent = self.spent + started.elapsed();
        Ok((self.bits.inner, spent))
    }

    fn write_compressing(&mut self, data: &[u8]) -> io::Result<usize> {
        self.crc = crc32_update(self.crc, data);
        self.total_in += data.len() as u64;
        let mut rest = data;
        while !rest.is_empty() {
            let room = BLOCK_BYTES - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == BLOCK_BYTES {
                let block = std::mem::take(&mut self.buf);
                deflate_block(&mut self.bits, &block, false, self.effort)?;
                self.buf = block;
                self.buf.clear();
            }
        }
        Ok(data.len())
    }
}

impl<W: Write> Write for GzipWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let started = Instant::now();
        let result = self.write_compressing(data);
        self.spent += started.elapsed();
        result
    }

    fn flush(&mut self) -> io::Result<()> {
        // Pending block bytes cannot be emitted without ending a block;
        // only the already-compressed output is flushed through.
        self.bits.flush()
    }
}

/// Compresses `data` to a complete in-memory gzip stream at
/// [`Effort::Default`].
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with(data, Effort::Default)
}

/// Compresses `data` to a complete in-memory gzip stream at the given
/// effort level.
pub fn compress_with(data: &[u8], effort: Effort) -> Vec<u8> {
    let mut gz = GzipWriter::with_effort(Vec::new(), effort).expect("Vec write cannot fail");
    gz.write_all(data).expect("Vec write cannot fail");
    gz.finish().expect("Vec write cannot fail")
}

// ---------------------------------------------------------------------
// The decoder (tests + benchmarks)
// ---------------------------------------------------------------------

/// LSB-first bit reader over a byte slice (the decoder half).
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bitbuf: u32,
    nbits: u32,
}

impl BitReader<'_> {
    fn bit(&mut self) -> Result<u32, String> {
        if self.nbits == 0 {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "truncated DEFLATE stream".to_string())?;
            self.pos += 1;
            self.bitbuf = u32::from(b);
            self.nbits = 8;
        }
        let bit = self.bitbuf & 1;
        self.bitbuf >>= 1;
        self.nbits -= 1;
        Ok(bit)
    }

    fn bits(&mut self, count: u32) -> Result<u32, String> {
        let mut v = 0;
        for k in 0..count {
            v |= self.bit()? << k;
        }
        Ok(v)
    }

    fn align_byte(&mut self) {
        self.bitbuf = 0;
        self.nbits = 0;
    }
}

/// A canonical Huffman decode table: per-length symbol counts plus the
/// symbols sorted by (length, symbol) — the bit-by-bit decode of
/// Deutsch's `puff`.
struct DecodeTable {
    count: [u16; MAX_CODE_BITS + 1],
    symbols: Vec<u16>,
}

impl DecodeTable {
    fn build(lengths: &[u8]) -> Result<DecodeTable, String> {
        let mut count = [0u16; MAX_CODE_BITS + 1];
        for &l in lengths {
            count[usize::from(l)] += 1;
        }
        count[0] = 0;
        let mut symbols = Vec::with_capacity(lengths.len());
        for bits in 1..=MAX_CODE_BITS as u8 {
            for (sym, &l) in lengths.iter().enumerate() {
                if l == bits {
                    symbols.push(sym as u16);
                }
            }
        }
        Ok(DecodeTable { count, symbols })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, String> {
        let (mut code, mut first, mut index) = (0u32, 0u32, 0u32);
        for bits in 1..=MAX_CODE_BITS {
            code |= r.bit()?;
            let count = u32::from(self.count[bits]);
            if code < first + count {
                return Ok(self.symbols[(index + code - first) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err("invalid Huffman code".to_string())
    }
}

/// Reads a dynamic block's header into litlen + dist decode tables.
fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(DecodeTable, DecodeTable), String> {
    let hlit = r.bits(5)? as usize + 257;
    let hdist = r.bits(5)? as usize + 1;
    let hclen = r.bits(4)? as usize + 4;
    let mut cl_lengths = [0u8; NUM_CL];
    for &s in &CL_ORDER[..hclen] {
        cl_lengths[s] = r.bits(3)? as u8;
    }
    let cl_table = DecodeTable::build(&cl_lengths)?;
    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        match cl_table.decode(r)? {
            s @ 0..=15 => lengths.push(s as u8),
            16 => {
                let &last = lengths.last().ok_or("repeat with no previous length")?;
                let run = 3 + r.bits(2)? as usize;
                lengths.resize(lengths.len() + run, last);
            }
            17 => {
                let run = 3 + r.bits(3)? as usize;
                lengths.resize(lengths.len() + run, 0);
            }
            18 => {
                let run = 11 + r.bits(7)? as usize;
                lengths.resize(lengths.len() + run, 0);
            }
            other => return Err(format!("invalid code-length symbol {other}")),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err("code-length repeat overran the header".to_string());
    }
    Ok((
        DecodeTable::build(&lengths[..hlit])?,
        DecodeTable::build(&lengths[hlit..])?,
    ))
}

/// Inflates one Huffman-coded block into `out`.
fn inflate_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    litlen: &DecodeTable,
    dist: &DecodeTable,
) -> Result<(), String> {
    loop {
        let sym = litlen.decode(r)?;
        match usize::from(sym) {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            s => {
                let li = s - 257;
                if li >= LENGTH_BASE.len() {
                    return Err(format!("invalid length code {s}"));
                }
                let len = usize::from(LENGTH_BASE[li]) + r.bits(LENGTH_EXTRA[li])? as usize;
                let di = usize::from(dist.decode(r)?);
                if di >= DIST_BASE.len() {
                    return Err(format!("invalid distance code {di}"));
                }
                let d = usize::from(DIST_BASE[di]) + r.bits(DIST_EXTRA[di])? as usize;
                if d > out.len() {
                    return Err("distance past start of output".to_string());
                }
                for _ in 0..len {
                    out.push(out[out.len() - d]);
                }
            }
        }
    }
}

/// Decompresses a complete gzip stream (header + DEFLATE + trailer),
/// verifying the CRC32 and length trailer. Supports stored, fixed- and
/// dynamic-Huffman blocks. Used by the integration tests and the
/// `server_smoke` benchmark to byte-compare compressed bodies against
/// their buffered renderings.
pub fn decode(stream: &[u8]) -> Result<Vec<u8>, String> {
    if stream.len() < 18 || stream[0] != 0x1f || stream[1] != 0x8b || stream[2] != 8 {
        return Err("not a gzip stream".to_string());
    }
    let flags = stream[3];
    let mut pos = 10;
    if flags & 0x04 != 0 {
        // FEXTRA
        let lo = *stream.get(pos).ok_or("truncated header")?;
        let hi = *stream.get(pos + 1).ok_or("truncated header")?;
        pos += 2 + (usize::from(lo) | (usize::from(hi) << 8));
    }
    for mask in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flags & mask != 0 {
            while *stream.get(pos).ok_or("truncated header")? != 0 {
                pos += 1;
            }
            pos += 1;
        }
    }
    if flags & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    let mut r = BitReader {
        bytes: stream,
        pos,
        bitbuf: 0,
        nbits: 0,
    };
    let mut out = Vec::new();
    loop {
        let last = r.bits(1)?;
        match r.bits(2)? {
            0b00 => {
                r.align_byte();
                let header = stream
                    .get(r.pos..r.pos + 4)
                    .ok_or("truncated stored block header")?;
                let len = usize::from(header[0]) | (usize::from(header[1]) << 8);
                let nlen = usize::from(header[2]) | (usize::from(header[3]) << 8);
                if len != !nlen & 0xffff {
                    return Err("stored block LEN/NLEN mismatch".to_string());
                }
                r.pos += 4;
                out.extend_from_slice(
                    stream
                        .get(r.pos..r.pos + len)
                        .ok_or("truncated stored block")?,
                );
                r.pos += len;
            }
            0b01 => {
                let litlen = DecodeTable::build(&fixed_litlen_lengths())?;
                let dist = DecodeTable::build(&[5u8; 32])?;
                inflate_block(&mut r, &mut out, &litlen, &dist)?;
            }
            0b10 => {
                let (litlen, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &mut out, &litlen, &dist)?;
            }
            _ => return Err("invalid block type".to_string()),
        }
        if last == 1 {
            break;
        }
    }
    r.align_byte();
    let trailer = stream
        .get(r.pos..r.pos + 8)
        .ok_or("truncated gzip trailer")?;
    let crc = u32::from_le_bytes(trailer[..4].try_into().unwrap());
    let isize_ = u32::from_le_bytes(trailer[4..].try_into().unwrap());
    if crc32_update(0, &out) != crc {
        return Err("CRC32 mismatch".to_string());
    }
    if out.len() as u32 != isize_ {
        return Err("length trailer mismatch".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        decode(&compress(data)).expect("decode compressed stream")
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"a"), b"a");
        assert_eq!(roundtrip(b"ab"), b"ab");
        assert_eq!(roundtrip(b"hello, world"), b"hello, world");
    }

    #[test]
    fn repetitive_input_roundtrips_and_compresses() {
        let data: Vec<u8> = b"[[12,345],[12,346],[13,7],"
            .iter()
            .copied()
            .cycle()
            .take(200_000)
            .collect();
        let compressed = compress(&data);
        assert_eq!(decode(&compressed).unwrap(), data);
        assert!(
            compressed.len() * 10 < data.len(),
            "repetitive JSON should compress >10x, got {} -> {}",
            data.len(),
            compressed.len()
        );
    }

    #[test]
    fn json_edge_list_compresses_well() {
        // The acceptance-criterion shape: a sorted JSON edge list. This
        // synthetic one (uniformly random neighbors) is *harder* than
        // real s-line-graph output; the integration tests assert the
        // same bound on genomics data over the wire.
        let mut body = String::from("[");
        let mut x = 1u64;
        for i in 0..40_000u32 {
            // Cheap xorshift so coordinates are irregular, like real data.
            x ^= x << 13;
            x %= 1 << 20;
            x ^= x >> 7;
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("[{},{}]", i / 7, x % 100_000));
        }
        body.push(']');
        let compressed = compress(body.as_bytes());
        assert_eq!(decode(&compressed).unwrap(), body.as_bytes());
        assert!(
            compressed.len() * 5 <= body.len() * 2,
            "edge-list JSON must compress >=2.5x, got {} -> {}",
            body.len(),
            compressed.len()
        );
    }

    #[test]
    fn incompressible_input_roundtrips_via_stored_blocks() {
        // Pseudo-random bytes defeat both Huffman codes; block-type
        // selection must fall back to stored blocks, bounding expansion
        // to the ~5 bytes of framing per 32 KiB block.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        let compressed = compress(&data);
        assert_eq!(decode(&compressed).unwrap(), data);
        assert!(
            compressed.len() < data.len() + 100,
            "stored fallback must bound expansion: {} -> {}",
            data.len(),
            compressed.len()
        );
    }

    #[test]
    fn block_boundaries_roundtrip() {
        for len in [
            BLOCK_BYTES - 1,
            BLOCK_BYTES,
            BLOCK_BYTES + 1,
            2 * BLOCK_BYTES,
            2 * BLOCK_BYTES + 17,
        ] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            assert_eq!(roundtrip(&data), data, "len {len}");
        }
    }

    #[test]
    fn all_byte_values_roundtrip() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).cycle().take(4096).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn streamed_writes_match_one_shot_compression() {
        let data: Vec<u8> = (0..70_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut gz = GzipWriter::new(Vec::new()).unwrap();
        for chunk in data.chunks(777) {
            gz.write_all(chunk).unwrap();
        }
        let streamed = gz.finish().unwrap();
        assert_eq!(streamed, compress(&data), "write slicing changed output");
        assert_eq!(decode(&streamed).unwrap(), data);
    }

    #[test]
    fn fast_effort_roundtrips_all_shapes() {
        // Every input family the default-effort tests cover must also
        // round-trip at Effort::Fast (skip-ahead, greedy matching and
        // short chains change the token stream, never correctness).
        let repetitive: Vec<u8> = b"[[12,345],[12,346],[13,7],"
            .iter()
            .copied()
            .cycle()
            .take(150_000)
            .collect();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let random: Vec<u8> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        let structured: Vec<u8> = (0..70_000u32).flat_map(|i| i.to_le_bytes()).collect();
        for (name, data) in [
            ("empty", Vec::new()),
            ("tiny", b"hello".to_vec()),
            ("repetitive", repetitive),
            ("random", random),
            ("structured", structured),
        ] {
            let fast = compress_with(&data, Effort::Fast);
            assert_eq!(decode(&fast).unwrap(), data, "{name}");
        }
    }

    #[test]
    fn fast_effort_ratio_stays_close_to_default() {
        // The acceptance shape: JSON edge-list bodies. Fast may lose
        // some ratio but must stay within 15% of default's output size.
        let mut body = String::from("[");
        let mut x = 1u64;
        for i in 0..40_000u32 {
            x ^= x << 13;
            x %= 1 << 20;
            x ^= x >> 7;
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("[{},{}]", i / 7, x % 100_000));
        }
        body.push(']');
        let default_len = compress_with(body.as_bytes(), Effort::Default).len();
        let fast_len = compress_with(body.as_bytes(), Effort::Fast).len();
        assert!(
            fast_len as f64 <= default_len as f64 * 1.15,
            "fast ratio loss too large: {fast_len} vs {default_len}"
        );
    }

    #[test]
    fn corrupted_streams_are_rejected() {
        let mut stream = compress(b"some payload worth checking, long enough to matter");
        let mid = stream.len() / 2;
        stream[mid] ^= 0x40;
        assert!(decode(&stream).is_err(), "corruption must not pass the CRC");
        assert!(decode(b"\x1f\x8b").is_err());
        assert!(decode(b"not gzip at all").is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32_update(0, b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_update(0, b""), 0);
        // Incremental updates equal one-shot.
        let once = crc32_update(0, b"hello world");
        let split = crc32_update(crc32_update(0, b"hello "), b"world");
        assert_eq!(once, split);
    }

    #[test]
    fn huffman_lengths_respect_the_limit_and_kraft() {
        // Fibonacci-ish frequencies force deep unlimited trees; the
        // limiter must clamp to max_bits with a complete Kraft sum.
        let mut freqs = vec![0u32; 40];
        let (mut a, mut b) = (1u32, 1u32);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a.saturating_add(b);
            a = b;
            b = next;
        }
        for max_bits in [7, 15] {
            let lengths = huffman_lengths(&freqs, max_bits);
            assert!(lengths.iter().all(|&l| usize::from(l) <= max_bits));
            let kraft: u64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 1u64 << (max_bits - usize::from(l)))
                .sum();
            assert_eq!(kraft, 1u64 << max_bits, "max_bits {max_bits}");
        }
        // Degenerate cases.
        assert!(huffman_lengths(&[0, 0, 0], 15).iter().all(|&l| l == 0));
        assert_eq!(huffman_lengths(&[0, 7, 0], 15), vec![0, 1, 0]);
    }
}
