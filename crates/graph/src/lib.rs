//! Graph substrate and s-metric kernels for the `hyperline` workspace.
//!
//! Stage 5 of the paper's framework computes graph metrics on the
//! (squeezed) s-line graph; any standard graph kernel applies. This crate
//! provides the ones the paper uses:
//!
//! * [`cc`] — connected components (frontier-parallel BFS, parallel
//!   label propagation / LPCC, union-find) → *s-connected components*;
//! * [`betweenness`] — Brandes betweenness centrality, sequential and
//!   source-parallel → *s-betweenness centrality*;
//! * [`bfs`] — serial BFS distances, eccentricity, diameter →
//!   *s-distance* (reference kernels);
//! * [`frontier`] — the parallel direction-optimizing frontier engine
//!   the Stage-5 kernels run on (components, diameter, closeness);
//! * [`pagerank`] — PageRank power iteration (Table II);
//! * [`spectral`] — normalized Laplacian λ₂ / algebraic connectivity by
//!   matrix-free deflated power iteration (Figure 6);
//! * [`dense`] — a dense Jacobi eigensolver used as a cross-check.

#![warn(missing_docs)]

pub mod betweenness;
pub mod bfs;
pub mod cc;
pub mod closeness;
pub mod dense;
pub mod dot;
pub mod frontier;
pub mod graph;
pub mod kcore;
pub mod pagerank;
pub mod spectral;

pub use graph::{Graph, WeightedGraph};
