//! Shared infrastructure for the experiment binaries.
//!
//! Every table/figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md §5 for the index); this library holds the
//! bits they share: thread-pool control, repetition/median timing, and a
//! tiny `--key=value` argument parser so runs can be scaled up or down.

#![warn(missing_docs)]

use hyperline_util::timer::Timer;

/// Runs `f` with the ambient worker count pinned to exactly `threads`.
/// Strategies resolving `workers() == num_threads()` see the pinned
/// size, so this is how the strong/weak scaling sweeps pin parallelism.
pub fn with_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    hyperline_util::parallel::with_threads(threads.max(1), f)
}

/// Times `f` `reps` times and returns the median wall-clock seconds.
pub fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let reps = reps.max(1);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Timer::start();
            f();
            t.seconds()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Parses `--name=value` from the process arguments, with a default.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// True if `--name` (with or without value) is present.
pub fn flag(name: &str) -> bool {
    let bare = format!("--{name}");
    let prefix = format!("--{name}=");
    std::env::args().any(|a| a == bare || a.starts_with(&prefix))
}

/// Formats a speedup factor the way the paper reports them (`26×`).
pub fn fmt_speedup(x: f64) -> String {
    if x >= 10.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Physical-run header printed by every experiment binary.
pub fn print_header(what: &str) {
    println!("=== {what} ===");
    println!(
        "machine: {} logical cores, default worker pool {}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0),
        hyperline_util::parallel::num_threads()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_pool_pins_thread_count() {
        let inside = with_pool(3, hyperline_util::parallel::num_threads);
        assert_eq!(inside, 3);
        let inside = with_pool(1, hyperline_util::parallel::num_threads);
        assert_eq!(inside, 1);
    }

    #[test]
    fn median_of_reps() {
        let mut calls = 0;
        let t = median_secs(5, || calls += 1);
        assert_eq!(calls, 5);
        assert!(t >= 0.0);
    }

    #[test]
    fn arg_parsing_defaults() {
        // No such arg in the test process: default wins.
        assert_eq!(arg::<usize>("definitely-not-passed", 7), 7);
        assert!(!flag("definitely-not-passed"));
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(26.0), "26x");
        assert_eq!(fmt_speedup(4.5), "4.50x");
    }
}
