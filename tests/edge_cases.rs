//! Edge-case and failure-injection tests across the whole stack:
//! degenerate hypergraphs, extreme `s`, adversarial null models, sparse
//! ID spaces, and worker-count corners.

use hyperline::gen::{ChungLuModel, UniformModel};
use hyperline::prelude::*;
use hyperline::slinegraph::SLineGraph;

#[test]
fn empty_hypergraph_everywhere() {
    let h = Hypergraph::from_edge_lists(&[], 0);
    assert!(algo2_slinegraph(&h, 1, &Strategy::default())
        .edges
        .is_empty());
    assert!(algo1_slinegraph(&h, 1, &Strategy::default())
        .edges
        .is_empty());
    assert!(naive_slinegraph(&h, 1, &Strategy::default())
        .edges
        .is_empty());
    assert!(spgemm_slinegraph(&h, 1, true).edges.is_empty());
    let run = run_pipeline(&h, &PipelineConfig::new(1));
    assert!(run.line_graph.edges.is_empty());
    assert!(run.components.unwrap().is_empty());
}

#[test]
fn all_empty_edges() {
    let h = Hypergraph::from_edge_lists(&[vec![], vec![], vec![]], 1);
    for s in 1..=2 {
        assert!(algo2_slinegraph(&h, s, &Strategy::default())
            .edges
            .is_empty());
    }
}

#[test]
fn single_vertex_many_edges() {
    // Every pair of the 50 singleton edges {0} shares exactly 1 vertex.
    let lists: Vec<Vec<u32>> = (0..50).map(|_| vec![0u32]).collect();
    let h = Hypergraph::from_edge_lists(&lists, 1);
    let r1 = algo2_slinegraph(&h, 1, &Strategy::default());
    assert_eq!(r1.edges.len(), 50 * 49 / 2);
    let r2 = algo2_slinegraph(&h, 2, &Strategy::default());
    assert!(r2.edges.is_empty());
}

#[test]
fn s_larger_than_any_edge() {
    let h = Profile::LesMis.generate(1);
    let max = h.max_edge_size() as u32;
    let r = algo2_slinegraph(&h, max + 1, &Strategy::default());
    assert!(r.edges.is_empty());
    assert_eq!(r.stats.total().edges_processed, 0, "all sources pruned");
}

#[test]
fn huge_s_value_no_overflow() {
    let h = Hypergraph::paper_example();
    let r = algo2_slinegraph(&h, u32::MAX, &Strategy::default());
    assert!(r.edges.is_empty());
}

#[test]
fn identical_edges_form_clique() {
    let lists: Vec<Vec<u32>> = (0..10).map(|_| vec![0u32, 1, 2, 3]).collect();
    let h = Hypergraph::from_edge_lists(&lists, 4);
    let r = algo2_slinegraph(&h, 4, &Strategy::default());
    assert_eq!(r.edges.len(), 45);
    let slg = SLineGraph::new_squeezed(4, 10, r.edges);
    assert_eq!(
        slg.connected_components(),
        vec![(0..10u32).collect::<Vec<_>>()]
    );
    assert!((slg.average_clustering() - 1.0).abs() < 1e-12);
}

#[test]
fn uniform_null_model_has_trivial_high_s_structure() {
    // Failure-injection for the planted-structure assumptions: a pure
    // null model must not accidentally contain deep components.
    let h = UniformModel {
        num_vertices: 5_000,
        num_edges: 2_000,
        edge_size_min: 2,
        edge_size_max: 8,
        edge_size_exponent: 2.0,
    }
    .generate(99);
    let r = algo2_slinegraph(&h, 5, &Strategy::default());
    assert!(
        r.edges.len() < 5,
        "uniform model produced {} 5-deep overlaps",
        r.edges.len()
    );
}

#[test]
fn chung_lu_hub_dominates_line_graph_degree() {
    let m = ChungLuModel::zipf(2_000, 1.1, 5_000);
    let h = m.generate(5);
    // The 1-line graph edges concentrate on hyperedges containing hub
    // vertices; just verify the construction stays consistent.
    let r = algo2_slinegraph(&h, 1, &Strategy::default());
    let r_naive = naive_slinegraph(&h, 1, &Strategy::default());
    assert_eq!(r.edges, r_naive.edges);
}

#[test]
fn worker_counts_beyond_items() {
    let h = Hypergraph::paper_example();
    for workers in [1usize, 3, 64, 1000] {
        let st = Strategy::default().with_workers(workers);
        assert_eq!(
            algo2_slinegraph(&h, 2, &st).edges,
            vec![(0, 1), (0, 2), (1, 2)],
            "workers={workers}"
        );
    }
}

#[test]
fn dynamic_partition_tiny_and_huge_chunks() {
    let h = Profile::LesMis.generate(3);
    let reference = algo2_slinegraph(&h, 2, &Strategy::default()).edges;
    for chunk in [1usize, 7, 100_000] {
        let st = Strategy::default().with_partition(Partition::Dynamic { chunk });
        assert_eq!(
            algo2_slinegraph(&h, 2, &st).edges,
            reference,
            "chunk={chunk}"
        );
    }
}

#[test]
fn squeeze_on_sparse_high_ids() {
    // Hyperedge IDs surviving filtration sit at the very end of a large
    // ID space; squeezing must stay correct.
    let mut lists: Vec<Vec<u32>> = (0..1000).map(|i| vec![i as u32 % 997]).collect();
    lists.push((0..50).collect());
    lists.push((0..50).collect());
    let h = Hypergraph::from_edge_lists(&lists, 1000);
    let r = algo2_slinegraph(&h, 50, &Strategy::default());
    assert_eq!(r.edges, vec![(1000, 1001)]);
    let slg = SLineGraph::new_squeezed(50, h.num_edges(), r.edges);
    assert_eq!(slg.num_vertices(), 2);
    assert_eq!(slg.connected_components(), vec![vec![1000, 1001]]);
    assert_eq!(slg.s_distance(1000, 1001), Some(1));
}

#[test]
fn toplex_of_duplicate_only_hypergraph() {
    let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![0, 1], vec![0, 1]], 2);
    let t = hyperline::hypergraph::toplexes(&h);
    assert_eq!(t.toplex_ids, vec![0]);
    assert_eq!(t.simplified.num_edges(), 1);
}

#[test]
fn ensemble_with_duplicate_and_unsorted_s_values() {
    let h = Profile::LesMis.generate(4);
    let ens = ensemble_slinegraphs(&h, &[5, 1, 5, 3], &Strategy::default());
    assert_eq!(ens.per_s.len(), 4);
    assert_eq!(ens.per_s[0].0, 5);
    assert_eq!(ens.per_s[1].0, 1);
    assert_eq!(ens.per_s[0].1, ens.per_s[2].1, "duplicate s values agree");
    // Results still exact despite unsorted input.
    for (s, edges) in &ens.per_s {
        assert_eq!(edges, &algo2_slinegraph(&h, *s, &Strategy::default()).edges);
    }
}

#[test]
fn pipeline_without_pruning_or_squeezing() {
    let h = Profile::CompBoard.generate(8);
    let config = PipelineConfig {
        s: 2,
        strategy: Strategy::default().with_pruning(false),
        squeeze: false,
        ..PipelineConfig::new(2)
    };
    let run = run_pipeline(&h, &config);
    let reference = run_pipeline(&h, &PipelineConfig::new(2));
    assert_eq!(run.line_graph.edges, reference.line_graph.edges);
    assert_eq!(run.line_graph.num_vertices(), h.num_edges());
}
