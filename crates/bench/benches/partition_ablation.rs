//! Criterion ablation: partitioning strategy × relabel order × chunk size.
//!
//! The design choices of §III-F / §IV: blocked vs cyclic vs dynamic
//! chunk-claiming, relabel-by-degree, and the dynamic grainsize (the
//! paper observes chunk sizes up to 256 perform similarly and larger ones
//! suffer scheduling overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperline_gen::CommunityModel;
use hyperline_hypergraph::{relabel_edges_by_degree, Hypergraph, RelabelOrder};
use hyperline_slinegraph::{algo2_slinegraph, Partition, Strategy};
use std::hint::black_box;

fn skewed_input() -> Hypergraph {
    CommunityModel {
        num_vertices: 10_000,
        num_edges: 20_000,
        edge_size_min: 2,
        edge_size_max: 800,
        edge_size_exponent: 2.0,
        num_communities: 200,
        core_size: 60,
        affinity: 0.7,
        community_skew: 0.9,
        vertex_skew: 1.0,
    }
    .generate(4)
}

fn partition_ablation(c: &mut Criterion) {
    let h = skewed_input();
    let mut group = c.benchmark_group("partition_ablation");
    group.sample_size(10);

    for relabel in RelabelOrder::ALL {
        let relabeled = relabel_edges_by_degree(&h, relabel);
        for partition in [Partition::Blocked, Partition::Cyclic] {
            let strategy = Strategy::default().with_partition(partition);
            let label = format!("{}{}", partition.code(), relabel.code());
            group.bench_with_input(
                BenchmarkId::new("static", label),
                &strategy,
                |b, strategy| {
                    b.iter(|| {
                        black_box(
                            algo2_slinegraph(&relabeled.hypergraph, 8, strategy)
                                .edges
                                .len(),
                        )
                    })
                },
            );
        }
    }

    // Grainsize sweep for the dynamic mode (no relabeling).
    for chunk in [16usize, 64, 256, 2048] {
        let strategy = Strategy::default().with_partition(Partition::Dynamic { chunk });
        group.bench_with_input(
            BenchmarkId::new("dynamic-chunk", chunk),
            &strategy,
            |b, strategy| b.iter(|| black_box(algo2_slinegraph(&h, 8, strategy).edges.len())),
        );
    }
    group.finish();
}

criterion_group!(benches, partition_ablation);
criterion_main!(benches);
