//! Model-checked telemetry `Histogram` unit (exhaustive interleavings).
//!
//! Runs only under `RUSTFLAGS="--cfg hyperline_sched"` (the sched step
//! of `scripts/check.sh`), where `hyperline_util::sync` resolves to the
//! model-checker shims — the histogram code explored here is the exact
//! production source.
//!
//! Oracles are chosen to be *true* invariants of the lock-free design:
//! quiescent totals are exact, and mid-flight observations are bounded
//! (the counters are monotonic). Bucket-vs-count *consistency of a
//! concurrent snapshot* is deliberately not asserted — `record` bumps
//! the bucket and the total in two separate relaxed ops, and the
//! documented contract only promises point-in-time bounds, not a torn-
//! free view.
#![cfg(hyperline_sched)]

use hyperline_sched::{explore, explore_with, Config};
use hyperline_util::sync::{thread, Arc};
use hyperline_util::telemetry::Histogram;

/// The bucket-loop units walk every histogram bucket per operation, so
/// their schedules are deep; cap the DFS to keep the check.sh sched
/// step fast while still covering thousands of interleavings (plus the
/// seeded-random tail).
fn explore_budgeted(f: impl Fn() + Send + Sync + 'static) {
    let cfg = Config {
        max_schedules: 2_000,
        random_schedules: 250,
        ..Config::default()
    };
    let report = explore_with(cfg, f);
    if let Some(fail) = report.failure {
        panic!(
            "sched: invariant violated after {} schedules: {}\n  replay with: HYPERLINE_SCHED_REPLAY={}",
            report.schedules, fail.message, fail.schedule
        );
    }
}

#[test]
fn concurrent_records_sum_exactly() {
    explore(|| {
        let h = Arc::new(Histogram::new());
        let h1 = h.clone();
        let h2 = h.clone();
        let a = thread::spawn(move || h1.record(3));
        let b = thread::spawn(move || h2.record(5));
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(h.count(), 2, "lost a concurrent record");
        assert_eq!(h.sum(), 8, "sum dropped a concurrent sample");
        assert_eq!(h.max(), 5, "max missed a concurrent sample");
        assert_eq!(h.snapshot().quantile(1.0), h.snapshot().quantile(1.0));
    });
}

#[test]
fn merge_concurrent_with_record_is_bounded() {
    explore_budgeted(|| {
        let src = Arc::new(Histogram::new());
        let dst = Arc::new(Histogram::new());
        let s2 = src.clone();
        let recorder = thread::spawn(move || s2.record(3));
        // Merge races the record: it may or may not see the sample, but
        // every observed counter stays within the recorded bounds.
        dst.merge_from(&src);
        assert!(dst.count() <= 1, "merge invented a sample");
        assert!(dst.sum() <= 3, "merge invented value mass");
        assert!(dst.max() <= 3, "merge invented a max");
        recorder.join().unwrap();
        // Quiescent merge is exact.
        let settled = Histogram::new();
        settled.merge_from(&src);
        assert_eq!(settled.count(), 1);
        assert_eq!(settled.sum(), 3);
        assert_eq!(settled.max(), 3);
    });
}

#[test]
fn snapshot_concurrent_with_record_is_bounded() {
    explore_budgeted(|| {
        let h = Arc::new(Histogram::new());
        let h2 = h.clone();
        let recorder = thread::spawn(move || h2.record(7));
        let snap = h.snapshot();
        assert!(snap.count() <= 1, "snapshot saw more samples than recorded");
        assert!(
            snap.sum() <= 7,
            "snapshot saw more value mass than recorded"
        );
        assert!(snap.max() <= 7);
        recorder.join().unwrap();
        let settled = h.snapshot();
        assert_eq!(settled.count(), 1);
        assert_eq!(settled.sum(), 7);
        assert_eq!(settled.max(), 7);
        assert_eq!(settled.quantile(0.5), settled.max());
    });
}
