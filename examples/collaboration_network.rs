//! Revealing relationships among authors (§V-B of the paper).
//!
//! Builds a condMat-like author-paper hypergraph (papers are hyperedges,
//! authors are vertices), computes the **ensemble** of s-line graphs for
//! s = 1..16 in one pass (Algorithm 3), and reports the normalized
//! algebraic connectivity of each — the paper's Figure 6. Rising
//! connectivity at high s reveals tightly collaborating author teams
//! (the planted teams with 13–16 joint papers).
//!
//! Run with: `cargo run --release --example collaboration_network`

use hyperline::prelude::*;
use hyperline::util::Table;

fn main() {
    let h = Profile::CondMat.generate(42);
    println!(
        "condMat-like author-paper network: {} authors, {} papers, {} inclusions",
        h.num_vertices(),
        h.num_edges(),
        h.num_incidences()
    );

    let s_values: Vec<u32> = (1..=16).collect();
    let ensemble = ensemble_slinegraphs(&h, &s_values, &Strategy::default());
    println!(
        "ensemble pass stored {} overlap pairs, 0 set intersections\n",
        ensemble.stored_pairs
    );

    let mut table = Table::new([
        "s",
        "|E| of L_s",
        "non-singleton comps",
        "norm. algebraic connectivity",
    ]);
    for (s, edges) in &ensemble.per_s {
        let slg = SLineGraph::new_squeezed(*s, h.num_edges(), edges.clone());
        let comps = slg.connected_components();
        let non_singleton = comps.iter().filter(|c| c.len() > 1).count();
        let lambda = slg.algebraic_connectivity();
        table.row([
            s.to_string(),
            edges.len().to_string(),
            non_singleton.to_string(),
            format!("{lambda:.4}"),
        ]);
    }
    table.print();

    // The planted teams: 5 papers sharing exactly 16 authors each.
    let range = Profile::CondMat.planted_edge_range(42).unwrap();
    let slg16 =
        SLineGraph::new_squeezed(16, h.num_edges(), ensemble.per_s.last().unwrap().1.clone());
    let comps = slg16.connected_components();
    println!(
        "\nAt s=16, {} component(s) remain — the tightest author teams:",
        comps.len()
    );
    for comp in comps.iter().take(3) {
        let planted: Vec<&u32> = comp.iter().filter(|&&e| range.contains(&e)).collect();
        println!("  papers {:?} ({} planted)", comp, planted.len());
    }
}
