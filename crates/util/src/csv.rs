//! Minimal CSV writing for experiment outputs.
//!
//! Experiment binaries can emit machine-readable series next to their
//! human tables (plotting the paper's figures externally). Only writing
//! is needed — no parsing, no quoting edge cases beyond RFC-4180 basics.

use std::io::{self, Write};

/// A CSV writer over any `io::Write`, with a fixed column count checked
/// on every row.
#[derive(Debug)]
pub struct CsvWriter<W: Write> {
    sink: W,
    columns: usize,
}

impl<W: Write> CsvWriter<W> {
    /// Starts a CSV document by writing the header row.
    pub fn new<S: AsRef<str>>(
        mut sink: W,
        header: impl IntoIterator<Item = S>,
    ) -> io::Result<Self> {
        let cells: Vec<String> = header.into_iter().map(|s| escape(s.as_ref())).collect();
        writeln!(sink, "{}", cells.join(","))?;
        Ok(Self {
            sink,
            columns: cells.len(),
        })
    }

    /// Writes one data row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header's.
    pub fn row<S: AsRef<str>>(&mut self, cells: impl IntoIterator<Item = S>) -> io::Result<()> {
        let cells: Vec<String> = cells.into_iter().map(|s| escape(s.as_ref())).collect();
        assert_eq!(cells.len(), self.columns, "CSV row width mismatch");
        writeln!(self.sink, "{}", cells.join(","))
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// RFC-4180 escaping: quote cells containing commas, quotes or newlines.
fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let mut w = CsvWriter::new(Vec::new(), ["s", "edges"]).unwrap();
        w.row(["1", "100"]).unwrap();
        w.row(["2", "40"]).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), "s,edges\n1,100\n2,40\n");
    }

    #[test]
    fn escapes_special_cells() {
        let mut w = CsvWriter::new(Vec::new(), ["name", "note"]).unwrap();
        w.row(["a,b", "say \"hi\""]).unwrap();
        w.row(["multi\nline", "ok"]).unwrap();
        let out = String::from_utf8(w.finish().unwrap()).unwrap();
        assert!(out.contains("\"a,b\""));
        assert!(out.contains("\"say \"\"hi\"\"\""));
        assert!(out.contains("\"multi\nline\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_enforced() {
        let mut w = CsvWriter::new(Vec::new(), ["a", "b"]).unwrap();
        let _ = w.row(["only-one"]);
    }

    #[test]
    fn plain_cells_unquoted() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("12.5"), "12.5");
    }
}
