//! Sampling primitives for synthetic hypergraph generation.
//!
//! The paper's datasets all have *skewed* degree distributions (Table IV
//! notes every input has a skewed hyperedge degree distribution); these
//! helpers produce such distributions reproducibly: bounded discrete
//! power-law sampling by inverse CDF and O(1) weighted sampling via a
//! Walker alias table.

use rand::Rng;

/// Samples an integer from a bounded power law `p(k) ∝ k^(-exponent)` on
/// `[min, max]` by inverting the continuous CDF and rounding down.
///
/// `exponent == 1.0` is handled via the logarithmic CDF. `min == max`
/// returns the single value.
///
/// # Panics
/// Panics if `min == 0`, `min > max`, or `exponent < 0`.
pub fn power_law(rng: &mut impl Rng, min: usize, max: usize, exponent: f64) -> usize {
    assert!(min >= 1, "power-law support must start at 1 or above");
    assert!(min <= max, "min {min} > max {max}");
    assert!(exponent >= 0.0, "negative exponent");
    if min == max {
        return min;
    }
    let (a, b) = (min as f64, (max + 1) as f64);
    let u: f64 = rng.gen();
    let x = if (exponent - 1.0).abs() < 1e-9 {
        // CDF ∝ ln(x/a)
        a * (b / a).powf(u)
    } else {
        // Inverse of CDF for x^(-γ): x = [a^(1-γ) + u (b^(1-γ) − a^(1-γ))]^(1/(1-γ))
        let g = 1.0 - exponent;
        (a.powf(g) + u * (b.powf(g) - a.powf(g))).powf(1.0 / g)
    };
    (x as usize).clamp(min, max)
}

/// Walker alias table: O(n) construction, O(1) weighted index sampling.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds from non-negative weights (at least one must be positive).
    ///
    /// # Panics
    /// Panics on empty input, negative weights, or all-zero weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let total: f64 = weights
            .iter()
            .inspect(|&&w| assert!(w >= 0.0, "negative weight"))
            .sum();
        assert!(total > 0.0, "all weights zero");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Builds a Zipf table over `n` items: weight of item `i` is
    /// `(i + 1)^(-alpha)`.
    pub fn zipf(n: usize, alpha: f64) -> Self {
        let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
        Self::new(&weights)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no items (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Samples an index with probability proportional to its weight.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

/// Samples `k` distinct items from `0..n` (uniform, Floyd's algorithm).
/// Returns a sorted vector. `k` is clamped to `n`.
pub fn sample_distinct(rng: &mut impl Rng, n: usize, k: usize) -> Vec<u32> {
    let k = k.min(n);
    let mut chosen = hyperline_util::fxhash::FxHashSet::default();
    // Floyd's: for j in n-k..n, pick t in [0..=j]; insert t or j if taken.
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j) as u32;
        if !chosen.insert(t) {
            chosen.insert(j as u32);
        }
    }
    let mut out: Vec<u32> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn power_law_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = power_law(&mut rng, 2, 50, 2.1);
            assert!((2..=50).contains(&v));
        }
        assert_eq!(power_law(&mut rng, 7, 7, 2.0), 7);
    }

    #[test]
    fn power_law_is_skewed_toward_min() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<usize> = (0..20_000)
            .map(|_| power_law(&mut rng, 1, 1000, 2.5))
            .collect();
        let small = samples.iter().filter(|&&v| v <= 3).count();
        let large = samples.iter().filter(|&&v| v > 100).count();
        assert!(small > 10 * large.max(1), "small={small} large={large}");
        // But the tail is populated.
        assert!(samples.iter().any(|&v| v > 50));
    }

    #[test]
    fn power_law_exponent_one() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let v = power_law(&mut rng, 1, 100, 1.0);
            assert!((1..=100).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "support must start")]
    fn power_law_rejects_zero_min() {
        let mut rng = StdRng::seed_from_u64(4);
        power_law(&mut rng, 0, 5, 2.0);
    }

    #[test]
    fn alias_table_matches_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = [1.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut counts = [0usize; 3];
        let trials = 60_000;
        for _ in 0..trials {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / trials as f64;
            assert!((got - expect).abs() < 0.02, "i={i}: {got} vs {expect}");
        }
    }

    #[test]
    fn alias_table_zero_weight_never_sampled() {
        let mut rng = StdRng::seed_from_u64(6);
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_table_single_item() {
        let mut rng = StdRng::seed_from_u64(7);
        let table = AliasTable::new(&[42.0]);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = StdRng::seed_from_u64(8);
        let table = AliasTable::zipf(100, 1.5);
        let mut count0 = 0;
        for _ in 0..10_000 {
            if table.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        // Item 0 has weight 1 of total ≈ 2.6; expect ~38%.
        assert!(count0 > 2500, "head item sampled only {count0}/10000");
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let n = rng.gen_range(1..50usize);
            let k = rng.gen_range(0..=n);
            let s = sample_distinct(&mut rng, n, k);
            assert_eq!(s.len(), k);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert!(s.iter().all(|&v| (v as usize) < n));
        }
    }

    #[test]
    fn sample_distinct_k_exceeding_n_clamps() {
        let mut rng = StdRng::seed_from_u64(10);
        let s = sample_distinct(&mut rng, 5, 100);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_distinct_covers_all_items_eventually() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            for v in sample_distinct(&mut rng, 10, 3) {
                seen.insert(v);
            }
        }
        assert_eq!(seen.len(), 10);
    }
}
