//! Criterion ablation: Algorithm 1's heuristics (§III-A).
//!
//! The paper credits Algorithm 1's viability to four heuristics: degree
//! pruning, visited-skipping, short-circuited intersections, and
//! triangle restriction. This bench switches them off one at a time to
//! quantify each one's contribution — and benches the Lower-triangle
//! variant of both algorithms (the paper's descending-order pairing).

use criterion::{criterion_group, criterion_main, Criterion};
use hyperline_gen::CommunityModel;
use hyperline_hypergraph::Hypergraph;
use hyperline_slinegraph::{
    algo1_slinegraph, algo2_slinegraph, Algo1Heuristics, Strategy, TriangleSide,
};
use std::hint::black_box;

fn input() -> Hypergraph {
    CommunityModel {
        num_vertices: 3_000,
        num_edges: 5_000,
        edge_size_min: 2,
        edge_size_max: 100,
        edge_size_exponent: 2.0,
        num_communities: 100,
        core_size: 40,
        affinity: 0.7,
        community_skew: 0.8,
        vertex_skew: 0.9,
    }
    .generate(8)
}

fn heuristics_ablation(c: &mut Criterion) {
    let h = input();
    let s = 4;
    let mut group = c.benchmark_group("algo1_heuristics");
    group.sample_size(10);

    let variants: [(&str, Strategy); 5] = [
        ("all-on", Strategy::default()),
        (
            "no-skip-visited",
            Strategy::default().with_algo1_heuristics(Algo1Heuristics {
                skip_visited: false,
                short_circuit: true,
            }),
        ),
        (
            "no-short-circuit",
            Strategy::default().with_algo1_heuristics(Algo1Heuristics {
                skip_visited: true,
                short_circuit: false,
            }),
        ),
        ("no-degree-pruning", Strategy::default().with_pruning(false)),
        (
            "all-off",
            Strategy::default()
                .with_pruning(false)
                .with_algo1_heuristics(Algo1Heuristics {
                    skip_visited: false,
                    short_circuit: false,
                }),
        ),
    ];
    for (label, strategy) in variants {
        group.bench_function(label, |b| {
            b.iter(|| black_box(algo1_slinegraph(&h, s, &strategy).edges.len()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("triangle_side");
    group.sample_size(10);
    for (label, side) in [
        ("upper", TriangleSide::Upper),
        ("lower", TriangleSide::Lower),
    ] {
        let strategy = Strategy::default().with_triangle(side);
        group.bench_function(format!("algo2-{label}"), |b| {
            b.iter(|| black_box(algo2_slinegraph(&h, s, &strategy).edges.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, heuristics_ablation);
criterion_main!(benches);
