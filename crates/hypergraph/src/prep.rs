//! Stage 1 preprocessing: cleaning and relabel-by-degree.
//!
//! Large hypergraphs with skewed degree distributions benefit from
//! relabeling hyperedge IDs by degree before the s-overlap computation:
//! combined with upper-triangle traversal (`i < j`), ascending order makes
//! heavy hyperedges the *targets* rather than the *sources* of wedge
//! traversal, which balances load and (per the paper's VTune analysis)
//! roughly halves LLC misses.

use crate::hypergraph::Hypergraph;

/// Hyperedge relabeling applied during preprocessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RelabelOrder {
    /// Keep the input labeling (`N` in the paper's notation).
    #[default]
    None,
    /// Sort hyperedges by size, smallest first (`A`).
    Ascending,
    /// Sort hyperedges by size, largest first (`D`).
    Descending,
}

impl RelabelOrder {
    /// One-letter code used in the paper's strategy notation (Table III).
    pub fn code(self) -> char {
        match self {
            RelabelOrder::None => 'N',
            RelabelOrder::Ascending => 'A',
            RelabelOrder::Descending => 'D',
        }
    }

    /// All orders, for sweeps.
    pub const ALL: [RelabelOrder; 3] = [
        RelabelOrder::None,
        RelabelOrder::Ascending,
        RelabelOrder::Descending,
    ];
}

/// Result of a relabeling: the new hypergraph plus the permutation
/// (`perm[new_id] = old_id`) needed to report results in original IDs.
#[derive(Debug, Clone)]
pub struct Relabeled {
    /// The relabeled hypergraph.
    pub hypergraph: Hypergraph,
    /// `perm[new_edge_id] = old_edge_id`.
    pub new_to_old: Vec<u32>,
}

impl Relabeled {
    /// Translates a new (relabeled) edge ID back to the original ID.
    #[inline]
    pub fn original_id(&self, new_id: u32) -> u32 {
        self.new_to_old[new_id as usize]
    }

    /// Translates an edge list on new IDs back to original IDs (in
    /// parallel past a small-input threshold — this is part of the
    /// post-counting tail).
    pub fn restore_edge_ids(&self, edges: &mut [(u32, u32)]) {
        if edges.len() < (1 << 15) {
            for (a, b) in edges.iter_mut() {
                *a = self.new_to_old[*a as usize];
                *b = self.new_to_old[*b as usize];
            }
            return;
        }
        hyperline_util::parallel::par_for_each_mut(edges, |(a, b)| {
            *a = self.new_to_old[*a as usize];
            *b = self.new_to_old[*b as usize];
        });
    }
}

/// Relabels hyperedges by size in the given order. Ties keep their input
/// order (stable sort), making the permutation deterministic.
pub fn relabel_edges_by_degree(h: &Hypergraph, order: RelabelOrder) -> Relabeled {
    let m = h.num_edges();
    let mut perm: Vec<u32> = (0..m as u32).collect();
    match order {
        RelabelOrder::None => {
            return Relabeled {
                hypergraph: h.clone(),
                new_to_old: perm,
            };
        }
        RelabelOrder::Ascending => perm.sort_by_key(|&e| h.edge_size(e)),
        RelabelOrder::Descending => perm.sort_by_key(|&e| std::cmp::Reverse(h.edge_size(e))),
    }
    let edges = h.edge_csr().permute_rows(&perm);
    Relabeled {
        hypergraph: Hypergraph::from_edge_csr(edges),
        new_to_old: perm,
    }
}

/// Result of cleaning: the cleaned hypergraph plus surviving original IDs.
#[derive(Debug, Clone)]
pub struct Cleaned {
    /// The cleaned hypergraph (no empty edges, no isolated vertices).
    pub hypergraph: Hypergraph,
    /// `kept_edges[new_edge_id] = old_edge_id`.
    pub kept_edges: Vec<u32>,
    /// `kept_vertices[new_vertex_id] = old_vertex_id`.
    pub kept_vertices: Vec<u32>,
}

/// Removes empty hyperedges and isolated (degree-0) vertices, compacting
/// both ID spaces.
pub fn clean(h: &Hypergraph) -> Cleaned {
    let kept_edges: Vec<u32> = (0..h.num_edges() as u32)
        .filter(|&e| h.edge_size(e) > 0)
        .collect();
    let kept_vertices: Vec<u32> = (0..h.num_vertices() as u32)
        .filter(|&v| h.vertex_degree(v) > 0)
        .collect();
    let mut vertex_rename = vec![u32::MAX; h.num_vertices()];
    for (new, &old) in kept_vertices.iter().enumerate() {
        vertex_rename[old as usize] = new as u32;
    }
    let lists: Vec<Vec<u32>> = kept_edges
        .iter()
        .map(|&e| {
            h.edge_vertices(e)
                .iter()
                .map(|&v| vertex_rename[v as usize])
                .collect()
        })
        .collect();
    let hypergraph = Hypergraph::from_edge_lists(&lists, kept_vertices.len());
    Cleaned {
        hypergraph,
        kept_edges,
        kept_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_none_is_identity() {
        let h = Hypergraph::paper_example();
        let r = relabel_edges_by_degree(&h, RelabelOrder::None);
        assert_eq!(r.hypergraph, h);
        assert_eq!(r.new_to_old, vec![0, 1, 2, 3]);
    }

    #[test]
    fn relabel_ascending_sorts_by_size() {
        let h = Hypergraph::paper_example(); // sizes 3,3,5,2
        let r = relabel_edges_by_degree(&h, RelabelOrder::Ascending);
        let sizes: Vec<usize> = (0..4u32).map(|e| r.hypergraph.edge_size(e)).collect();
        assert_eq!(sizes, vec![2, 3, 3, 5]);
        // perm: new 0 = old 3 (size 2); stable ties: new 1 = old 0, new 2 = old 1.
        assert_eq!(r.new_to_old, vec![3, 0, 1, 2]);
    }

    #[test]
    fn relabel_descending_sorts_by_size() {
        let h = Hypergraph::paper_example();
        let r = relabel_edges_by_degree(&h, RelabelOrder::Descending);
        let sizes: Vec<usize> = (0..4u32).map(|e| r.hypergraph.edge_size(e)).collect();
        assert_eq!(sizes, vec![5, 3, 3, 2]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let h = Hypergraph::paper_example();
        for order in RelabelOrder::ALL {
            let r = relabel_edges_by_degree(&h, order);
            assert_eq!(r.hypergraph.num_edges(), h.num_edges());
            assert_eq!(r.hypergraph.num_incidences(), h.num_incidences());
            for new_id in 0..4u32 {
                let old_id = r.original_id(new_id);
                assert_eq!(r.hypergraph.edge_vertices(new_id), h.edge_vertices(old_id));
            }
        }
    }

    #[test]
    fn restore_edge_ids_maps_back() {
        let h = Hypergraph::paper_example();
        let r = relabel_edges_by_degree(&h, RelabelOrder::Ascending);
        let mut edges = vec![(0u32, 3u32)];
        r.restore_edge_ids(&mut edges);
        assert_eq!(edges, vec![(3, 2)]);
    }

    #[test]
    fn clean_removes_empty_and_isolated() {
        // vertex 2 is isolated; edge 1 is empty.
        let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![], vec![3]], 4);
        let c = clean(&h);
        assert_eq!(c.hypergraph.num_edges(), 2);
        assert_eq!(c.hypergraph.num_vertices(), 3);
        assert_eq!(c.kept_edges, vec![0, 2]);
        assert_eq!(c.kept_vertices, vec![0, 1, 3]);
        // old vertex 3 is new vertex 2
        assert_eq!(c.hypergraph.edge_vertices(1), &[2]);
    }

    #[test]
    fn clean_is_noop_on_clean_input() {
        let h = Hypergraph::paper_example();
        let c = clean(&h);
        assert_eq!(c.hypergraph, h);
    }

    #[test]
    fn relabel_codes() {
        assert_eq!(RelabelOrder::None.code(), 'N');
        assert_eq!(RelabelOrder::Ascending.code(), 'A');
        assert_eq!(RelabelOrder::Descending.code(), 'D');
    }
}
