//! Model-checked server concurrency units (exhaustive interleavings).
//!
//! Runs only under `RUSTFLAGS="--cfg hyperline_sched"` (the sched step
//! of `scripts/check.sh`), where `hyperline_server::sync` resolves to
//! the model-checker shims. The code explored here — single-flight
//! cache, gauge guards, bounded queue + worker pool — is the exact
//! production source, compiled against the shims through the seam.
//!
//! The units explored:
//! * (a) single-flight cache generation fencing + miss deduplication,
//! * (c) `GaugeGuard` never-negative accounting,
//! * (e) worker-pool shutdown and panic recovery,
//! * the evented core's [`OutBuf`] worker→loop hand-off buffer:
//!   lossless bounded delivery and close-wakes-producer.
//!
//! [`OutBuf`]: hyperline_server::event::OutBuf
#![cfg(hyperline_sched)]

use hyperline_sched::explore;
use hyperline_server::cache::{AlgoKind, CacheKey, SingleFlightCache};
use hyperline_server::metrics::GaugeGuard;
use hyperline_server::pool::{BoundedQueue, WorkerPool};
use hyperline_server::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use hyperline_server::sync::{thread, Arc};

fn key(dataset: &str) -> CacheKey {
    CacheKey {
        dataset: dataset.to_string(),
        s: 1,
        algorithm: AlgoKind::Algo2,
        weighted: false,
    }
}

// -- (a) generation fencing -------------------------------------------

#[test]
fn insert_if_current_fences_concurrent_invalidation() {
    explore(|| {
        let cache = Arc::new(SingleFlightCache::<CacheKey, u64>::new(1 << 20));
        let k = key("d");
        // The generation is read BEFORE the invalidation races in —
        // exactly the sweep path's window.
        let gen0 = cache.generation("d");
        let (c2, k2) = (cache.clone(), k.clone());
        let inserter = thread::spawn(move || c2.insert_if_current(k2, gen0, 42, 8));
        let c3 = cache.clone();
        let invalidator = thread::spawn(move || c3.invalidate_dataset("d"));
        let inserted = inserter.join().unwrap();
        invalidator.join().unwrap();
        // Whichever order the lock arbitration picked: an insert that
        // beat the invalidation was evicted by it, and one that lost
        // was rejected by the stale generation. A stale artifact must
        // never survive the replacement.
        assert!(
            cache.lookup(&k).is_none(),
            "stale artifact (inserted={inserted}) survived a dataset replacement"
        );
        assert_ne!(
            cache.generation("d"),
            gen0,
            "invalidation did not bump the generation"
        );
    });
}

#[test]
fn single_flight_dedups_concurrent_misses() {
    explore(|| {
        let cache = Arc::new(SingleFlightCache::<CacheKey, u64>::new(1 << 20));
        let computes = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let (c, n) = (cache.clone(), computes.clone());
                let k = key("d");
                thread::spawn(move || {
                    let (value, _outcome) = c
                        .get_or_compute(&k, || {
                            n.fetch_add(1, Ordering::Relaxed);
                            Ok((7u64, 8))
                        })
                        .expect("compute never fails here");
                    *value
                })
            })
            .collect();
        for h in hs {
            assert_eq!(
                h.join().unwrap(),
                7,
                "caller saw a value other than the computed one"
            );
        }
        // Second caller either coalesced onto the flight or hit the
        // cached entry — the computation itself ran exactly once.
        assert_eq!(
            computes.load(Ordering::Relaxed),
            1,
            "single-flight ran the computation more than once"
        );
    });
}

// -- (c) gauge accounting ---------------------------------------------

#[test]
fn gauge_guard_in_flight_count_never_negative() {
    explore(|| {
        let gauge = Arc::new(AtomicI64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let g = gauge.clone();
                thread::spawn(move || {
                    let _guard = GaugeGuard::enter(&g);
                    let seen = g.load(Ordering::Relaxed);
                    // Our own increment is in flight, so any observation
                    // from inside the guard is at least 1 — and never
                    // negative anywhere.
                    assert!(seen >= 1, "gauge observed {seen} inside a live guard");
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(
            gauge.load(Ordering::Relaxed),
            0,
            "gauge did not return to zero after all guards dropped"
        );
    });
}

// -- (e) worker pool ---------------------------------------------------

#[test]
fn worker_pool_recovers_from_panicking_job_and_shuts_down() {
    explore(|| {
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        let pool = WorkerPool::start(1, 4, move |job: u32| {
            if job == 13 {
                panic!("poisoned job");
            }
            d2.fetch_add(1, Ordering::Relaxed);
        });
        // The panicking job lands first; the worker must survive it and
        // still process the next one. A hang here (worker died, queue
        // never drains) is caught as a model deadlock.
        pool.queue().try_push(13).expect("queue accepts job 1");
        pool.queue().try_push(1).expect("queue accepts job 2");
        pool.shutdown();
        assert_eq!(
            done.load(Ordering::Relaxed),
            1,
            "worker lost a job after recovering from a panic"
        );
    });
}

// -- evented hand-off buffer ------------------------------------------

#[test]
fn out_buf_delivers_everything_across_interleavings() {
    use hyperline_server::event::{DrainOutcome, OutBuf};
    use std::time::Duration;
    explore(|| {
        // Capacity 2: the main thread fills the buffer, so the producer
        // thread's extra byte must take the full-buffer wait path (or
        // race in after the drain freed space — the model explores
        // both). Under the shims `wait_timeout` never reports expiry
        // (documented behavior), so delivery must be total, in order.
        let buf = Arc::new(OutBuf::with_capacity(2));
        let (n, was_empty) = buf.write_bounded(&[1, 2], Duration::from_secs(60)).unwrap();
        assert_eq!((n, was_empty), (2, true));
        let producer = {
            let buf = buf.clone();
            thread::spawn(move || {
                buf.write_bounded(&[3], Duration::from_secs(60))
                    .expect("buffer never closes in this model")
            })
        };
        // First drain: exactly the two pre-filled bytes — the producer
        // cannot append before space frees. Its progress notification
        // is what un-parks a waiting producer; a missed wake-up shows
        // up as a model deadlock at the join below.
        let mut received = Vec::new();
        let (progress, outcome) = buf.drain_with(|bytes| {
            received.push(bytes[0]);
            Ok(1)
        });
        assert!(progress);
        assert_eq!(outcome, DrainOutcome::Empty);
        assert_eq!(received, vec![1, 2]);
        let (n, was_empty) = producer.join().unwrap();
        assert_eq!((n, was_empty), (1, true));
        let (progress, outcome) = buf.drain_with(|bytes| {
            received.push(bytes[0]);
            Ok(1)
        });
        assert!(progress);
        assert_eq!(outcome, DrainOutcome::Empty);
        assert_eq!(received, vec![1, 2, 3], "bytes lost or reordered");
        assert!(buf.is_empty(), "buffer retained bytes after full drain");
    });
}

#[test]
fn out_buf_close_wakes_blocked_producer() {
    use hyperline_server::event::OutBuf;
    use std::io::ErrorKind;
    use std::time::Duration;
    explore(|| {
        let buf = Arc::new(OutBuf::with_capacity(1));
        // Fill the buffer so the producer thread must park.
        let (n, _) = buf.write_bounded(&[9], Duration::from_secs(60)).unwrap();
        assert_eq!(n, 1);
        let producer = {
            let buf = buf.clone();
            thread::spawn(move || buf.write_bounded(&[10], Duration::from_secs(60)))
        };
        // The close races the blocked write: the producer either saw
        // the closed flag before parking or must be woken by close's
        // notify. A missed wake-up is caught as a model deadlock.
        buf.close(ErrorKind::ConnectionReset);
        let err = producer
            .join()
            .unwrap()
            .expect_err("write into a closed buffer must fail");
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
    });
}

#[test]
fn bounded_queue_close_wakes_blocked_worker() {
    explore(|| {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let q2 = q.clone();
        let popper = thread::spawn(move || q2.pop());
        // Close races the pop: the worker either drains nothing and
        // sees the close, or was parked and must be woken by it.
        q.close();
        assert_eq!(
            popper.join().unwrap(),
            None,
            "pop returned an item from a closed empty queue"
        );
        assert!(q.try_push(9).is_err(), "push succeeded on a closed queue");
    });
}
