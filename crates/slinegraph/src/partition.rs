//! Workload partitioning strategies (§III-F, Table III).
//!
//! The paper distributes the outermost loop (over hyperedges) with either
//! oneTBB's `blocked_range` or a custom cyclic range, on top of a
//! work-stealing scheduler. We reproduce the same three shapes on scoped
//! worker threads ([`hyperline_util::parallel`]):
//!
//! * [`Partition::Blocked`] — worker `w` of `t` gets the contiguous block
//!   `[w·m/t, (w+1)·m/t)`;
//! * [`Partition::Cyclic`] — worker `w` gets `w, w+t, w+2t, …`;
//! * [`Partition::Dynamic`] — workers claim fixed-size chunks from an
//!   atomic cursor (work-stealing-style dynamic load balancing; the chunk
//!   size is the paper's grainsize knob, ≤ 256 recommended).
//!
//! [`execute`] runs a per-item body under a chosen strategy and returns
//! the per-worker local states, which is how the per-thread workload
//! instrumentation of Figure 10 falls out for free.

use hyperline_util::parallel::scope_workers;
use hyperline_util::sync::atomic::{AtomicUsize, Ordering};
use hyperline_util::telemetry::Span;

/// How hyperedge indices are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partition {
    /// Contiguous static blocks, one per worker.
    Blocked,
    /// Strided (round-robin) static assignment.
    Cyclic,
    /// Dynamic chunk claiming from a shared atomic cursor.
    Dynamic {
        /// Items claimed per grab. The paper finds ≤ 256 performs well.
        chunk: usize,
    },
}

impl Partition {
    /// One-letter code in the paper's Table III notation (`B`/`C`; the
    /// dynamic mode, not part of the paper's grid, is `D`).
    pub fn code(self) -> char {
        match self {
            Partition::Blocked => 'B',
            Partition::Cyclic => 'C',
            Partition::Dynamic { .. } => 'D',
        }
    }
}

/// Runs `body(item, local)` for every item in `0..num_items` across
/// `num_workers` workers under the given partition strategy, returning
/// each worker's final local state (index = worker ID).
///
/// `init(worker)` builds the local state; `body` must be safe to run
/// concurrently for distinct items (it only mutates its local state).
pub fn execute<T, I, F>(
    num_items: usize,
    num_workers: usize,
    partition: Partition,
    init: I,
    body: F,
) -> Vec<T>
where
    T: Send,
    I: Fn(usize) -> T + Sync,
    F: Fn(u32, &mut T) + Sync,
{
    let num_workers = num_workers.max(1);
    let cursor = AtomicUsize::new(0);
    let locals = scope_workers(num_workers, |w| {
        // One span per worker loop: the stage report shows per-worker
        // occupancy of the counting stage (count = workers, max = the
        // straggler).
        let _span = Span::enter("worker");
        // Request-deadline poll: a plain flag check per scheduling
        // quantum (item or claimed chunk), so the kernel stays
        // clock-free (HL004) while a cancelled request's workers stop
        // burning CPU promptly. Partial locals never escape: the
        // checkpoint after the join unwinds first.
        let poll = hyperline_util::cancel::Poll::capture();
        let mut local = init(w);
        match partition {
            Partition::Blocked => {
                let start = w * num_items / num_workers;
                let end = (w + 1) * num_items / num_workers;
                for i in start..end {
                    if poll.is_cancelled() {
                        break;
                    }
                    body(i as u32, &mut local);
                }
            }
            Partition::Cyclic => {
                let mut i = w;
                while i < num_items {
                    if poll.is_cancelled() {
                        break;
                    }
                    body(i as u32, &mut local);
                    i += num_workers;
                }
            }
            Partition::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                loop {
                    if poll.is_cancelled() {
                        break;
                    }
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= num_items {
                        break;
                    }
                    for i in start..(start + chunk).min(num_items) {
                        body(i as u32, &mut local);
                    }
                }
            }
        }
        local
    });
    hyperline_util::cancel::checkpoint();
    locals
}

/// The indices worker `w` would process under a *static* partition
/// (useful for tests and workload prediction). Dynamic partitions have no
/// static assignment and return an empty vector.
pub fn static_assignment(
    num_items: usize,
    num_workers: usize,
    partition: Partition,
    worker: usize,
) -> Vec<u32> {
    let num_workers = num_workers.max(1);
    match partition {
        Partition::Blocked => {
            let start = worker * num_items / num_workers;
            let end = (worker + 1) * num_items / num_workers;
            (start as u32..end as u32).collect()
        }
        Partition::Cyclic => (worker..num_items)
            .step_by(num_workers)
            .map(|i| i as u32)
            .collect(),
        Partition::Dynamic { .. } => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn run_and_collect(partition: Partition, items: usize, workers: usize) -> Vec<Vec<u32>> {
        execute(
            items,
            workers,
            partition,
            |_| Vec::new(),
            |i, local: &mut Vec<u32>| local.push(i),
        )
    }

    fn all_items_once(locals: &[Vec<u32>], items: usize) {
        let mut seen = HashSet::new();
        for local in locals {
            for &i in local {
                assert!(seen.insert(i), "item {i} processed twice");
            }
        }
        assert_eq!(seen.len(), items, "missing items");
    }

    #[test]
    fn blocked_covers_all_items_contiguously() {
        let locals = run_and_collect(Partition::Blocked, 103, 4);
        all_items_once(&locals, 103);
        for local in &locals {
            for w in local.windows(2) {
                assert_eq!(w[1], w[0] + 1, "blocked assignment must be contiguous");
            }
        }
    }

    #[test]
    fn cyclic_covers_all_items_with_stride() {
        let locals = run_and_collect(Partition::Cyclic, 50, 7);
        all_items_once(&locals, 50);
        for (w, local) in locals.iter().enumerate() {
            for (k, &i) in local.iter().enumerate() {
                assert_eq!(i as usize, w + k * 7);
            }
        }
    }

    #[test]
    fn dynamic_covers_all_items() {
        for chunk in [1usize, 3, 16, 1000] {
            let locals = run_and_collect(Partition::Dynamic { chunk }, 257, 5);
            all_items_once(&locals, 257);
        }
    }

    #[test]
    fn worker_count_edge_cases() {
        // More workers than items.
        let locals = run_and_collect(Partition::Blocked, 3, 10);
        all_items_once(&locals, 3);
        let locals = run_and_collect(Partition::Cyclic, 3, 10);
        all_items_once(&locals, 3);
        // Zero items.
        let locals = run_and_collect(Partition::Cyclic, 0, 4);
        assert!(locals.iter().all(Vec::is_empty));
        // Zero workers clamps to one.
        let locals = run_and_collect(Partition::Blocked, 5, 0);
        all_items_once(&locals, 5);
    }

    #[test]
    fn init_receives_worker_id() {
        let locals = execute(0, 6, Partition::Blocked, |w| w, |_, _| {});
        assert_eq!(locals, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn static_assignment_matches_execution() {
        for partition in [Partition::Blocked, Partition::Cyclic] {
            let locals = run_and_collect(partition, 41, 6);
            for (w, local) in locals.iter().enumerate() {
                assert_eq!(
                    local,
                    &static_assignment(41, 6, partition, w),
                    "{partition:?} worker {w}"
                );
            }
        }
        assert!(static_assignment(41, 6, Partition::Dynamic { chunk: 8 }, 0).is_empty());
    }

    #[test]
    fn codes() {
        assert_eq!(Partition::Blocked.code(), 'B');
        assert_eq!(Partition::Cyclic.code(), 'C');
        assert_eq!(Partition::Dynamic { chunk: 256 }.code(), 'D');
    }
}
