#!/usr/bin/env bash
# Pre-merge gate, in dependency order:
#   1. cargo fmt --check
#   2. hyperline-lint        — workspace static analyzer (line rules
#      HL001-HL006 and HL010 unsafe-safety-note adjacency, plus the
#      interprocedural HL007 panic-reachability, HL008 lock-order, and
#      HL009 release/acquire-pairing rules; suppressions in
#      scripts/lint_allow.txt; see README "Correctness tooling")
#   3. sched suite           — the model-checked concurrency units and
#      the scheduler's own engine tests, built under
#      RUSTFLAGS="--cfg hyperline_sched" into target/sched so the
#      shim-world artifacts never collide with the std-world cache
#   4. cargo clippy -D warnings
#   5. cargo build --release
#   6. cargo test -q, then the chaos suite by name (deadline/cancel,
#      slow-client, fault-injection, and drain invariants — also --fast)
#   7. the two smoke benchmarks (skipped with --fast) — server (cold vs
#      warm cache latencies + server-side p50/p99 from the /metrics
#      histograms + streamed edge-list wire bytes, identity vs gzip +
#      concurrent-connection tiers against the evented core, reported
#      as a trailing max-sustained summary line) and
#      kernels (pipeline stage timings with the counting-vs-tail
#      breakdown plus the Stage-5 frontier-engine section). Both are
#      warn-only compared (>20%) against their previous BENCH_*.json;
#      the server smoke additionally HARD-asserts that the /metrics
#      JSON key set matches scripts/metrics_schema.txt (rerun with
#      --update-schema to accept a deliberate change). Kernel runs are
#      appended to BENCH_history.jsonl for the per-commit trajectory.
# Trailing summary lines report the analyzer's per-rule finding counts
# and wall time, which BENCH_*.json snapshots changed, and whether any
# warn-only regression fired.
# Usage: scripts/check.sh [--fast]
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> hyperline-lint"
LINT_LOG="$(mktemp)"
cargo run -q -p hyperline-lint | tee "$LINT_LOG"
LINT_SUMMARY="$(grep '^lint-summary:' "$LINT_LOG" || true)"
rm -f "$LINT_LOG"

echo "==> sched suite (exhaustive interleavings under --cfg hyperline_sched)"
# Separate target dir: these artifacts are compiled against the model-
# checker shims and must never be reused by std-world builds.
RUSTFLAGS="--cfg hyperline_sched" CARGO_TARGET_DIR=target/sched \
  cargo test -q -p hyperline-sched --test engine \
    -p hyperline-util --test sched_histogram \
    -p hyperline-graph --test sched_frontier \
    -p hyperline-server --test sched_models

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The chaos suite is part of `cargo test` above, but it is the gate for
# the request-lifecycle invariants (no request outlives its deadline, no
# truncated 200s, drain within bound, every injected fault counted), so
# it runs by name — in --fast mode too — and can never be scoped away.
echo "==> chaos suite (deadlines, slow clients, fault injection, drain)"
cargo test -q -p hyperline-server --test chaos

# The evented-core integration tests likewise run by name (also in
# --fast mode): split-head reassembly, pipelining, EAGAIN backpressure
# without truncation, and seeded epoll/accept fault degradation.
echo "==> evented core suite (readiness loop, backpressure, epoll faults)"
cargo test -q -p hyperline-server --test chaos evented_

BENCH_LOG=""
if [ "$FAST" = "1" ]; then
  echo "==> smoke benchmarks skipped (--fast)"
else
  BENCH_LOG="$(mktemp)"
  trap 'rm -f "$BENCH_LOG"' EXIT

  echo "==> server smoke benchmark (cold vs warm -> BENCH_server.json)"
  cargo run --release -q -p hyperline-bench --bin server_smoke | tee -a "$BENCH_LOG"

  echo "==> kernel smoke benchmark (counting vs tail + stage5 -> BENCH_kernels.json, history -> BENCH_history.jsonl)"
  cargo run --release -q -p hyperline-bench --bin kernel_smoke | tee -a "$BENCH_LOG"
fi

# ---- trailing summary ------------------------------------------------
[ -n "$LINT_SUMMARY" ] && echo "summary: ${LINT_SUMMARY}"
if [ "$FAST" = "1" ]; then
  echo "summary: benches skipped (--fast); BENCH_*.json untouched"
else
  changed="$(git diff --name-only -- 'BENCH_*.json' | tr '\n' ' ' | sed 's/ $//')"
  [ -n "$changed" ] || changed="none"
  warns="$(grep -c '^  WARN' "$BENCH_LOG" || true)"
  if [ "${warns:-0}" -gt 0 ]; then
    echo "summary: changed snapshots: $changed; $warns warn-only regression(s) fired (see WARN lines above)"
  else
    echo "summary: changed snapshots: $changed; no warn-only regressions"
  fi
  sustained="$(grep -o '^concurrency: sustained [0-9]* connections' "$BENCH_LOG" | tail -1 || true)"
  [ -n "$sustained" ] && echo "summary: max ${sustained#concurrency: }"
fi

echo "All checks passed."
