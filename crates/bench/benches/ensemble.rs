//! Criterion: Algorithm 3 (ensemble) vs repeated Algorithm 2.
//!
//! The trade-off of §III-D: computing k s-line graphs with one counting
//! pass (memory-heavy) versus running the single-s algorithm k times
//! (compute-heavy). Ensemble should win on wall time when k is large and
//! the stored-pair footprint fits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperline_gen::Profile;
use hyperline_slinegraph::{algo2_slinegraph, ensemble_slinegraphs, Strategy};
use std::hint::black_box;

fn ensemble_vs_repeated(c: &mut Criterion) {
    let h = Profile::CondMat.generate(5);
    let strategy = Strategy::default();
    let mut group = c.benchmark_group("ensemble");
    group.sample_size(10);
    for k in [2usize, 8, 16] {
        let s_values: Vec<u32> = (1..=k as u32).collect();
        group.bench_with_input(
            BenchmarkId::new("algorithm3", k),
            &s_values,
            |b, s_values| {
                b.iter(|| black_box(ensemble_slinegraphs(&h, s_values, &strategy).per_s.len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("repeated-algo2", k),
            &s_values,
            |b, s_values| {
                b.iter(|| {
                    let total: usize = s_values
                        .iter()
                        .map(|&s| algo2_slinegraph(&h, s, &strategy).edges.len())
                        .sum();
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ensemble_vs_repeated);
criterion_main!(benches);
