//! Ranking diseases across higher-order clique expansions (Table II).
//!
//! Builds a disGeNet-like disease-gene hypergraph (genes are hyperedges
//! over disease vertices), computes the s-clique graphs of the dual —
//! s = 1 is the classic clique expansion; s = 10, 100 link diseases only
//! when they share that many genes — and compares PageRank rankings of
//! the top diseases. The paper's point: the drastically sparser
//! high-order graphs preserve the top of the ranking.
//!
//! Run with: `cargo run --release --example disease_ranking`

use hyperline::graph::pagerank::{pagerank, rank_order, score_percentiles, PageRankOptions};
use hyperline::prelude::*;
use hyperline::util::Table;

fn main() {
    let h = Profile::DisGeNet.generate(3);
    println!(
        "disGeNet-like network: {} diseases (vertices), {} genes (hyperedges)",
        h.num_vertices(),
        h.num_edges()
    );

    /// One analyzed s value: `(s, edge count, rank order, percentiles)`.
    type Ranking = (u32, usize, Vec<(u32, f64, usize)>, Vec<f64>);

    let s_values = [1u32, 10, 100];
    let mut per_s: Vec<Ranking> = Vec::new();
    for &s in &s_values {
        // s-clique graph: diseases linked when sharing >= s genes.
        let r = sclique_graph(&h, s, &Strategy::default());
        let g = Graph::from_edges(h.num_vertices(), &r.edges);
        let pr = pagerank(&g, PageRankOptions::default());
        let order = rank_order(&pr);
        let pct = score_percentiles(&pr);
        per_s.push((s, r.edges.len(), order, pct));
    }

    for &(s, edges, _, _) in &per_s {
        println!("s = {s:>3}: s-clique graph has {edges} edges");
    }

    // Table II shape: take the top 5 diseases in the clique expansion and
    // report their rank + percentile in every s-clique graph.
    let top5: Vec<u32> = per_s[0].2.iter().take(5).map(|&(v, _, _)| v).collect();
    let mut table = Table::new(["disease", "s=1", "s=10", "s=100"]);
    for &d in &top5 {
        let mut cells = vec![format!("disease-{d}")];
        for (_, _, order, pct) in &per_s {
            let rank = order
                .iter()
                .find(|&&(v, _, _)| v == d)
                .map(|&(_, _, r)| r)
                .unwrap();
            cells.push(format!("{rank} ({:.2}%)", pct[d as usize]));
        }
        table.row(cells);
    }
    println!();
    table.print();

    // Top-k stability, as the paper reports for the top 400.
    let k = 40;
    let base: std::collections::HashSet<u32> =
        per_s[0].2.iter().take(k).map(|&(v, _, _)| v).collect();
    for (s, _, order, _) in per_s.iter().skip(1) {
        let kept = order
            .iter()
            .take(k)
            .filter(|&&(v, _, _)| base.contains(&v))
            .count();
        println!(
            "top-{k} overlap with clique expansion at s={s}: {kept}/{k} ({:.0}%)",
            100.0 * kept as f64 / k as f64
        );
    }
}
