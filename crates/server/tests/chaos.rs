//! Chaos suite: deadlines, cancellation, slow-client defense, graceful
//! drain, and deterministic fault injection.
//!
//! The invariants under test, per ISSUE 9:
//!
//! * no request outlives its deadline by more than 500 ms;
//! * the server never answers `200` with a truncated body — chunked
//!   framing makes truncation client-visible, so every parsed `200`
//!   here must dechunk cleanly (or match its `content-length`);
//! * every injected fault lands in a telemetry counter;
//! * a drain completes within its bound, and workers never leak.
//!
//! The failpoint registry is process-global, so every test serializes
//! on [`SERIAL`]; failpoint-driven tests are additionally
//! `#[cfg(debug_assertions)]` because the registry compiles to a no-op
//! in release builds.

use hyperline_hypergraph::Hypergraph;
use hyperline_server::cache::{AlgoKind, CacheKey, SingleFlightCache};
use hyperline_server::{DatasetSource, Route, Server, ServerConfig, ServerHandle};
use hyperline_util::failpoint;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Failpoints and the cancel watchdog are process-global; chaos tests
/// must not overlap. Poisoning is irrelevant for a test-only lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// One-shot HTTP/1.1 GET over raw TCP, `Connection: close`.
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let raw = get_raw(addr, target).expect("request io");
    parse_checked(&raw).expect("well-framed response")
}

/// Like [`get`] but surfaces transport errors instead of panicking —
/// under injected socket faults a dropped connection is expected.
fn get_raw(addr: SocketAddr, target: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n"
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(String::from_utf8_lossy(&raw).into_owned())
}

fn post(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\ncontent-length: 0\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_checked(&raw).expect("well-framed response")
}

/// Parses a raw response and *verifies framing integrity*: a chunked
/// body must dechunk (terminal chunk present), a `content-length` body
/// must be complete. Returns `None` for responses truncated before the
/// header/body split — callers under fault injection decide whether
/// that is acceptable for the status they saw.
fn parse_checked(raw: &str) -> Option<(u16, String)> {
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let chunked = head
        .lines()
        .any(|l| l.eq_ignore_ascii_case("transfer-encoding: chunked"));
    if chunked {
        let body = hyperline_server::http::dechunk(body.as_bytes()).ok()?;
        return Some((status, String::from_utf8_lossy(&body).into_owned()));
    }
    if let Some(len) = head.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.eq_ignore_ascii_case("content-length")
            .then(|| v.trim().parse::<usize>().ok())?
    }) {
        if body.len() < len {
            return None;
        }
        return Some((status, body[..len].to_string()));
    }
    Some((status, body.to_string()))
}

/// A star hypergraph: `n` hyperedges of size 3 all sharing vertex 0, so
/// `L_1(H)` is the complete graph on `n` nodes — `n·(n−1)/2` line edges
/// from a tiny input. The cheapest way to make one request arbitrarily
/// compute- and byte-heavy.
fn star(n: u32) -> Hypergraph {
    let lists: Vec<Vec<u32>> = (0..n).map(|i| vec![0, 2 * i + 1, 2 * i + 2]).collect();
    Hypergraph::from_edge_lists(&lists, 2 * n as usize + 1)
}

fn bind_star(n: u32, config: ServerConfig) -> ServerHandle {
    let server = Server::bind(config).expect("bind ephemeral port");
    server
        .registry()
        .insert("star", star(n), DatasetSource::Inline);
    server.spawn()
}

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_mb: 64,
        queue_depth: 64,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

/// Polls `probe` every 10 ms until it returns true or `bound` elapses.
fn eventually(bound: Duration, probe: impl Fn() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < bound {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    probe()
}

#[test]
fn deadline_expiry_is_a_prompt_504_and_workers_survive() {
    let _guard = serialize();
    // Global deadline is generous; the Slg route override is what
    // expires. stats (same dataset, no override) must still answer 200.
    let handle = bind_star(
        3000,
        ServerConfig {
            request_deadline: Some(Duration::from_secs(30)),
            route_deadlines: vec![(Route::Slg, Duration::from_millis(50))],
            ..base_config()
        },
    );
    let addr = handle.addr();

    let start = Instant::now();
    let (status, body) = get(addr, "/datasets/star/slg?s=1");
    let elapsed = start.elapsed();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("request deadline exceeded"), "{body}");
    // The hard invariant: deadline + 500 ms, however slow the kernel.
    assert!(
        elapsed < Duration::from_millis(50 + 500),
        "504 took {elapsed:?}, deadline was 50ms"
    );

    let metrics = &handle.state().metrics;
    assert!(metrics.deadline_expired.load(Ordering::Relaxed) >= 1);

    // Cancellation must not leak the worker or poison the cache slot:
    // the same route with a live budget (global 30 s) is untouched, and
    // an un-deadlined route still answers.
    let (status, body) = get(addr, "/datasets/star/stats");
    assert_eq!(status, 200, "{body}");
    assert!(
        eventually(Duration::from_secs(10), || {
            handle.state().metrics.busy_workers.load(Ordering::Relaxed) == 0
        }),
        "busy_workers did not return to 0"
    );
    handle.shutdown();
}

#[test]
fn slow_loris_head_is_cut_at_the_cumulative_deadline() {
    let _guard = serialize();
    let handle = bind_star(
        4,
        ServerConfig {
            read_timeout: Duration::from_secs(2),
            head_timeout: Duration::from_millis(300),
            ..base_config()
        },
    );
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let start = Instant::now();
    // Dribble a request head one byte at a time, each write inside the
    // 2 s idle timeout, the whole head far beyond the 300 ms cumulative
    // head deadline. Detect the server-side close via a write error
    // (one extra write may succeed into the dead socket's buffer).
    let head = b"GET /healthz HTTP/1.1\r\nhost: chaos\r\n";
    let mut closed = false;
    for chunk in head.iter().cycle().take(100) {
        if stream.write_all(std::slice::from_ref(chunk)).is_err() {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    let elapsed = start.elapsed();
    assert!(closed, "server never closed the dribbled head");
    assert!(
        elapsed < Duration::from_millis(300 + 1200),
        "slow-loris close took {elapsed:?}, head deadline was 300ms"
    );
    assert!(
        handle
            .state()
            .metrics
            .slow_loris_closes
            .load(Ordering::Relaxed)
            >= 1,
        "slow-loris close not counted"
    );
    // A normal request on a fresh connection is unaffected.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn slow_clients_abort_quietly_and_stalled_writes_are_bounded() {
    let _guard = serialize();
    // L_1 of star(1600) is ~1.28M line edges — tens of megabytes on the
    // wire, far beyond any loopback socket buffering.
    let handle = bind_star(
        1600,
        ServerConfig {
            write_timeout: Duration::from_millis(500),
            ..base_config()
        },
    );
    let addr = handle.addr();
    let metrics = &handle.state().metrics;
    let target = "/datasets/star/slg?s=1&limit=2000000";

    // Scenario A — mid-stream abort: read a little, then close with
    // unread data queued (the kernel turns that into an RST). The
    // server's next write fails EPIPE/ECONNRESET and must be counted
    // as a client abort, not an error.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n"
        )
        .unwrap();
        let mut first = [0u8; 1024];
        let _ = stream.read(&mut first).expect("first bytes");
        // Drop: close with megabytes still in flight.
    }
    assert!(
        eventually(Duration::from_secs(60), || {
            metrics.client_aborts.load(Ordering::Relaxed) >= 1
        }),
        "client abort not counted"
    );

    // Scenario B — write stall: request the same artifact (now cached)
    // and never read. Once the socket buffers fill, the server's write
    // must give up at the 500 ms write timeout instead of hanging.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    write!(
        stalled,
        "GET {target} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    assert!(
        eventually(Duration::from_secs(60), || {
            metrics.write_stalls.load(Ordering::Relaxed) >= 1
        }),
        "write stall not counted"
    );
    drop(stalled);

    assert!(
        eventually(Duration::from_secs(10), || {
            metrics.busy_workers.load(Ordering::Relaxed) == 0
        }),
        "busy_workers did not return to 0 after slow clients"
    );
    handle.shutdown();
}

#[cfg(debug_assertions)]
#[test]
fn socket_faults_never_truncate_a_200() {
    let _guard = serialize();
    let server = Server::bind(base_config()).expect("bind");
    server.registry().load_profile("lesMis", 42, None).unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    let targets = [
        "/healthz",
        "/datasets/lesMis/stats",
        "/datasets",
        "/metrics",
    ];
    // Short writes are exercised separately (write_all retries them, so
    // they must be invisible to clients *and* to the error counters).
    failpoint::arm("socket.write=short@500", 5).expect("arm short writes");
    for target in targets {
        let (status, body) = get(addr, target);
        assert_eq!(status, 200, "short writes must be retried: {body}");
    }
    assert!(
        failpoint::fired("socket.write") > 0,
        "short schedule never fired"
    );
    for seed in [1u64, 7, 1234] {
        failpoint::arm("socket.read=err@120,socket.write=err@150", seed).expect("arm failpoints");
        for i in 0..24 {
            let target = targets[i % targets.len()];
            // Transport errors and truncated error responses are the
            // injected faults doing their job; the invariant is only
            // about *successful* responses.
            let Ok(raw) = get_raw(addr, target) else {
                continue;
            };
            if parse_checked(&raw).is_none() && raw.starts_with("HTTP/1.1 200") {
                // An injected socket fault may cut a 200 short, but the
                // truncation must be *client-detectable*: the head must
                // carry explicit framing (content-length or chunked),
                // never a close-delimited body that silently ends. A
                // head truncated before the blank line is malformed and
                // therefore also detectable.
                if let Some((head, _)) = raw.split_once("\r\n\r\n") {
                    let framed = head.lines().any(|l| {
                        l.to_ascii_lowercase().starts_with("content-length:")
                            || l.eq_ignore_ascii_case("transfer-encoding: chunked")
                    });
                    assert!(framed, "undetectably truncated 200 for {target}: {head}");
                }
            }
        }
        assert!(
            failpoint::total_fired() > 0,
            "schedule with seed {seed} never fired"
        );
    }
    failpoint::disarm();

    // Every injected write fault must have landed in a transport
    // counter (aborts or stalls), and the server must still be healthy.
    let m = &handle.state().metrics;
    assert!(
        m.client_aborts.load(Ordering::Relaxed) + m.write_stalls.load(Ordering::Relaxed) >= 1,
        "injected socket faults left no telemetry trace"
    );
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("\"faults\""), "{body}");
    handle.shutdown();
}

#[cfg(debug_assertions)]
#[test]
fn dataset_read_fault_is_a_clean_client_error() {
    let _guard = serialize();
    let dir = std::env::temp_dir().join("hyperline-chaos-data");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chaos.hgr");
    hyperline_hypergraph::io::save_edge_list(&star(4), &path).unwrap();

    let server = Server::bind(ServerConfig {
        data_root: Some(dir.clone()),
        ..base_config()
    })
    .expect("bind");
    let handle = server.spawn();
    let addr = handle.addr();

    failpoint::arm("dataset.read=err@1000", 9).expect("arm");
    let (status, body) = post(addr, "/datasets?path=chaos.hgr&name=chaos");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("injected fault at dataset.read"), "{body}");
    assert_eq!(failpoint::fired("dataset.read"), 1);
    failpoint::disarm();

    // The failure was transient config, not state: the same load
    // succeeds once the fault clears.
    let (status, body) = post(addr, "/datasets?path=chaos.hgr&name=chaos");
    assert_eq!(status, 201, "{body}");
    std::fs::remove_file(&path).ok();
    handle.shutdown();
}

#[cfg(debug_assertions)]
#[test]
fn cache_insert_fault_serves_without_retaining() {
    let _guard = serialize();
    let server = Server::bind(base_config()).expect("bind");
    server.registry().load_profile("lesMis", 42, None).unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    failpoint::arm("cache.insert=err@1000", 3).expect("arm");
    // Every insert fails, so both identical requests recompute — and
    // both still answer 200 with the value that could not be cached.
    let (s1, b1) = get(addr, "/datasets/lesMis/slg?s=2&limit=5");
    let (s2, b2) = get(addr, "/datasets/lesMis/slg?s=2&limit=5");
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(
        b1.replace(char::is_numeric, ""),
        b2.replace(char::is_numeric, "")
    );
    assert!(failpoint::fired("cache.insert") >= 2, "inserts not retried");
    failpoint::disarm();

    // With the fault cleared the third request populates the cache.
    let (status, _) = get(addr, "/datasets/lesMis/slg?s=2&limit=5");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn single_flight_leader_panic_does_not_poison_the_slot() {
    let _guard = serialize();
    let cache: Arc<SingleFlightCache<CacheKey, u32>> = Arc::new(SingleFlightCache::new(1 << 20));
    // A live negative TTL proves panics are *not* negative-cached: the
    // recompute below must run, not be answered from the error cache.
    cache.set_negative_ttl(Duration::from_secs(10));
    let key = CacheKey {
        dataset: "d".to_string(),
        s: 1,
        algorithm: AlgoKind::Algo2,
        weighted: false,
    };

    let in_flight = Arc::new(Barrier::new(2));
    let leader = {
        let cache = Arc::clone(&cache);
        let key = key.clone();
        let in_flight = Arc::clone(&in_flight);
        std::thread::spawn(move || {
            cache.get_or_compute(&key, || {
                in_flight.wait();
                // Give the waiter time to join the flight before dying.
                std::thread::sleep(Duration::from_millis(150));
                panic!("leader died mid-compute");
            })
        })
    };
    in_flight.wait();
    std::thread::sleep(Duration::from_millis(30));
    let waiter_result = cache.get_or_compute(&key, || Ok((99, 4)));

    let leader_result = leader.join().expect("leader thread itself must not die");
    let leader_err = leader_result.expect_err("leader must see the panic as an error");
    assert!(leader_err.contains("panicked"), "{leader_err}");
    // The waiter either coalesced onto the doomed flight (clean error)
    // or raced in after cleanup and computed fresh — both are sound;
    // a hang or panic here is the regression.
    if let Err(e) = &waiter_result {
        assert!(e.contains("panicked"), "{e}");
    }

    // The slot recovered: the next compute wins and is cached.
    let (value, _) = cache
        .get_or_compute(&key, || Ok((7, 4)))
        .expect("recompute");
    assert_eq!(*value, 7);
    assert_eq!(*cache.get_or_compute(&key, || Ok((8, 4))).unwrap().0, 7);
}

#[test]
fn negative_cache_backs_off_thundering_herds() {
    let _guard = serialize();
    let cache: SingleFlightCache<CacheKey, u32> = SingleFlightCache::new(1 << 20);
    cache.set_negative_ttl(Duration::from_millis(200));
    let key = CacheKey {
        dataset: "d".to_string(),
        s: 1,
        algorithm: AlgoKind::Algo2,
        weighted: false,
    };
    let computes = AtomicU32::new(0);
    let failing = || {
        computes.fetch_add(1, Ordering::Relaxed);
        Err::<(u32, usize), String>("disk on fire".to_string())
    };

    assert_eq!(
        cache.get_or_compute(&key, failing).unwrap_err(),
        "disk on fire"
    );
    // Inside the TTL the error is served from the negative cache: the
    // compute does not run again, and the hit is counted.
    assert_eq!(
        cache.get_or_compute(&key, failing).unwrap_err(),
        "disk on fire"
    );
    assert_eq!(computes.load(Ordering::Relaxed), 1);
    assert_eq!(cache.stats().negative_hits, 1);

    std::thread::sleep(Duration::from_millis(250));
    assert_eq!(
        cache.get_or_compute(&key, failing).unwrap_err(),
        "disk on fire"
    );
    assert_eq!(
        computes.load(Ordering::Relaxed),
        2,
        "TTL expiry must recompute"
    );
}

#[test]
fn admin_drain_closes_keep_alive_and_sheds_new_connections() {
    let _guard = serialize();
    // Two parked keep-alive connections + the drain trigger + the shed
    // probe: enough workers that nobody waits on an idle timeout.
    let server = Server::bind(ServerConfig {
        threads: 4,
        ..base_config()
    })
    .expect("bind");
    server.registry().load_profile("lesMis", 42, None).unwrap();
    let handle = server.spawn();
    let addr = handle.addr();
    let state = Arc::clone(handle.state());

    // Two keep-alive connections established before the drain: once
    // draining starts, *new* connections are shed at accept, so both
    // the drain trigger's idempotency check and the keep-alive close
    // must ride connections that predate it.
    let mut keep_alive = TcpStream::connect(addr).expect("connect");
    keep_alive
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(keep_alive, "GET /healthz HTTP/1.1\r\nhost: chaos\r\n\r\n").unwrap();
    let first = read_one_response(&mut keep_alive);
    assert!(first.starts_with("HTTP/1.1 200"), "{first}");
    assert!(!header_says_close(&first), "{first}");

    let mut second_trigger = TcpStream::connect(addr).expect("connect");
    second_trigger
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        second_trigger,
        "GET /healthz HTTP/1.1\r\nhost: chaos\r\n\r\n"
    )
    .unwrap();
    let _ = read_one_response(&mut second_trigger);

    let drain_started = Instant::now();
    let (status, body) = post(addr, "/admin/drain?deadline_ms=3000");
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"draining\":true"), "{body}");
    assert!(state.is_draining());

    // The drain is idempotent: a second trigger (over a pre-drain
    // connection — new ones are already being shed) reports it was
    // already under way instead of spawning another drain.
    write!(
        second_trigger,
        "POST /admin/drain HTTP/1.1\r\nhost: chaos\r\ncontent-length: 0\r\n\r\n"
    )
    .unwrap();
    let again = read_one_response(&mut second_trigger);
    assert!(again.starts_with("HTTP/1.1 202"), "{again}");
    assert!(again.contains("\"already_draining\":true"), "{again}");
    drop(second_trigger);

    // The pre-drain connection finishes its in-flight work, then is
    // told to close.
    write!(keep_alive, "GET /healthz HTTP/1.1\r\nhost: chaos\r\n\r\n").unwrap();
    let second = read_one_response(&mut keep_alive);
    assert!(second.starts_with("HTTP/1.1 200"), "{second}");
    assert!(
        header_says_close(&second),
        "drain did not close keep-alive: {second}"
    );
    drop(keep_alive);

    // New connections are shed with 503 + Retry-After before any
    // request byte is sent (the shed happens at accept).
    let mut shed = TcpStream::connect(addr).expect("connect");
    shed.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut raw = String::new();
    shed.read_to_string(&mut raw).expect("shed response");
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(
        raw.to_ascii_lowercase().contains("retry-after:"),
        "shed 503 without retry-after: {raw}"
    );

    // The drain itself completes within its bound: every connection
    // accounted for — ours drained (not aborted) — and the counters say
    // which.
    assert!(
        eventually(Duration::from_secs(4), || state.live_connections() == 0),
        "drain left live connections"
    );
    assert!(drain_started.elapsed() < Duration::from_secs(4));
    assert!(state.metrics.drained_connections.load(Ordering::Relaxed) >= 1);
    handle.shutdown();
}

#[test]
fn handle_drain_aborts_idle_stragglers_at_the_bound() {
    let _guard = serialize();
    let server = Server::bind(base_config()).expect("bind");
    server.registry().load_profile("lesMis", 42, None).unwrap();
    let handle = server.spawn();
    let addr = handle.addr();
    let state = Arc::clone(handle.state());

    // An idle keep-alive connection that will never finish on its own.
    let mut idle = TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(idle, "GET /healthz HTTP/1.1\r\nhost: chaos\r\n\r\n").unwrap();
    let _ = read_one_response(&mut idle);

    let start = Instant::now();
    let (_drained, aborted) = handle.drain(Duration::from_millis(400));
    let elapsed = start.elapsed();
    assert!(aborted >= 1, "idle connection was not hard-closed");
    assert!(
        elapsed < Duration::from_secs(3),
        "bounded drain took {elapsed:?}"
    );
    assert_eq!(
        state.metrics.aborted_connections.load(Ordering::Relaxed),
        aborted
    );

    // The hard close is visible client-side as EOF or a reset.
    let mut buf = [0u8; 64];
    match idle.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => {
            // Tolerate a final in-flight error response, then EOF.
            assert!(n <= buf.len());
        }
    }
}

#[test]
fn evented_split_head_delivery_is_reassembled() {
    let _guard = serialize();
    let handle = bind_star(4, base_config());
    let addr = handle.addr();

    // A slow-loris-shaped delivery that stays inside the head budget:
    // the incremental parser must reassemble the head across arbitrary
    // TCP segment boundaries and answer normally.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = b"GET /datasets/star/stats HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n";
    for chunk in head.chunks(3) {
        stream.write_all(chunk).expect("dribble head");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (status, body) = parse_checked(&raw).expect("well-framed response");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"vertices\""), "{body}");
    handle.shutdown();
}

#[test]
fn evented_pipelined_requests_answer_in_order() {
    let _guard = serialize();
    let handle = bind_star(4, base_config());
    let addr = handle.addr();

    // Two keep-alive requests in one TCP segment: the loop must carry
    // the second head over in its buffer and serve it after the first
    // response flushes, not drop or reorder it.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nhost: chaos\r\n\r\nGET /datasets/star/stats HTTP/1.1\r\nhost: chaos\r\n\r\n"
    )
    .unwrap();
    let first = read_one_response(&mut stream);
    assert!(first.starts_with("HTTP/1.1 200"), "{first}");
    assert!(first.contains("\"ok\":true"), "{first}");
    let second = read_one_response(&mut stream);
    assert!(second.starts_with("HTTP/1.1 200"), "{second}");
    assert!(second.contains("\"vertices\""), "{second}");
    handle.shutdown();
}

#[test]
fn evented_partial_writes_backpressure_without_truncation() {
    let _guard = serialize();
    // Tens of megabytes on the wire (see the slow-clients test): far
    // beyond loopback socket buffering, so the loop's drain must hit
    // EAGAIN and park on EPOLLOUT at least once.
    let handle = bind_star(1600, base_config());
    let addr = handle.addr();
    let metrics = &handle.state().metrics;

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "GET /datasets/star/slg?s=1&limit=2000000 HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    // Wait for the stream to start, then stop reading: every buffer
    // between the worker and this socket fills, and the loop's next
    // drain must park on EAGAIN rather than block or truncate.
    let mut first = [0u8; 1024];
    let n = stream.read(&mut first).expect("first bytes");
    std::thread::sleep(Duration::from_millis(700));
    let mut raw = Vec::from(&first[..n]);
    stream.read_to_end(&mut raw).expect("read full response");
    let raw = String::from_utf8_lossy(&raw).into_owned();
    // The stall must never yield a truncated 200 behind valid framing.
    let (status, body) = parse_checked(&raw).expect("well-framed response despite backpressure");
    assert_eq!(status, 200);
    assert!(body.contains("\"edges\""), "truncated body");
    assert!(
        metrics.eagain_yields.load(Ordering::Relaxed) >= 1,
        "a multi-megabyte response never hit EAGAIN"
    );
    handle.shutdown();
}

#[cfg(debug_assertions)]
#[test]
fn evented_epoll_wait_faults_degrade_gracefully() {
    let _guard = serialize();
    let handle = bind_star(4, base_config());
    let addr = handle.addr();

    failpoint::arm("epoll.wait=err@300", 11).expect("arm");
    for _ in 0..8 {
        let (status, body) = get(addr, "/datasets/star/stats");
        assert_eq!(status, 200, "{body}");
    }
    assert!(
        failpoint::fired("epoll.wait") > 0,
        "epoll.wait schedule never fired"
    );
    failpoint::disarm();
    handle.shutdown();
}

#[cfg(debug_assertions)]
#[test]
fn evented_accept_faults_only_delay_admission() {
    let _guard = serialize();
    let handle = bind_star(4, base_config());
    let addr = handle.addr();

    // A skipped accept round leaves the connection in the kernel
    // backlog; level-triggered epoll re-reports it, so every client is
    // eventually served — faults delay, never drop.
    failpoint::arm("socket.accept=err@400", 23).expect("arm");
    for _ in 0..8 {
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200, "{body}");
    }
    assert!(
        failpoint::fired("socket.accept") > 0,
        "socket.accept schedule never fired"
    );
    failpoint::disarm();
    handle.shutdown();
}

/// Reads exactly one keep-alive HTTP response: headers, then (for the
/// chunked bodies this server sends) through the terminal chunk.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                let text = String::from_utf8_lossy(&raw);
                if let Some((head, body)) = text.split_once("\r\n\r\n") {
                    let chunked = head
                        .lines()
                        .any(|l| l.eq_ignore_ascii_case("transfer-encoding: chunked"));
                    if chunked {
                        if body.ends_with("0\r\n\r\n") {
                            break;
                        }
                    } else if let Some(len) = head.lines().find_map(|l| {
                        let (k, v) = l.split_once(':')?;
                        k.eq_ignore_ascii_case("content-length")
                            .then(|| v.trim().parse::<usize>().ok())?
                    }) {
                        if body.len() >= len {
                            break;
                        }
                    } else {
                        break;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => panic!("mid-response read error: {e}"),
        }
    }
    String::from_utf8_lossy(&raw).into_owned()
}

fn header_says_close(raw: &str) -> bool {
    raw.split("\r\n\r\n")
        .next()
        .unwrap_or("")
        .lines()
        .any(|l| l.eq_ignore_ascii_case("connection: close"))
}
