//! A minimal JSON value builder and serializer (write-only).
//!
//! The wire protocol only ever *emits* JSON; requests carry their inputs
//! in the query string, so no parser is needed. [`Json`] covers the value
//! shapes the endpoints build, with `From` impls keeping handler code
//! terse.

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any integer (emitted without a decimal point).
    Int(i128),
    /// A float; non-finite values serialize as `null` per RFC 8259.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object to extend with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds/chains a field on an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("set() on non-object {other:?}"),
        }
        self
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(i: $t) -> Json {
                Json::Int(i as i128)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u32).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::from("héllo").render(), "\"héllo\"");
    }

    #[test]
    fn nested_structure() {
        let v = Json::obj()
            .set("name", "x")
            .set(
                "counts",
                Json::Arr(vec![Json::from(1u32), Json::from(2u32)]),
            )
            .set("nested", Json::obj().set("ok", true));
        assert_eq!(
            v.render(),
            r#"{"name":"x","counts":[1,2],"nested":{"ok":true}}"#
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_array_panics() {
        let _ = Json::Arr(vec![]).set("k", 1u32);
    }
}
