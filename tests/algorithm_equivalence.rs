//! Cross-crate equivalence properties of every s-line-graph construction.
//!
//! The four constructions (naive, Algorithm 1, Algorithm 2, SpGEMM+Filter)
//! and the ensemble must agree exactly on arbitrary hypergraphs, across
//! partitions, counters, worker counts and relabel orders. Property-based
//! tests generate the hypergraphs.

use hyperline::hypergraph::relabel_edges_by_degree;
use hyperline::prelude::*;
use proptest::prelude::*;
// Both globs export a `Strategy`; explicit imports disambiguate — the
// execution strategy by name, proptest's trait under an alias.
use hyperline::slinegraph::Strategy;
use proptest::strategy::Strategy as PropStrategy;

/// Proptest generator: a random hypergraph as (edge lists, num_vertices).
fn hypergraph_strategy() -> impl PropStrategy<Value = Hypergraph> {
    (1usize..30).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0..n as u32, 0..=n.min(10)), 0..40)
            .prop_map(move |lists| Hypergraph::from_edge_lists(&lists, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_constructions_agree(h in hypergraph_strategy(), s in 1u32..6) {
        let st = Strategy::default();
        let expect = naive_slinegraph(&h, s, &st).edges;
        prop_assert_eq!(&algo1_slinegraph(&h, s, &st).edges, &expect);
        prop_assert_eq!(&algo2_slinegraph(&h, s, &st).edges, &expect);
        prop_assert_eq!(&spgemm_slinegraph(&h, s, false).edges, &expect);
        prop_assert_eq!(&spgemm_slinegraph(&h, s, true).edges, &expect);
    }

    #[test]
    fn ensemble_matches_single_runs(h in hypergraph_strategy()) {
        let st = Strategy::default();
        let s_values = [1u32, 2, 3, 4, 5];
        let ens = ensemble_slinegraphs(&h, &s_values, &st);
        for (s, edges) in &ens.per_s {
            prop_assert_eq!(edges, &algo2_slinegraph(&h, *s, &st).edges);
        }
    }

    #[test]
    fn filtration_is_monotone(h in hypergraph_strategy(), s in 1u32..5) {
        // L_{s+1} ⊆ L_s: raising the threshold can only remove edges.
        let st = Strategy::default();
        let lo: std::collections::HashSet<(u32, u32)> =
            algo2_slinegraph(&h, s, &st).edges.into_iter().collect();
        let hi = algo2_slinegraph(&h, s + 1, &st).edges;
        for e in &hi {
            prop_assert!(lo.contains(e), "edge {e:?} in L_{} but not L_{}", s + 1, s);
        }
    }

    #[test]
    fn edges_match_pairwise_inc(h in hypergraph_strategy(), s in 1u32..5) {
        // Every emitted pair really has inc >= s; every omitted pair does not.
        let edges = algo2_slinegraph(&h, s, &Strategy::default()).edges;
        let set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        let m = h.num_edges() as u32;
        for i in 0..m {
            for j in (i + 1)..m {
                let inc = h.inc(i, j) as u32;
                prop_assert_eq!(set.contains(&(i, j)), inc >= s, "pair ({},{}) inc={}", i, j, inc);
            }
        }
    }

    #[test]
    fn relabeling_transparent(h in hypergraph_strategy(), s in 1u32..5) {
        let st = Strategy::default();
        let expect = algo2_slinegraph(&h, s, &st).edges;
        for relabel in RelabelOrder::ALL {
            let rel = relabel_edges_by_degree(&h, relabel);
            let mut edges = algo2_slinegraph(&rel.hypergraph, s, &st).edges;
            rel.restore_edge_ids(&mut edges);
            for pair in edges.iter_mut() {
                if pair.0 > pair.1 {
                    *pair = (pair.1, pair.0);
                }
            }
            edges.sort_unstable();
            prop_assert_eq!(&edges, &expect);
        }
    }

    #[test]
    fn sclique_is_dual_slinegraph(h in hypergraph_strategy(), s in 1u32..4) {
        let st = Strategy::default();
        prop_assert_eq!(
            sclique_graph(&h, s, &st).edges,
            algo2_slinegraph(&h.dual(), s, &st).edges
        );
    }

    #[test]
    fn dual_is_involutive(h in hypergraph_strategy()) {
        prop_assert_eq!(h.dual().dual(), h);
    }

    #[test]
    fn sclique_matches_weighted_clique_expansion(h in hypergraph_strategy(), s in 1u32..4) {
        // §III-H: thresholding W = H·Hᵀ − D_V at s equals running the
        // s-line-graph algorithm on the dual.
        prop_assert_eq!(
            hyperline::sparse::sclique_via_w(&h, s),
            sclique_graph(&h, s, &Strategy::default()).edges
        );
    }

    #[test]
    fn weighted_weights_equal_inc(h in hypergraph_strategy(), s in 1u32..4) {
        let (edges, _) = algo2_slinegraph_weighted(&h, s, &Strategy::default());
        for (i, j, w) in edges {
            prop_assert_eq!(w as usize, h.inc(i, j));
            prop_assert!(w >= s);
        }
    }
}

#[test]
fn strategies_agree_on_profile_data() {
    // Heavier, deterministic cross-check on a generated profile.
    let h = Profile::EmailEuAll.generate(9);
    let reference = algo2_slinegraph(&h, 3, &Strategy::default()).edges;
    for partition in [
        Partition::Blocked,
        Partition::Cyclic,
        Partition::Dynamic { chunk: 64 },
    ] {
        for counter in CounterKind::ALL {
            let st = Strategy::default()
                .with_partition(partition)
                .with_counter(counter)
                .with_workers(5);
            assert_eq!(
                algo2_slinegraph(&h, 3, &st).edges,
                reference,
                "{partition:?}/{counter:?}"
            );
        }
    }
    assert_eq!(
        algo1_slinegraph(&h, 3, &Strategy::default()).edges,
        reference
    );
    assert_eq!(spgemm_slinegraph(&h, 3, true).edges, reference);
}
